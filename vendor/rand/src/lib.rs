//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of `rand` it actually uses: [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! [`Rng::gen_range`] / [`Rng::gen_bool`]. The generator is xoshiro256++
//! seeded by SplitMix64 — deterministic, fast, and more than adequate for the
//! seeded synthetic workloads and property tests in this repository. It is
//! **not** cryptographically secure and the streams differ from upstream
//! `rand`'s `StdRng` (ChaCha12), which only matters if exact upstream
//! reproducibility of seeded runs is required.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 uniform mantissa bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A generator seedable from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types that support uniform sampling, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples a single value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as i128) + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ seeded
    /// via SplitMix64. API-compatible with `rand::rngs::StdRng` for the
    /// subset used here.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&hits), "p=0.5 gave {hits}/2000");
    }
}
