//! Offline stand-in for the `crossbeam` crate (channel + scoped-thread
//! subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of `crossbeam` it uses: [`channel::bounded`] /
//! [`channel::unbounded`] constructors and a unified [`channel::Sender`] type
//! for both flavors (upstream crossbeam's signature), layered over
//! `std::sync::mpsc`, plus [`thread::scope`] for borrowed-data worker pools,
//! layered over `std::thread::scope`. Single-consumer semantics are
//! sufficient here — every receiver in the workspace is owned by exactly one
//! thread.

#![warn(missing_docs)]

/// Scoped threads mirroring `crossbeam::thread::scope`, layered over
/// `std::thread::scope` (stable std since 1.63).
///
/// Deviations from upstream, documented for anyone swapping the real crate
/// back in: `Scope::spawn` takes a plain `FnOnce()` closure (std's signature)
/// instead of upstream's `FnOnce(&Scope)`, and a panicking child propagates
/// its panic out of `scope` (std's behavior) instead of surfacing as the
/// `Err` variant — the `Result` wrapper is kept so call sites read like
/// upstream.
pub mod thread {
    pub use std::thread::{Scope, ScopedJoinHandle};

    /// Creates a scope in which threads borrowing non-`'static` data can be
    /// spawned; every spawned thread is joined before `scope` returns.
    pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

/// Multi-producer, single-consumer channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded channel with capacity `cap` (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }

    /// The sending half of a channel; clonable, blocks on a full bounded
    /// channel.
    pub struct Sender<T>(SenderKind<T>);

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                SenderKind::Unbounded(tx) => Sender(SenderKind::Unbounded(tx.clone())),
                SenderKind::Bounded(tx) => Sender(SenderKind::Bounded(tx.clone())),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full. Fails iff
        /// all receivers have disconnected, returning the value.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; fails iff the channel is empty and
        /// all senders have disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// A blocking iterator that ends when all senders have disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Blocking iterator over received values; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; holds
    /// the unsent value.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};

    #[test]
    fn unbounded_roundtrip_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let h = std::thread::spawn(move || tx.send(3)); // blocks until a recv
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        h.join().unwrap().unwrap();
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
