//! The [`Strategy`] trait and the combinators used by the workspace's
//! property tests. Values are generated directly (no shrinking trees).

use core::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Chooses uniformly among type-erased strategies; built by
/// [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`. Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut StdRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "cannot sample empty char range");
        // Rejection-sample the surrogate gap.
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(lo..hi)) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// The [`crate::collection::vec`] strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// String literals act as generation *patterns*, supporting the regex subset
/// the workspace uses: a sequence of literal characters and character
/// classes `[a-z...]`, each optionally quantified by `{n}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let pieces = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported string pattern {self:?}: {e}"));
        let mut out = String::new();
        for (choices, lo, hi) in &pieces {
            let reps = rng.gen_range(*lo..=*hi);
            for _ in 0..reps {
                out.push(choices[rng.gen_range(0..choices.len())]);
            }
        }
        out
    }
}

type PatternPiece = (Vec<char>, usize, usize);

/// Parses the `[class]{m,n}` / literal pattern subset.
fn parse_pattern(pattern: &str) -> Result<Vec<PatternPiece>, String> {
    let mut pieces: Vec<PatternPiece> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("checked above");
                            let hi = chars.next().expect("peeked above");
                            if lo > hi {
                                return Err(format!("inverted range {lo}-{hi}"));
                            }
                            set.extend(lo..=hi);
                        }
                        Some(ch) => {
                            if let Some(p) = prev.replace(ch) {
                                set.push(p);
                            }
                        }
                        None => return Err("unterminated character class".into()),
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                if set.is_empty() {
                    return Err("empty character class".into());
                }
                set
            }
            '\\' => vec![chars.next().ok_or("dangling backslash")?],
            '{' | '}' | ']' => return Err(format!("unexpected {c:?}")),
            _ => vec![c],
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(ch) => spec.push(ch),
                    None => return Err("unterminated quantifier".into()),
                }
            }
            let parse = |s: &str| s.trim().parse::<usize>().map_err(|e| e.to_string());
            match spec.split_once(',') {
                Some((m, n)) => (parse(m)?, parse(n)?),
                None => {
                    let n = parse(&spec)?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if lo > hi {
            return Err(format!("inverted quantifier {{{lo},{hi}}}"));
        }
        pieces.push((choices, lo, hi));
    }
    Ok(pieces)
}

#[cfg(test)]
mod tests {
    use super::parse_pattern;

    #[test]
    fn parses_class_with_quantifier() {
        let p = parse_pattern("[a-c]{1,4}").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].0, vec!['a', 'b', 'c']);
        assert_eq!((p[0].1, p[0].2), (1, 4));
    }

    #[test]
    fn parses_literals_and_exact_counts() {
        let p = parse_pattern("x[01]{3}").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].0, vec!['x']);
        assert_eq!(p[1].0, vec!['0', '1']);
        assert_eq!((p[1].1, p[1].2), (3, 3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_pattern("[a-z").is_err());
        assert!(parse_pattern("a{2").is_err());
        assert!(parse_pattern("[z-a]").is_err());
    }
}
