//! Offline stand-in for the `proptest` crate (strategy + macro subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of `proptest` its property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `boxed`, tuple /
//!   range / [`strategy::Just`] / regex-literal (`"[a-z]{1,4}"`) strategies;
//! * [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros;
//! * [`test_runner::ProptestConfig`] with a `cases` knob, honored by the
//!   `#![proptest_config(..)]` inner attribute.
//!
//! Unlike upstream there is **no shrinking**: a failing case panics with the
//! generated inputs' debug representation instead of a minimized
//! counterexample. Generation is deterministic per test (seeded from the test
//! name and case index), so failures are reproducible; set
//! `PROPTEST_CASES=<n>` to scale the number of cases per test.

#![warn(missing_docs)]

pub mod strategy;

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use core::ops::Range;

    /// A strategy for `Vec`s of `element` values with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Test-runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for upstream compatibility; the stand-in never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig {
                cases,
                max_shrink_iters: 0,
            }
        }
    }
}

/// One-stop imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-(test, case) generator: FNV-1a over the test name,
    /// mixed with the case index.
    pub fn case_rng(test_name: &str, case: u64) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
///
/// Each function runs [`test_runner::ProptestConfig::cases`] times with
/// freshly generated inputs; an optional leading
/// `#![proptest_config(expr)]` overrides the configuration for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..u64::from(config.cases) {
                let mut __rng = $crate::__rt::case_rng(stringify!($name), __case);
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Mirror upstream: the body runs in a `Result`-returning
                // closure, so `return Ok(())` skips a case.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__msg) = __outcome {
                    panic!("property {} failed on case {__case}: {__msg}",
                           stringify!($name));
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Builds a strategy choosing uniformly among the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property (panics with the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_string() -> impl Strategy<Value = String> {
        crate::collection::vec(prop_oneof![Just('a'), Just('b')], 1..4)
            .prop_map(|cs| cs.into_iter().collect())
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, y in 0usize..10) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(y < 10);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn mapped_strings_match_alphabet(s in small_string()) {
            prop_assert!(!s.is_empty() && s.len() < 4);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }

        #[test]
        fn regex_literal_strategy(s in "[a-z]{1,4}") {
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn tuples_compose(pair in (0i64..3, "[x-z]{1,1}")) {
            let (n, s) = pair;
            prop_assert!((0..3).contains(&n));
            prop_assert_eq!(s.len(), 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn config_cases_is_honored(_x in 0u8..255) {
            // Runs exactly 7 times; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u32..1000, 3..8);
        let a = strat.generate(&mut crate::__rt::case_rng("det", 5));
        let b = strat.generate(&mut crate::__rt::case_rng("det", 5));
        assert_eq!(a, b);
    }
}
