//! Offline stand-in for the `criterion` crate (bench-harness subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of `criterion` its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId::from_parameter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of upstream's
//! statistical analysis it warms each benchmark up briefly, then reports the
//! mean and minimum wall-clock time per iteration over a fixed measurement
//! window — enough to compare the naive baseline against the optimized
//! executor and to track regressions by eye. Set
//! `CRITERION_MEASURE_MS=<n>` to change the per-benchmark window (default
//! 500 ms; 0 runs each benchmark exactly once, which keeps `cargo test
//! --benches` fast). Passing `--test` to the bench binary (`cargo bench --
//! --test`) likewise smoke-runs each benchmark exactly once, mirroring
//! upstream criterion's behavior — CI uses it to keep bench targets
//! compiling and running without paying for measurements.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test`: smoke mode, one iteration per benchmark
        // (upstream criterion's --test flag).
        let smoke = std::env::args().any(|a| a == "--test");
        let ms = if smoke {
            0
        } else {
            std::env::var("CRITERION_MEASURE_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(500)
        };
        Criterion {
            measure: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measure, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.criterion.measure,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.criterion.measure,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream finalizes reports here; a no-op for the
    /// stand-in beyond consuming the group).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter value, e.g. a problem size.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    best: Duration,
    deadline: Option<Instant>,
}

impl Bencher {
    /// Calls `routine` repeatedly until the measurement window closes,
    /// timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        loop {
            let start = Instant::now();
            black_box(routine());
            let once = start.elapsed();
            self.elapsed += once;
            self.best = self.best.min(once);
            self.iters_done += 1;
            match self.deadline {
                Some(d) if Instant::now() < d => {}
                _ => break,
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, measure: Duration, f: &mut F) {
    // Warm-up: one untimed pass (also a smoke test under a zero window).
    let mut warm = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        best: Duration::MAX,
        deadline: None,
    };
    f(&mut warm);
    if measure.is_zero() {
        println!("{name}: smoke-ran {} iteration(s)", warm.iters_done);
        return;
    }
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        best: Duration::MAX,
        deadline: Some(Instant::now() + measure),
    };
    f(&mut b);
    let mean = b.elapsed / u32::try_from(b.iters_done.max(1)).unwrap_or(u32::MAX);
    println!(
        "{name}: mean {mean:?}, min {:?} over {} iterations",
        b.best, b.iters_done
    );
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 2, "warm-up plus at least one timed iteration");
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion {
            measure: Duration::ZERO,
        };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1)));
        group.finish();
    }
}
