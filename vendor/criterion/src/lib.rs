//! Offline stand-in for the `criterion` crate (bench-harness subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of `criterion` its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId::from_parameter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of upstream's
//! statistical analysis it warms each benchmark up briefly, then reports the
//! mean, median and minimum wall-clock time per iteration over a fixed
//! measurement window — enough to compare the naive baseline against the
//! optimized executor and to track regressions by eye. Set
//! `CRITERION_MEASURE_MS=<n>` to change the per-benchmark window (default
//! 500 ms; 0 runs each benchmark exactly once, which keeps `cargo test
//! --benches` fast). Passing `--test` to the bench binary (`cargo bench --
//! --test`) likewise smoke-runs each benchmark exactly once, mirroring
//! upstream criterion's behavior — CI uses it to keep bench targets
//! compiling and running without paying for measurements.
//!
//! # The `BENCH_<area>.json` trajectory
//!
//! Each bench binary additionally persists its results as a machine-readable
//! snapshot: when the binary exits ([`criterion_main!`] calls
//! [`finalize`]), the recorded `(benchmark name, median ns)` pairs are
//! written to `BENCH_<area>.json`, where `<area>` is the bench target's name
//! (derived from the binary path). Measured runs write to the workspace root
//! (the directory holding `Cargo.lock`, walking up from the working
//! directory; override with `TOORJAH_BENCH_DIR`), where the files are
//! committed per PR as a performance trajectory. Smoke runs (`-- --test`)
//! write to `target/bench-smoke/` instead, so CI never dirties the committed
//! trajectory with unmeasured numbers — the smoke snapshots exist for the
//! `bench_trajectory` validator to cross-check benchmark *names* against the
//! committed files.

#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration samples retained for the median: once the reservoir is
/// full it is thinned to every other sample and the sampling stride doubles,
/// keeping memory bounded while staying spread over the whole window.
const MAX_SAMPLES: usize = 4096;

fn records() -> &'static Mutex<Vec<(String, u128)>> {
    static RECORDS: OnceLock<Mutex<Vec<(String, u128)>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test`: smoke mode, one iteration per benchmark
        // (upstream criterion's --test flag).
        let ms = if smoke_mode() {
            0
        } else {
            std::env::var("CRITERION_MEASURE_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(500)
        };
        Criterion {
            measure: Duration::from_millis(ms),
        }
    }
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measure, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.criterion.measure,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.criterion.measure,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream finalizes reports here; a no-op for the
    /// stand-in beyond consuming the group).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter value, e.g. a problem size.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    best: Duration,
    deadline: Option<Instant>,
    samples: Vec<Duration>,
    stride: u64,
    since_sample: u64,
}

impl Bencher {
    fn new(deadline: Option<Instant>) -> Self {
        Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            best: Duration::MAX,
            deadline,
            samples: Vec::new(),
            stride: 1,
            since_sample: 0,
        }
    }

    /// Calls `routine` repeatedly until the measurement window closes,
    /// timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        loop {
            let start = Instant::now();
            black_box(routine());
            let once = start.elapsed();
            self.elapsed += once;
            self.best = self.best.min(once);
            self.iters_done += 1;
            self.since_sample += 1;
            if self.since_sample >= self.stride {
                self.since_sample = 0;
                self.samples.push(once);
                if self.samples.len() >= MAX_SAMPLES {
                    // Thin to every other sample and sample half as often.
                    let mut keep = false;
                    self.samples.retain(|_| {
                        keep = !keep;
                        keep
                    });
                    self.stride *= 2;
                }
            }
            match self.deadline {
                Some(d) if Instant::now() < d => {}
                _ => break,
            }
        }
    }

    /// The median of the retained per-iteration samples.
    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, measure: Duration, f: &mut F) {
    // Warm-up: one untimed pass (also a smoke test under a zero window).
    let mut warm = Bencher::new(None);
    f(&mut warm);
    if measure.is_zero() {
        println!("{name}: smoke-ran {} iteration(s)", warm.iters_done);
        // Record the warm pass so smoke snapshots still list every
        // benchmark name (the staleness check compares name sets).
        records()
            .lock()
            .unwrap()
            .push((name.to_string(), warm.median().as_nanos()));
        return;
    }
    let mut b = Bencher::new(Some(Instant::now() + measure));
    f(&mut b);
    let mean = b.elapsed / u32::try_from(b.iters_done.max(1)).unwrap_or(u32::MAX);
    let median = b.median();
    println!(
        "{name}: median {median:?}, mean {mean:?}, min {:?} over {} iterations",
        b.best, b.iters_done
    );
    records()
        .lock()
        .unwrap()
        .push((name.to_string(), median.as_nanos()));
}

/// Writes the recorded medians to `BENCH_<area>.json`. Called by the `main`
/// that [`criterion_main!`] expands after every group has run; harmless to
/// call with nothing recorded (writes an empty benchmark list).
///
/// `binary` is the bench binary's path (`argv[0]`): the area is its file
/// stem with cargo's trailing `-<hash>` stripped.
pub fn finalize(binary: &str) {
    let area = area_from_binary(binary);
    let records = records().lock().unwrap();
    let mut json = String::new();
    json.push_str("{\n  \"area\": \"");
    push_json_escaped(&mut json, &area);
    json.push_str("\",\n  \"benchmarks\": [");
    for (i, (name, median_ns)) in records.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str("\n    {\"name\": \"");
        push_json_escaped(&mut json, name);
        json.push_str(&format!("\", \"median_ns\": {median_ns}}}"));
    }
    json.push_str("\n  ]\n}\n");

    let dir = output_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("criterion: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("BENCH_{area}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("criterion: cannot write {}: {e}", path.display()),
    }
}

/// The bench area: the binary's file stem, minus cargo's `-<16 hex>` suffix.
fn area_from_binary(binary: &str) -> String {
    let stem = std::path::Path::new(binary)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => stem.to_string(),
    }
}

/// Where the snapshot goes: `target/bench-smoke/` under the workspace root
/// for smoke runs, otherwise `TOORJAH_BENCH_DIR` or the workspace root
/// itself (the nearest ancestor of the working directory with a
/// `Cargo.lock`, falling back to the working directory).
fn output_dir() -> std::path::PathBuf {
    let root = workspace_root();
    if smoke_mode() {
        return root.join("target").join("bench-smoke");
    }
    match std::env::var_os("TOORJAH_BENCH_DIR") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => root,
    }
}

fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd,
        }
    }
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`. After
/// every group has run, the recorded medians are persisted via
/// [`finalize`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            let binary = std::env::args().next().unwrap_or_default();
            $crate::finalize(&binary);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 2, "warm-up plus at least one timed iteration");
        let recorded = records().lock().unwrap();
        assert!(
            recorded.iter().any(|(name, _)| name == "noop"),
            "measured runs register their median"
        );
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion {
            measure: Duration::ZERO,
        };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1)));
        group.finish();
        let recorded = records().lock().unwrap();
        assert!(recorded.iter().any(|(name, _)| name == "g/7"));
        assert!(recorded.iter().any(|(name, _)| name == "g/plain"));
    }

    #[test]
    fn area_strips_cargo_hash() {
        assert_eq!(
            area_from_binary("/t/deps/datalog-0123456789abcdef"),
            "datalog"
        );
        assert_eq!(area_from_binary("target/release/cache"), "cache");
        assert_eq!(
            area_from_binary("multi-word-bench"),
            "multi-word-bench",
            "only a 16-hex-digit suffix is a cargo hash"
        );
    }

    #[test]
    fn sample_reservoir_stays_bounded() {
        let mut b = Bencher::new(None);
        for _ in 0..3 * MAX_SAMPLES as u64 {
            b.iter(|| black_box(1));
        }
        assert!(b.samples.len() <= MAX_SAMPLES);
        assert!(b.stride > 1, "stride doubled as the reservoir filled");
        assert!(b.median() > Duration::ZERO || b.best < Duration::from_nanos(1));
    }

    #[test]
    fn json_escaping_is_minimal_and_correct() {
        let mut s = String::new();
        push_json_escaped(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
    }
}
