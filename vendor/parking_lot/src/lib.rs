//! Offline stand-in for the `parking_lot` crate (Mutex/RwLock subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of `parking_lot` it uses: a [`Mutex`] and an [`RwLock`] whose
//! `lock()`/`read()`/`write()` return the guard directly (no poison
//! `Result`), layered over the `std::sync` primitives. Poisoning is
//! deliberately ignored — parking_lot has no poisoning, and the worst case on
//! a panicking holder is identical behavior to upstream.

#![warn(missing_docs)]

/// A mutual-exclusion lock mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Unlike
    /// `std::sync::RwLock`, never returns a poison error.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available. Unlike
    /// `std::sync::RwLock`, never returns a poison error.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = Arc::new(RwLock::new(0u32));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 0, "concurrent readers");
        }
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 8000);
    }

    #[test]
    fn rwlock_survives_poison() {
        let l = Arc::new(RwLock::new(1u8));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the std rwlock underneath");
        })
        .join();
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(1u8));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
