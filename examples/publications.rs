//! The §V publication workload: q1–q3 over the six-source schema, naive
//! (Fig. 1) versus optimized (⊂-minimal plan), printed as a Fig. 6-style
//! per-relation table.
//!
//! Run with: `cargo run --release --example publications`

use toorjah::engine::{naive_evaluate, InstanceSource, NaiveOptions};
use toorjah::system::Toorjah;
use toorjah::workload::{
    paper_queries, publication_instance, publication_schema, PublicationConfig,
};

fn main() {
    let schema = publication_schema();
    let config = PublicationConfig::paper();
    println!(
        "generating synthetic data (seed {:#x}, ≈{} tuples/relation)…",
        config.seed, config.tuples_per_relation
    );
    let instance = publication_instance(&schema, &config);
    let provider = InstanceSource::new(schema.clone(), instance);
    let system = Toorjah::new(provider.clone());

    for (name, query) in paper_queries(&schema) {
        println!("\n=== {name}: {} ===", query.display(&schema));
        let naive = naive_evaluate(&query, &schema, &provider, NaiveOptions::default())
            .expect("naive evaluation succeeds");
        let optimized = system
            .ask_query(&query)
            .expect("optimized execution succeeds");

        println!(
            "{:<12}{:>14}{:>14}{:>12}{:>12}",
            "relation", "naive acc.", "opt. acc.", "naive rows", "opt. rows"
        );
        for (id, rel) in schema.iter() {
            let fmt = |n: usize| {
                if n == 0 {
                    "-".to_string()
                } else {
                    n.to_string()
                }
            };
            println!(
                "{:<12}{:>14}{:>14}{:>12}{:>12}",
                rel.name(),
                fmt(naive.stats.accesses_to(id)),
                fmt(optimized.stats().accesses_to(id)),
                fmt(naive.stats.extracted_from(id)),
                fmt(optimized.stats().extracted_from(id)),
            );
        }
        let saved = 100.0
            * (1.0
                - optimized.stats().total_accesses as f64
                    / naive.stats.total_accesses.max(1) as f64);
        println!(
            "answers: {} (identical: {}); accesses {} → {} ({saved:.1}% saved)",
            optimized.answers.len(),
            {
                let mut a = naive.answers.clone();
                let mut b = optimized.answers.clone();
                a.sort();
                b.sort();
                a == b
            },
            naive.stats.total_accesses,
            optimized.stats().total_accesses,
        );
    }
}
