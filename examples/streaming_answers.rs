//! The §V distillation strategy: wrapper threads access slow sources in
//! parallel and answers stream out as soon as they are computed, so the
//! time-to-first-answer is a small fraction of the total execution time.
//!
//! Run with: `cargo run --release --example streaming_answers`

use std::time::Duration;

use toorjah::catalog::{tuple, Instance, Schema};
use toorjah::engine::{InstanceSource, LatencySource};
use toorjah::system::{Statement, StreamEvent, Toorjah};

fn main() {
    // A three-hop integration scenario: flights must be probed airport by
    // airport, hotel lookups need a city, and a free city directory
    // bootstraps everything.
    let schema = Schema::parse(
        "cities^oo(City, Country)
         flights^io(City, City)
         hotels^io(City, Hotel)",
    )
    .expect("schema parses");

    let mut db = Instance::new(&schema);
    let city = |i: usize| format!("city{i}");
    for i in 0..12 {
        db.insert("cities", tuple![city(i), "somewhere"]).unwrap();
        // A ring of flights plus a couple of chords.
        db.insert("flights", tuple![city(i), city((i + 1) % 12)])
            .unwrap();
        db.insert("hotels", tuple![city(i), format!("hotel-{i}")])
            .unwrap();
    }

    // 3 ms per remote access, really slept on the wrapper threads.
    let provider = LatencySource::new(
        InstanceSource::new(schema.clone(), db),
        Duration::from_millis(3),
    )
    .with_real_sleep();

    let system = Toorjah::new(provider);
    // Streaming is an execution mode of a prepared statement, not a
    // separate entry point: `stream()` hands back the incremental answers
    // (`execute(ExecMode::Streaming)` would collect them into a Response).
    let statement = Statement::parse("q(C, H) <- flights(X, C), hotels(C, H)", system.schema())
        .expect("statement parses");
    let stream = system
        .prepare(&statement)
        .expect("query plans")
        .stream()
        .expect("CQ statements stream");

    println!("answers as they arrive:");
    let mut report = None;
    while let Some(event) = stream.next_event() {
        match event {
            StreamEvent::Answer { tuple, at } => {
                println!("  [{:>7.1?}] {tuple}", at);
            }
            StreamEvent::Done(r) => {
                report = Some(r);
            }
            StreamEvent::Failed(e) => {
                eprintln!("execution failed: {e}");
                return;
            }
        }
    }
    let report = report.expect("stream ends with Done");
    println!(
        "\n{} answers, {} accesses; first answer after {:.1?} of {:.1?} total ({:.0}%)",
        report.answers.len(),
        report.stats.total_accesses,
        report.time_to_first_answer.unwrap_or_default(),
        report.total_time,
        100.0
            * report
                .time_to_first_answer
                .unwrap_or_default()
                .as_secs_f64()
            / report.total_time.as_secs_f64().max(1e-9),
    );
}
