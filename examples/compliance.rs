//! Compliance screening with the extended query classes: safe negation
//! (§VII / [18]), answer-completeness checking ([Li 2003] stability), and
//! orderability ([Yang–Kifer–Chaudhri 2006]).
//!
//! Scenario: an integrator screens contractors against a sanctions source.
//! `contracts` is free; `sanctions` requires the person to be given (a
//! typical lookup form); `registry` requires a company.
//!
//! Run with: `cargo run --example compliance`

use toorjah::catalog::{tuple, Instance, Schema};
use toorjah::core::{is_feasible, is_orderable};
use toorjah::engine::{check_completeness, ExecOptions, InstanceSource};
use toorjah::query::parse_query;
use toorjah::system::{ExecMode, Statement, Toorjah};

fn main() {
    let schema = Schema::parse(
        "contracts^oo(Company, Person)
         sanctions^io(Person, Authority)
         registry^io(Company, Country)",
    )
    .expect("schema parses");

    let db = Instance::with_data(
        &schema,
        [
            (
                "contracts",
                vec![
                    tuple!["acme", "ann"],
                    tuple!["acme", "bob"],
                    tuple!["globex", "cal"],
                ],
            ),
            ("sanctions", vec![tuple!["bob", "ofac"]]),
            (
                "registry",
                vec![tuple!["acme", "it"], tuple!["globex", "de"]],
            ),
        ],
    )
    .expect("instance valid");
    let provider = InstanceSource::new(schema.clone(), db);
    let system = Toorjah::new(provider.clone());

    // 1. Positive query: who works on contracts, and where is the company
    //    registered?
    let q_text = "q(P, Country) <- contracts(Co, P), registry(Co, Country)";
    let q = parse_query(q_text, &schema).expect("query parses");
    println!("query: {}", q.display(&schema));
    println!(
        "orderable: {}; feasible: {} (executable left-to-right, no recursion needed)",
        is_orderable(&q, &schema),
        is_feasible(&q, &schema),
    );

    // 2. Completeness: is the obtainable answer the complete one here?
    let completeness =
        check_completeness(&q, &schema, &provider, ExecOptions::default()).expect("runs");
    println!(
        "obtainable answers: {}; complete on this instance: {:?}; statically stable: {}",
        completeness.obtainable.len(),
        completeness.is_complete_here,
        completeness.statically_stable,
    );

    // 3. Safe negation: screened = contracted people NOT on the sanctions
    //    list (¬sanctions(P, 'ofac') is decided exactly by a per-person
    //    lookup). Negation is plain statement syntax now: a `!`-prefixed
    //    literal, prepared and executed like any other statement.
    let negated = Statement::parse(
        "q(P, Country) <- contracts(Co, P), registry(Co, Country), !sanctions(P, 'ofac')",
        &schema,
    )
    .expect("safe negation parses");
    let prepared = system.prepare(&negated).expect("negated statement plans");
    let response = prepared
        .execute(ExecMode::Sequential)
        .expect("negated query runs");
    println!("\ncleared contractors (not OFAC-sanctioned):");
    for answer in &response.answers {
        println!("  {answer}");
    }
    println!(
        "{} candidate(s) rejected by the sanction check; {} total accesses",
        response.rejected, response.profile.stats.total_accesses,
    );
}
