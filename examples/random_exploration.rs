//! Random-workload exploration: generate a §V-style random schema and a
//! handful of queries, show the d-graph optimization at work (arcs deleted,
//! strong arcs found, relevant sources), and compare naive vs optimized
//! access counts on a random instance.
//!
//! Run with: `cargo run --release --example random_exploration [seed]`

use toorjah::core::plan_query;
use toorjah::engine::{execute_plan, naive_evaluate, ExecOptions, InstanceSource, NaiveOptions};
use toorjah::workload::random::seeded_rng;
use toorjah::workload::{random_instance, random_query, random_schema, RandomParams};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2008);
    let params = RandomParams {
        domain_values: (20, 40),
        tuples: (10, 200),
        ..RandomParams::paper()
    };
    let mut rng = seeded_rng(seed);
    let generated = random_schema(&mut rng, &params);
    println!("schema (seed {seed}):\n{}\n", generated.schema);
    let instance = random_instance(&mut rng, &generated, &params);
    let provider = InstanceSource::new(generated.schema.clone(), instance);

    let mut shown = 0;
    while shown < 5 {
        let Some(query) = random_query(&mut rng, &generated, &params) else {
            break;
        };
        let planned = match plan_query(&query, &generated.schema) {
            Ok(p) => p,
            Err(_) => continue, // not answerable: §V excludes these
        };
        shown += 1;
        println!("query: {}", query.display(&generated.schema));
        println!(
            "  d-graph: {} arcs → {} deleted, {} strong, {} weak; {} of {} sources relevant",
            planned.optimized.graph().arcs().len(),
            planned.optimized.deleted_count(),
            planned.optimized.strong_count(),
            planned.optimized.weak_count(),
            planned.plan.caches.len(),
            planned.optimized.graph().sources().len(),
        );
        let naive = naive_evaluate(
            &query,
            &generated.schema,
            &provider,
            NaiveOptions::default(),
        );
        let optimized = execute_plan(&planned.plan, &provider, ExecOptions::default());
        match (naive, optimized) {
            (Ok(n), Ok(o)) => {
                let saved = 100.0
                    * (1.0 - o.stats.total_accesses as f64 / n.stats.total_accesses.max(1) as f64);
                println!(
                    "  accesses: naive {} → optimized {} ({saved:.1}% saved); {} answers\n",
                    n.stats.total_accesses,
                    o.stats.total_accesses,
                    o.answers.len(),
                );
            }
            (n, o) => println!(
                "  evaluation skipped: naive={:?} opt={:?}\n",
                n.is_ok(),
                o.is_ok()
            ),
        }
    }
}
