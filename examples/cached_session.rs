//! Sessions & caching: warm vs. cold access counts on Example 1.
//!
//! A serving deployment answers many overlapping queries over the same
//! sources. With the default per-query meta-cache every query re-pays every
//! remote access; with a session-level [`SharedAccessCache`] each access is
//! paid once *across* the whole workload, and a snapshot carries the warmth
//! over a restart.
//!
//! Run with: `cargo run --example cached_session`

use std::sync::Arc;

use toorjah::cache::SharedAccessCache;
use toorjah::engine::{InstanceSource, SourceProvider};
use toorjah::system::Toorjah;
use toorjah::workload::{
    music_instance, music_schema, overlapping_queries, MusicConfig, OverlapParams,
};

fn main() {
    let schema = music_schema();
    let db = music_instance(&schema, &MusicConfig::default());
    let provider: Arc<dyn SourceProvider> = Arc::new(InstanceSource::new(schema.clone(), db));
    let queries = overlapping_queries(&OverlapParams::default());

    // Cold: the paper's one-shot semantics — every query starts from an
    // empty meta-cache.
    let cold_system = Toorjah::from_arc(Arc::clone(&provider));
    let cold_total: usize = queries
        .iter()
        .map(|q| {
            cold_system
                .ask(q)
                .expect("workload query")
                .profile
                .stats
                .total_accesses
        })
        .sum();

    // Warm: one session cache shared by all queries.
    let cache = SharedAccessCache::unbounded();
    let session = Toorjah::from_arc(Arc::clone(&provider)).with_cache(cache.clone());
    println!("== session over {} overlapping queries ==", queries.len());
    let mut warm_total = 0usize;
    for (i, q) in queries.iter().enumerate() {
        let result = session.ask(q).expect("workload query");
        warm_total += result.profile.stats.total_accesses;
        println!(
            "  q{i:02}: {:>3} accesses ({:>3} cache hits)  {q}",
            result.profile.stats.total_accesses, result.profile.accesses_served_by_cache
        );
    }

    println!("\n== cold vs. warm ==");
    println!("  per-query caches: {cold_total:>4} total accesses");
    println!("  shared cache:     {warm_total:>4} total accesses");
    println!(
        "  reduction:        {:>4.0}%",
        100.0 * (1.0 - warm_total as f64 / cold_total as f64)
    );
    println!("  cache: {}", cache.stats());

    // Warm-start: snapshot the session, "restart", reload, re-run.
    let snapshot = cache.snapshot(&schema);
    let restarted = SharedAccessCache::unbounded();
    let report = restarted
        .load_snapshot(&schema, &snapshot)
        .expect("own snapshot reloads");
    let warm_started = Toorjah::from_arc(provider).with_cache(restarted);
    let replay_total: usize = queries
        .iter()
        .map(|q| {
            warm_started
                .ask(q)
                .expect("workload query")
                .profile
                .stats
                .total_accesses
        })
        .sum();
    println!("\n== warm-start after restart ==");
    println!(
        "  snapshot: {} lines, {} bytes; reloaded {} accesses",
        snapshot.lines().count(),
        snapshot.len(),
        report.loaded
    );
    println!("  replayed workload: {replay_total} accesses");
    assert_eq!(replay_total, 0, "a warm-started session pays nothing");
    assert!(warm_total < cold_total, "sharing must save accesses");
}
