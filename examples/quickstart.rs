//! Quickstart: Example 1 of the paper.
//!
//! Three music sources sit behind web forms: `r1` requires the artist name,
//! `r2` requires the year, `r3` is freely accessible. The query asks for the
//! nationality of whoever wrote *volare* — with no value for the form fields
//! of `r1`/`r2`, answering requires a recursive plan that bootstraps from
//! `r3`, a relation the query never mentions.
//!
//! Run with: `cargo run --example quickstart`

use toorjah::catalog::{tuple, Instance, Schema};
use toorjah::engine::InstanceSource;
use toorjah::system::{ExecMode, Statement, Toorjah};

fn main() {
    let schema = Schema::parse(
        "r1^ioo(Artist, Nation, Year)
         r2^oio(Title, Year, Artist)
         r3^oo(Artist, Album)",
    )
    .expect("schema parses");

    let db = Instance::with_data(
        &schema,
        [
            (
                "r1",
                vec![
                    tuple!["modugno", "italy", 1928],
                    tuple!["mina", "italy", 1958],
                    tuple!["brel", "belgium", 1929],
                ],
            ),
            (
                "r2",
                vec![
                    tuple!["volare", 1958, "modugno"],
                    tuple!["ne me quitte pas", 1959, "brel"],
                ],
            ),
            (
                "r3",
                vec![
                    tuple!["modugno", "nel blu dipinto di blu"],
                    tuple!["mina", "studio uno"],
                ],
            ),
        ],
    )
    .expect("instance is valid");

    let system = Toorjah::new(InstanceSource::new(schema, db));
    let query = "q(N) <- r1(A, N, Y1), r2('volare', Y2, A)";

    println!("== plan ==");
    println!("{}", system.explain(query).expect("query plans"));

    // The statement lifecycle: parse once, prepare (plan) once, execute as
    // often as you like — re-executions skip parse and plan entirely.
    let statement = Statement::parse(query, system.schema()).expect("statement parses");
    let prepared = system.prepare(&statement).expect("statement plans");
    let response = prepared
        .execute(ExecMode::Sequential)
        .expect("query executes");
    println!("== answers ==");
    for answer in &response.answers {
        println!("  {answer}");
    }
    println!("\n== accesses ==");
    print!("{}", response.stats().table(system.schema()));
    println!(
        "\n{} total accesses; forall-minimal plan: {}",
        response.stats().total_accesses,
        if prepared
            .planned()
            .expect("CQ statements carry a plan")
            .minimality
            .forall_minimal
        {
            "yes"
        } else {
            "no"
        },
    );
    let warm = prepared.execute(ExecMode::Sequential).expect("re-executes");
    println!(
        "re-execution #{}: parse skipped: {}, plan skipped: {}, executed in {:.1?}",
        warm.profile.execution,
        warm.profile.timings.parse.is_none(),
        warm.profile.timings.plan.is_none(),
        warm.profile.timings.execute,
    );
}
