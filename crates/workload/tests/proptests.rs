//! Property-based tests of the workload generators: distribution bounds,
//! determinism and structural guarantees that the §V experiments rely on.

use proptest::prelude::*;
use toorjah_workload::random::seeded_rng;
use toorjah_workload::{
    paper_queries, publication_instance, publication_schema, random_instance, random_query,
    random_schema, PublicationConfig, RandomParams,
};

proptest! {
    /// Generated schemas respect the paper's bounds and every pool is
    /// non-empty.
    #[test]
    fn schema_bounds(seed in 0u64..100_000) {
        let params = RandomParams::paper();
        let mut rng = seeded_rng(seed);
        let g = random_schema(&mut rng, &params);
        let n = g.schema.relation_count();
        prop_assert!((params.relations.0..=params.relations.1).contains(&n));
        for (_, rel) in g.schema.iter() {
            prop_assert!((params.arity.0..=params.arity.1).contains(&rel.arity()));
        }
        for pool in &g.pools {
            prop_assert!(!pool.is_empty());
        }
    }

    /// Generated queries satisfy the §V shape constraints: atom counts in
    /// range, joins present for multi-atom queries, heads non-empty and
    /// safe, constants drawn from the pools.
    #[test]
    fn query_shape(seed in 0u64..100_000) {
        let params = RandomParams::paper();
        let mut rng = seeded_rng(seed);
        let g = random_schema(&mut rng, &params);
        if let Some(q) = random_query(&mut rng, &g, &params) {
            prop_assert!((params.atoms.0..=params.atoms.1).contains(&q.atoms().len()));
            if q.atoms().len() >= 2 {
                prop_assert!(q.has_join());
            }
            prop_assert!(!q.head().is_empty());
            for (value, domain) in q.constants(&g.schema) {
                prop_assert!(g.pools[domain.index()].contains(&value));
            }
        }
    }

    /// Instances stay within the configured tuple bounds and draw only pool
    /// values.
    #[test]
    fn instance_bounds(seed in 0u64..50_000) {
        let params = RandomParams::small();
        let mut rng = seeded_rng(seed);
        let g = random_schema(&mut rng, &params);
        let db = random_instance(&mut rng, &g, &params);
        for (id, rel) in g.schema.iter() {
            prop_assert!(db.relation_len(id) <= params.tuples.1);
            for k in 0..rel.arity() {
                for v in db.values_at(id, k) {
                    prop_assert!(g.pools[rel.domain(k).index()].contains(&v));
                }
            }
        }
    }

    /// The whole generation pipeline is a pure function of the seed.
    #[test]
    fn generation_determinism(seed in 0u64..50_000) {
        let params = RandomParams::small();
        let run = || {
            let mut rng = seeded_rng(seed);
            let g = random_schema(&mut rng, &params);
            let q = random_query(&mut rng, &g, &params)
                .map(|q| q.display(&g.schema).to_string());
            let db = random_instance(&mut rng, &g, &params);
            (g.schema.to_string(), q, db.total_tuples())
        };
        prop_assert_eq!(run(), run());
    }

    /// Publication instances are deterministic in the seed and always
    /// contain the fixed points q3 depends on (icde, 2008).
    #[test]
    fn publication_fixed_points(seed in 0u64..2_000) {
        let schema = publication_schema();
        let config = PublicationConfig { seed, ..PublicationConfig::small() };
        let db = publication_instance(&schema, &config);
        let conf = schema.relation_id("conf").unwrap();
        prop_assert!(db.relation_len(conf) > 0);
        // The three paper queries always parse against the schema.
        prop_assert_eq!(paper_queries(&schema).len(), 3);
    }
}
