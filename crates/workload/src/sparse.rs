//! The sparse star-join workload: a high-irrelevance access graph for the
//! engine's runtime relevance pruning.
//!
//! The schema is a star around a shared key domain:
//!
//! ```text
//! gen^o(K)          — free: enumerates every key
//! probe^io(K, V)    — sparse: only a small fraction of keys have tuples
//! audit^io(K, W)    — dense: every key has a tuple
//! ```
//!
//! and the query joins all three on `K`. The planner feeds both `probe`
//! and `audit` their `K` inputs from `gen` (strong arcs), so *statically*
//! every key must be tried against both relations — `2·keys + 1` accesses.
//! At runtime, however, whichever of the two is populated second can only
//! contribute to an answer for keys the *first* one matched: the kernel's
//! relevance pruner drops the rest before dispatch, cutting
//! `accesses_performed` by roughly the miss rate of the sparse relation
//! (≈ 45% at the defaults) with bit-identical answers. Which accesses
//! those are depends on the data — exactly the relevance that static
//! analysis cannot decide.
//!
//! Everything is deterministic given the seed, so the `relevance` bench
//! and `tests/relevance.rs` are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use toorjah_catalog::{Instance, Schema, Tuple, Value};

/// The sparse star schema: a free key generator, a sparse branch and a
/// dense branch, all keyed by the shared domain `K`.
pub fn sparse_schema() -> Schema {
    Schema::parse("gen^o(K) probe^io(K, V) audit^io(K, W)")
        .expect("the sparse schema is well-formed")
}

/// The star query joining all three relations on the key.
pub fn sparse_query() -> &'static str {
    "q(V, W) <- gen(K), probe(K, V), audit(K, W)"
}

/// Knobs for the sparse instance.
#[derive(Clone, Copy, Debug)]
pub struct SparseConfig {
    /// Distinct keys `gen` enumerates (`k0`, `k1`, …).
    pub keys: usize,
    /// Keys with a `probe` tuple (the sparse branch). Key `k0` always
    /// matches, so the query has answers.
    pub probe_matches: usize,
    /// Keys with an `audit` tuple (the dense branch by default).
    pub audit_matches: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl Default for SparseConfig {
    fn default() -> Self {
        SparseConfig {
            keys: 400,
            probe_matches: 40,
            audit_matches: 400,
            seed: 0x5AB5_E001,
        }
    }
}

impl SparseConfig {
    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        SparseConfig {
            keys: 60,
            probe_matches: 6,
            audit_matches: 60,
            seed: 11,
        }
    }

    /// The access count of the unpruned run: one free access to `gen` plus
    /// one access per key to each of `probe` and `audit`.
    pub fn unpruned_accesses(&self) -> usize {
        1 + 2 * self.keys
    }
}

/// Generates a deterministic sparse instance: every key in `gen`, a random
/// `probe_matches`-sized key subset (always containing `k0`) in `probe`,
/// and likewise for `audit`.
pub fn sparse_instance(schema: &Schema, config: &SparseConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let key = |i: usize| Value::str(format!("k{i}"));

    let pick = |rng: &mut StdRng, wanted: usize| -> Vec<usize> {
        let wanted = wanted.min(config.keys);
        let mut chosen = vec![false; config.keys];
        // Key 0 is always a match, so probe ∩ audit is non-empty and the
        // query has at least one answer.
        let mut picked = 0usize;
        if wanted > 0 {
            chosen[0] = true;
            picked = 1;
        }
        while picked < wanted {
            let i = rng.gen_range(0..config.keys);
            if !chosen[i] {
                chosen[i] = true;
                picked += 1;
            }
        }
        (0..config.keys).filter(|&i| chosen[i]).collect()
    };

    let mut db = Instance::new(schema);
    for i in 0..config.keys {
        db.insert("gen", Tuple::new(vec![key(i)]))
            .expect("gen tuple matches the schema");
    }
    for i in pick(&mut rng, config.probe_matches) {
        db.insert(
            "probe",
            Tuple::new(vec![key(i), Value::str(format!("v{i}"))]),
        )
        .expect("probe tuple matches the schema");
    }
    for i in pick(&mut rng, config.audit_matches) {
        db.insert(
            "audit",
            Tuple::new(vec![key(i), Value::str(format!("w{i}"))]),
        )
        .expect("audit tuple matches the schema");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_query::parse_query;

    #[test]
    fn instance_is_deterministic_and_sparse() {
        let schema = sparse_schema();
        let config = SparseConfig::small();
        let db = sparse_instance(&schema, &config);
        let again = sparse_instance(&schema, &config);
        for (id, _) in schema.iter() {
            assert_eq!(db.full_extension(id), again.full_extension(id));
        }
        let gen = schema.relation_id("gen").unwrap();
        let probe = schema.relation_id("probe").unwrap();
        let audit = schema.relation_id("audit").unwrap();
        assert_eq!(db.full_extension(gen).len(), config.keys);
        assert_eq!(db.full_extension(probe).len(), config.probe_matches);
        assert_eq!(db.full_extension(audit).len(), config.audit_matches);
        // The guaranteed overlap key.
        assert!(db
            .full_extension(probe)
            .iter()
            .any(|t| t[0] == Value::str("k0")));
    }

    #[test]
    fn query_parses_and_counts_add_up() {
        let schema = sparse_schema();
        parse_query(sparse_query(), &schema).unwrap();
        assert_eq!(SparseConfig::default().unpruned_accesses(), 801);
    }
}
