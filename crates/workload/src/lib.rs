//! # toorjah-workload
//!
//! Workload substrate for the Toorjah reproduction of *"Querying Data under
//! Access Limitations"* (Calì & Martinenghi, ICDE 2008):
//!
//! * [`publications`]: the fixed §V schema (`pub1`, `pub2`, `conf`, `rev`,
//!   `sub`, `rev_icde`), its seeded synthetic instance generator, and the
//!   three hand-written queries `q1`–`q3` of Fig. 6;
//! * [`random`]: the synthetic workload of Figs. 10/11 — random schemata
//!   (5–10 relations of arity 1–5 with random access patterns), random CQs
//!   (2–6 atoms, at least one join), and random instances (10–10,000 tuples
//!   per relation drawn from per-domain value pools of 100–1,000 values);
//! * [`overlapping`]: the serving workload for the shared-cache subsystem —
//!   Example 1's music schema with many conjunctive queries whose access
//!   sets heavily intersect (popular-entity traffic);
//! * [`sparse`]: the high-irrelevance star-join workload for the engine's
//!   runtime relevance pruning — statically every access is needed, at
//!   runtime most provably cannot reach the query head;
//! * [`bound`]: the bound-reachability workload for demand-driven (magic
//!   sets) Datalog evaluation — a left-linear transitive closure whose
//!   full fixpoint dwarfs the bound query's answer set by a tunable
//!   fan-out factor;
//! * [`mod@traffic`]: multi-tenant streams for the query service — N tenants ×
//!   M overlapping statements in a seeded mix, replayed by the server load
//!   test and the CI daemon smoke step.
//!
//! All generators are deterministic given a seed, so experiments and tests
//! are reproducible.

#![warn(missing_docs)]

pub mod bound;
pub mod overlapping;
pub mod publications;
pub mod random;
pub mod sparse;
pub mod traffic;

pub use bound::{bound_closure, BoundConfig, BoundWorkload};
pub use overlapping::{
    music_instance, music_schema, overlapping_queries, MusicConfig, OverlapParams,
};
pub use publications::{
    paper_queries, publication_instance, publication_schema, PublicationConfig,
};
pub use random::{random_instance, random_query, random_schema, GeneratedSchema, RandomParams};
pub use sparse::{sparse_instance, sparse_query, sparse_schema, SparseConfig};
pub use traffic::{traffic, traffic_statements, TenantTraffic, TrafficParams};
