//! The overlapping-query workload: many conjunctive queries over the
//! Example 1 **music schema** whose access sets heavily intersect.
//!
//! This is the serving scenario the shared-cache subsystem targets: a
//! population of users asks variations of the same handful of question
//! shapes ("nation of artist X", "titles from X's year", "albums") over a
//! small pool of popular entities, so most accesses any one query needs
//! were already made by an earlier query. A per-query meta-cache re-pays
//! them every time; a [`toorjah-cache`] session pays once.
//!
//! Everything is deterministic given the seeds, so benchmarks and the
//! `tests/cache.rs` acceptance suite are reproducible.
//!
//! [`toorjah-cache`]: https://docs.rs/toorjah-cache

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use toorjah_catalog::{Instance, Schema, Tuple, Value};

/// The paper's Example 1 schema: music sources behind web forms. `r1`
/// requires the artist to be given, `r2` the year; `r3` is free.
pub fn music_schema() -> Schema {
    Schema::parse(
        "r1^ioo(Artist, Nation, Year)
         r2^oio(Title, Year, Artist)
         r3^oo(Artist, Album)",
    )
    .expect("the music schema is well-formed")
}

/// Knobs for the synthetic music instance.
#[derive(Clone, Copy, Debug)]
pub struct MusicConfig {
    /// Distinct artists (`a0`, `a1`, …).
    pub artists: usize,
    /// Distinct nations artists are drawn from.
    pub nations: usize,
    /// Distinct years (starting at 1950).
    pub years: usize,
    /// Songs in `r2` (each by one artist, in that artist's active year).
    pub songs: usize,
    /// Albums per artist in the free relation `r3`.
    pub albums_per_artist: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl Default for MusicConfig {
    fn default() -> Self {
        MusicConfig {
            artists: 40,
            nations: 8,
            years: 12,
            songs: 120,
            albums_per_artist: 3,
            seed: 0x1CDE_2008,
        }
    }
}

impl MusicConfig {
    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        MusicConfig {
            artists: 10,
            nations: 4,
            years: 5,
            songs: 25,
            albums_per_artist: 2,
            seed: 7,
        }
    }
}

/// Generates a deterministic synthetic instance of the music schema. The
/// relations are correlated — every song's year is its artist's active
/// year, every artist has albums — so the workload's joins produce answers.
pub fn music_instance(schema: &Schema, config: &MusicConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let artist = |i: usize| Value::str(format!("a{i}"));
    let nations: Vec<usize> = (0..config.artists)
        .map(|_| rng.gen_range(0..config.nations.max(1)))
        .collect();
    let years: Vec<i64> = (0..config.artists)
        .map(|_| 1950 + rng.gen_range(0..config.years.max(1)) as i64)
        .collect();

    let mut db = Instance::new(schema);
    for i in 0..config.artists {
        db.insert(
            "r1",
            Tuple::new(vec![
                artist(i),
                Value::str(format!("n{}", nations[i])),
                Value::int(years[i]),
            ]),
        )
        .expect("r1 tuple matches the schema");
    }
    for s in 0..config.songs {
        let by = s % config.artists.max(1);
        db.insert(
            "r2",
            Tuple::new(vec![
                Value::str(format!("t{s}")),
                Value::int(years[by]),
                artist(by),
            ]),
        )
        .expect("r2 tuple matches the schema");
    }
    for i in 0..config.artists {
        for k in 0..config.albums_per_artist {
            db.insert(
                "r3",
                Tuple::new(vec![artist(i), Value::str(format!("al{i}_{k}"))]),
            )
            .expect("r3 tuple matches the schema");
        }
    }
    db
}

/// Knobs for the overlapping-query generator.
#[derive(Clone, Copy, Debug)]
pub struct OverlapParams {
    /// How many queries to generate.
    pub queries: usize,
    /// Size of the "popular artist" pool constants are drawn from; smaller
    /// pools mean heavier overlap. Must not exceed the instance's artists.
    pub artist_pool: usize,
    /// Size of the popular song-title pool (`t0`, `t1`, …).
    pub title_pool: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl Default for OverlapParams {
    fn default() -> Self {
        OverlapParams {
            queries: 24,
            artist_pool: 4,
            title_pool: 3,
            seed: 0x00AC_CE55,
        }
    }
}

/// Generates `params.queries` conjunctive queries over [`music_schema`] in
/// the paper's textual notation. Shapes are drawn uniformly from six
/// templates, with constants from small popular pools, so the access sets
/// of distinct queries intersect heavily — the workload the acceptance
/// criterion "a shared cache reduces total accesses by ≥ 40%" is measured
/// on. Every query is answerable: bound inputs come from constants, join
/// variables, or (via the planner's d-graph) the free relation `r3`.
pub fn overlapping_queries(params: &OverlapParams) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut queries = Vec::with_capacity(params.queries);
    for _ in 0..params.queries {
        let a = rng.gen_range(0..params.artist_pool.max(1));
        let t = rng.gen_range(0..params.title_pool.max(1));
        let query = match rng.gen_range(0..6u8) {
            // Nation of a popular artist.
            0 => format!("q(N) <- r1('a{a}', N, Y)"),
            // Titles released in a popular artist's active year.
            1 => format!("q(T) <- r1('a{a}', N, Y), r2(T, Y, A2)"),
            // All albums (one access to the free r3, shared by everyone).
            2 => "q(Al) <- r3(A, Al)".to_string(),
            // Artists with a known nation, with their albums: r3 unlocks r1.
            3 => "q(A, Al) <- r3(A, Al), r1(A, N, Y)".to_string(),
            // Nation of whoever released a popular title (the quickstart's
            // recursive shape: r3, unmentioned, bootstraps r1 and r2).
            4 => format!("q(N) <- r1(A, N, Y1), r2('t{t}', Y2, A)"),
            // Titles from a popular artist's year, paired with the albums.
            _ => format!("q(T, Al) <- r1('a{a}', N, Y), r2(T, Y, A2), r3(A3, Al)"),
        };
        queries.push(query);
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_query::parse_query;

    #[test]
    fn instance_is_correlated_and_deterministic() {
        let schema = music_schema();
        let config = MusicConfig::small();
        let db = music_instance(&schema, &config);
        let again = music_instance(&schema, &config);
        for (id, _) in schema.iter() {
            assert!(!db.full_extension(id).is_empty());
            assert_eq!(db.full_extension(id), again.full_extension(id));
        }
        // Every song's year matches its artist's r1 year (joins survive).
        let r1 = schema.relation_id("r1").unwrap();
        let r2 = schema.relation_id("r2").unwrap();
        for song in db.full_extension(r2) {
            assert!(db
                .full_extension(r1)
                .iter()
                .any(|row| row[0] == song[2] && row[2] == song[1]));
        }
    }

    #[test]
    fn queries_parse_and_are_deterministic() {
        let schema = music_schema();
        let params = OverlapParams::default();
        let queries = overlapping_queries(&params);
        assert_eq!(queries.len(), params.queries);
        assert!(queries.len() >= 20, "the acceptance workload needs ≥ 20");
        for q in &queries {
            parse_query(q, &schema).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
        assert_eq!(queries, overlapping_queries(&params));
        // A different seed produces a different mix.
        let other = overlapping_queries(&OverlapParams { seed: 99, ..params });
        assert_ne!(queries, other);
    }

    #[test]
    fn workload_overlaps() {
        // The same query text appearing more than once is the degenerate
        // overlap; even among *distinct* texts the constant pools collide.
        let queries = overlapping_queries(&OverlapParams::default());
        let distinct: std::collections::HashSet<&String> = queries.iter().collect();
        assert!(
            distinct.len() < queries.len(),
            "a popular-pool workload repeats questions"
        );
    }
}
