//! The §V publication workload: schema, synthetic data, and the queries of
//! Fig. 6.
//!
//! The paper's schema:
//!
//! ```text
//! pub1^io(Paper, Person)                 published papers and their authors
//! pub2^oo(Paper, Person)                 — a free copy of the same information
//! conf^ooo(Paper, ConfName, Year)        conference publications with year
//! rev^ooi(Person, ConfName, Year)        conference reviewers per year
//! sub^oi(Paper, Person)                  submitted papers and their authors
//! rev_icde^iio(Person, Paper, Eval)      ICDE reviewers with their evaluation
//! ```
//!
//! Data are synthetic: the paper uses abstract domains of 100–1,000 values
//! and ≈1,000 tuples per relation. The exact value-pool sizes are not all
//! published; [`PublicationConfig::paper`] uses sizes inferred from the
//! reported access counts (e.g. `rev`'s 20 naive accesses ⟹ ≈20 year
//! values) while keeping every other knob at the documented magnitude.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use toorjah_catalog::{Instance, Schema, Tuple, Value};
use toorjah_query::{parse_query, ConjunctiveQuery};

/// Builds the §V publication schema.
pub fn publication_schema() -> Schema {
    Schema::parse(
        "pub1^io(Paper, Person)
         pub2^oo(Paper, Person)
         conf^ooo(Paper, ConfName, Year)
         rev^ooi(Person, ConfName, Year)
         sub^oi(Paper, Person)
         rev_icde^iio(Person, Paper, Eval)",
    )
    .expect("the publication schema is well-formed")
}

/// Knobs for the synthetic publication data.
#[derive(Clone, Copy, Debug)]
pub struct PublicationConfig {
    /// Distinct papers.
    pub papers: usize,
    /// Distinct persons.
    pub persons: usize,
    /// Distinct conference names (always including `icde`).
    pub conferences: usize,
    /// Distinct years (always including `2008`).
    pub years: usize,
    /// Tuples generated per relation.
    pub tuples_per_relation: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl PublicationConfig {
    /// The paper-scale configuration (§V: domains of 100–1,000 values,
    /// ≈1,000 tuples per relation; the small `Year`/`ConfName` pools are
    /// inferred from Fig. 6's access counts).
    pub fn paper() -> Self {
        PublicationConfig {
            papers: 400,
            persons: 400,
            conferences: 100,
            years: 20,
            tuples_per_relation: 1000,
            seed: 0x1CDE_2008,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        PublicationConfig {
            papers: 30,
            persons: 30,
            conferences: 5,
            years: 4,
            tuples_per_relation: 60,
            seed: 7,
        }
    }
}

/// Generates a deterministic synthetic instance of the publication schema.
///
/// The relations are *correlated* the way real bibliographic data is —
/// publications are drawn from a ground truth of `(paper, authors, conf,
/// year)` events, submissions extend publications, and reviewers are drawn
/// from the same person pool — so that the multi-way joins of `q1`–`q3`
/// survive long enough for the evaluation to exhibit the paper's access
/// shapes (e.g. `q3` genuinely probing `rev_icde` with the reviewer ×
/// submission product).
pub fn publication_instance(schema: &Schema, config: &PublicationConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let paper = |i: usize| Value::str(format!("p{i}"));
    let person = |i: usize| Value::str(format!("au{i}"));
    let conf_name = |i: usize| {
        if i == 0 {
            Value::str("icde")
        } else {
            Value::str(format!("conf{i}"))
        }
    };
    let year = |i: usize| Value::int(2008 - i as i64);
    let evals = [Value::str("acc"), Value::str("rej")];

    // Ground truth: each paper has 1–3 authors, one venue and one year.
    struct Event {
        paper: usize,
        authors: Vec<usize>,
        conf: usize,
        year: usize,
    }
    let events: Vec<Event> = (0..config.papers)
        .map(|p| {
            let author_count = rng.gen_range(1..=3);
            let authors = (0..author_count)
                .map(|_| rng.gen_range(0..config.persons))
                .collect();
            Event {
                paper: p,
                authors,
                conf: rng.gen_range(0..config.conferences),
                year: rng.gen_range(0..config.years),
            }
        })
        .collect();

    let mut db = Instance::new(schema);
    let n = config.tuples_per_relation;

    // conf: one row per ground-truth event, then secondary venues (workshop
    // and journal versions) until the relation reaches its target size.
    for e in &events {
        let _ = db.insert(
            "conf",
            Tuple::new(vec![paper(e.paper), conf_name(e.conf), year(e.year)]),
        );
    }
    while db.relation_len(schema.relation_id("conf").expect("conf exists")) < n {
        let e = &events[rng.gen_range(0..events.len())];
        let _ = db.insert(
            "conf",
            Tuple::new(vec![
                paper(e.paper),
                conf_name(rng.gen_range(0..config.conferences)),
                year(rng.gen_range(0..config.years)),
            ]),
        );
    }

    // pub1 / pub2 follow the ground-truth authorship (pub2 is the free
    // mirror of pub1); sub extends it with unpublished submissions.
    for rel in ["pub1", "pub2", "sub"] {
        for e in &events {
            for &a in &e.authors {
                let _ = db.insert(rel, Tuple::new(vec![paper(e.paper), person(a)]));
            }
        }
    }
    while db.relation_len(schema.relation_id("sub").expect("sub exists")) < n {
        let p = paper(rng.gen_range(0..config.papers));
        let a = person(rng.gen_range(0..config.persons));
        let _ = db.insert("sub", Tuple::new(vec![p, a]));
    }

    // Reviewers come from the same person pool, with venue–year pairs drawn
    // from real events half of the time — conference reviewers really do
    // publish at the venues they review for, which is what q1 and q3 ask
    // about. A few reviewers of ICDE 2008 who author ICDE papers with
    // coauthors are planted explicitly so the deep join of q3 has genuine
    // witnesses (matching the paper's run, which reaches rev_icde).
    for _ in 0..n {
        let a = person(rng.gen_range(0..config.persons));
        let (c, y) = if rng.gen_bool(0.5) {
            let e = &events[rng.gen_range(0..events.len())];
            (conf_name(e.conf), year(e.year))
        } else {
            (
                conf_name(rng.gen_range(0..config.conferences)),
                year(rng.gen_range(0..config.years)),
            )
        };
        let _ = db.insert("rev", Tuple::new(vec![a, c, y]));
    }
    let icde_multi_author: Vec<&Event> = events
        .iter()
        .filter(|e| e.conf == 0 && e.authors.len() >= 2)
        .collect();
    for e in icde_multi_author.iter().take(8) {
        let reviewer = e.authors[0];
        let coauthor = e.authors[1];
        let _ = db.insert(
            "rev",
            Tuple::new(vec![
                Value::str(format!("au{reviewer}")),
                Value::str("icde"),
                Value::int(2008),
            ]),
        );
        // The reviewer accepted a submission authored by the coauthor.
        let submission = events
            .iter()
            .find(|e2| e2.authors.contains(&coauthor))
            .map(|e2| e2.paper)
            .unwrap_or(e.paper);
        let _ = db.insert(
            "rev_icde",
            Tuple::new(vec![
                Value::str(format!("au{reviewer}")),
                paper(submission),
                Value::str("acc"),
            ]),
        );
    }
    while db.relation_len(schema.relation_id("rev_icde").expect("rev_icde exists")) < n {
        let a = person(rng.gen_range(0..config.persons));
        let p = paper(rng.gen_range(0..config.papers));
        let e = evals[rng.gen_range(0..evals.len())];
        let _ = db.insert("rev_icde", Tuple::new(vec![a, p, e]));
    }
    db
}

/// The three §V queries, parsed against the publication schema, in the
/// paper's order: `(name, query)` for `q1`, `q2`, `q3`.
pub fn paper_queries(schema: &Schema) -> Vec<(&'static str, ConjunctiveQuery)> {
    let q1 =
        parse_query("q1(R) <- pub1(P, R), conf(P, C, Y), rev(R, C, Y)", schema).expect("q1 parses");
    let q2 = parse_query(
        "q2(R) <- rev_icde(R, P, rej), conf(P, C, Y), rev(R, C, Y)",
        schema,
    )
    .expect("q2 parses");
    let q3 = parse_query(
        "q3(R) <- rev_icde(R, S, acc), sub(S, A), pub1(P, R), pub1(P, A), \
         rev(R, icde, 2008), conf(P, icde, Y)",
        schema,
    )
    .expect("q3 parses");
    vec![("q1", q1), ("q2", q2), ("q3", q3)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let schema = publication_schema();
        assert_eq!(schema.relation_count(), 6);
        assert_eq!(
            schema
                .relation_by_name("rev_icde")
                .unwrap()
                .pattern()
                .to_string(),
            "iio"
        );
        assert!(schema.relation_by_name("pub2").unwrap().is_free());
        assert!(schema.relation_by_name("conf").unwrap().is_free());
        assert_eq!(schema.domains().len(), 5);
    }

    #[test]
    fn instance_generation_is_deterministic() {
        let schema = publication_schema();
        let cfg = PublicationConfig::small();
        let a = publication_instance(&schema, &cfg);
        let b = publication_instance(&schema, &cfg);
        assert_eq!(a.total_tuples(), b.total_tuples());
        for (id, _) in schema.iter() {
            assert_eq!(a.full_extension(id), b.full_extension(id));
        }
    }

    #[test]
    fn instance_has_roughly_the_configured_size() {
        let schema = publication_schema();
        let cfg = PublicationConfig::small();
        let db = publication_instance(&schema, &cfg);
        for (id, rel) in schema.iter() {
            let len = db.relation_len(id);
            // pub1/pub2 scale with events × authors (1–3 per paper); the
            // topped-up relations land exactly on the target.
            assert!(
                len > 0 && len <= 4 * cfg.tuples_per_relation,
                "{}: {len}",
                rel.name()
            );
        }
        for name in ["conf", "sub", "rev", "rev_icde"] {
            let id = schema.relation_id(name).unwrap();
            assert!(
                db.relation_len(id) >= cfg.tuples_per_relation,
                "{name} should reach the target size"
            );
        }
    }

    #[test]
    fn q3_scenario_witnesses_are_planted() {
        // The deep q3 join must have at least one genuine witness so that
        // executions reach rev_icde (as the paper's do).
        let schema = publication_schema();
        let db = publication_instance(&schema, &PublicationConfig::paper());
        let rev = schema.relation_id("rev").unwrap();
        let icde_2008: Vec<_> = db
            .full_extension(rev)
            .iter()
            .filter(|t| t[1] == Value::str("icde") && t[2] == Value::int(2008))
            .collect();
        assert!(!icde_2008.is_empty(), "some ICDE 2008 reviewers must exist");
    }

    #[test]
    fn queries_parse_and_use_constants() {
        let schema = publication_schema();
        let queries = paper_queries(&schema);
        assert_eq!(queries.len(), 3);
        let (_, q3) = &queries[2];
        assert_eq!(q3.atoms().len(), 6);
        assert_eq!(q3.constants(&schema).len(), 3); // acc, icde, 2008
        let (_, q1) = &queries[0];
        assert!(q1.is_constant_free());
    }

    #[test]
    fn icde_2008_values_exist_in_pools() {
        let schema = publication_schema();
        let db = publication_instance(&schema, &PublicationConfig::paper());
        let conf = schema.relation_id("conf").unwrap();
        let names = db.values_at(conf, 1);
        assert!(names.contains(&Value::str("icde")));
        let years = db.values_at(conf, 2);
        assert!(years.contains(&Value::int(2008)));
    }
}
