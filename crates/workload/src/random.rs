//! The random workload of Figs. 10 and 11.
//!
//! §V: *"We also tested our approach on randomly generated schemata and
//! queries, with a total of 100 schemata and 100 queries per schema. Each
//! schema comprises 5 to 10 relations; each relation has between 1 and 5
//! attributes (some of which may have input mode); each of the 10,000
//! queries has between 2 to 6 atoms and contains at least one join. We
//! considered 100 different database instances in which each relation has
//! between 10 and 10,000 tuples."*
//!
//! The generators below realize exactly that distribution (every knob is a
//! [`RandomParams`] field so tests can scale it down), plus the two
//! exclusions the paper applies: non-answerable queries and queries over
//! free relations only — both checked by the benchmark harness, since they
//! need the planner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use toorjah_catalog::{Instance, Schema, SchemaBuilder, Tuple, Value};
use toorjah_query::{Atom, ConjunctiveQuery, Term, VarId};

/// Distribution knobs for the random workload. Defaults follow §V.
#[derive(Clone, Debug)]
pub struct RandomParams {
    /// Relations per schema (inclusive bounds). Paper: 5–10.
    pub relations: (usize, usize),
    /// Arity per relation (inclusive). Paper: 1–5.
    pub arity: (usize, usize),
    /// Number of abstract domains to draw positions from.
    pub domains: usize,
    /// Probability that a position has input mode.
    pub input_probability: f64,
    /// Values per abstract domain (inclusive). Paper: 100–1,000.
    pub domain_values: (usize, usize),
    /// Atoms per query (inclusive). Paper: 2–6.
    pub atoms: (usize, usize),
    /// Probability that an argument reuses an existing same-domain variable
    /// (creating joins).
    pub join_probability: f64,
    /// Probability that an argument is a constant.
    pub constant_probability: f64,
    /// Tuples per relation (inclusive). Paper: 10–10,000.
    pub tuples: (usize, usize),
}

impl Default for RandomParams {
    fn default() -> Self {
        RandomParams::paper()
    }
}

impl RandomParams {
    /// The §V distribution.
    pub fn paper() -> Self {
        RandomParams {
            relations: (5, 10),
            arity: (1, 5),
            domains: 6,
            input_probability: 0.3,
            domain_values: (100, 1000),
            atoms: (2, 6),
            join_probability: 0.5,
            constant_probability: 0.15,
            tuples: (10, 10_000),
        }
    }

    /// A scaled-down distribution for fast tests and property testing.
    pub fn small() -> Self {
        RandomParams {
            relations: (3, 6),
            arity: (1, 3),
            domains: 4,
            input_probability: 0.35,
            domain_values: (5, 12),
            atoms: (1, 4),
            join_probability: 0.5,
            constant_probability: 0.25,
            tuples: (0, 15),
        }
    }
}

/// A generated schema together with the per-domain value pools that queries
/// (constants) and instances draw from.
#[derive(Clone, Debug)]
pub struct GeneratedSchema {
    /// The schema.
    pub schema: Schema,
    /// `pools[d]` holds the values of `DomainId(d)`.
    pub pools: Vec<Vec<Value>>,
}

/// Generates a random schema and its value pools.
pub fn random_schema(rng: &mut StdRng, params: &RandomParams) -> GeneratedSchema {
    let relation_count = rng.gen_range(params.relations.0..=params.relations.1);
    let mut builder = SchemaBuilder::new();
    let domain_names: Vec<String> = (0..params.domains).map(|d| format!("D{d}")).collect();
    for r in 0..relation_count {
        let arity = rng.gen_range(params.arity.0..=params.arity.1);
        let pattern: String = (0..arity)
            .map(|_| {
                if rng.gen_bool(params.input_probability) {
                    'i'
                } else {
                    'o'
                }
            })
            .collect();
        let domains: Vec<&str> = (0..arity)
            .map(|_| domain_names[rng.gen_range(0..params.domains)].as_str())
            .collect();
        builder = builder
            .relation(&format!("r{r}"), &pattern, &domains)
            .expect("generated names are unique and arities consistent");
    }
    let schema = builder.finish().expect("generated schema is valid");
    let pool_size = rng.gen_range(params.domain_values.0..=params.domain_values.1.max(1));
    let pools = (0..schema.domains().len())
        .map(|d| {
            (0..pool_size.max(1))
                .map(|i| Value::str(format!("d{d}v{i}")))
                .collect()
        })
        .collect();
    GeneratedSchema { schema, pools }
}

/// Generates a random conjunctive query over `generated`, retrying until the
/// §V shape constraints hold (the requested atom count and, for queries of
/// two or more atoms, at least one join). Returns `None` when no such query
/// is found within a bounded number of attempts (e.g. a one-relation,
/// one-domain schema may admit no join).
pub fn random_query(
    rng: &mut StdRng,
    generated: &GeneratedSchema,
    params: &RandomParams,
) -> Option<ConjunctiveQuery> {
    for _ in 0..200 {
        if let Some(q) = try_random_query(rng, generated, params) {
            return Some(q);
        }
    }
    None
}

fn try_random_query(
    rng: &mut StdRng,
    generated: &GeneratedSchema,
    params: &RandomParams,
) -> Option<ConjunctiveQuery> {
    let schema = &generated.schema;
    let atom_count = rng.gen_range(params.atoms.0..=params.atoms.1);
    let mut var_names: Vec<String> = Vec::new();
    // Variables grouped by domain for join reuse: (domain index, var).
    let mut vars_by_domain: Vec<(usize, VarId)> = Vec::new();
    let mut atoms = Vec::with_capacity(atom_count);
    for _ in 0..atom_count {
        let rel_id = toorjah_catalog::RelationId(rng.gen_range(0..schema.relation_count()) as u32);
        let rel = schema.relation(rel_id);
        let mut terms = Vec::with_capacity(rel.arity());
        for k in 0..rel.arity() {
            let domain = rel.domain(k).index();
            let same_domain: Vec<VarId> = vars_by_domain
                .iter()
                .filter(|(d, _)| *d == domain)
                .map(|(_, v)| *v)
                .collect();
            let term = if !same_domain.is_empty() && rng.gen_bool(params.join_probability) {
                Term::Var(same_domain[rng.gen_range(0..same_domain.len())])
            } else if rng.gen_bool(params.constant_probability) {
                let pool = &generated.pools[domain];
                Term::Const(pool[rng.gen_range(0..pool.len())])
            } else {
                let v = VarId(var_names.len() as u32);
                var_names.push(format!("V{}", var_names.len()));
                vars_by_domain.push((domain, v));
                Term::Var(v)
            };
            terms.push(term);
        }
        atoms.push(Atom::new(rel_id, terms));
    }
    if vars_by_domain.is_empty() {
        return None; // fully ground query: no legal head variable
    }
    // Head: one or two distinct body variables.
    let head_count = 1 + usize::from(rng.gen_bool(0.3) && vars_by_domain.len() > 1);
    let mut head: Vec<VarId> = Vec::new();
    while head.len() < head_count {
        let v = vars_by_domain[rng.gen_range(0..vars_by_domain.len())].1;
        if !head.contains(&v) {
            head.push(v);
        }
    }
    let query = ConjunctiveQuery::from_parts(schema, "q", head, atoms, var_names).ok()?;
    // §V: queries of 2+ atoms contain at least one join.
    if query.atoms().len() >= 2 && !query.has_join() {
        return None;
    }
    Some(query)
}

/// Generates a random instance drawing values from the schema's pools.
pub fn random_instance(
    rng: &mut StdRng,
    generated: &GeneratedSchema,
    params: &RandomParams,
) -> Instance {
    let schema = &generated.schema;
    let mut db = Instance::new(schema);
    for (id, rel) in schema.iter() {
        let tuples = rng.gen_range(params.tuples.0..=params.tuples.1);
        for _ in 0..tuples {
            let tuple: Tuple = (0..rel.arity())
                .map(|k| {
                    let pool = &generated.pools[rel.domain(k).index()];
                    pool[rng.gen_range(0..pool.len())]
                })
                .collect();
            let _ = db.insert_by_id(id, tuple);
        }
    }
    db
}

/// Convenience: a seeded RNG for the workload generators.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_respects_bounds() {
        let params = RandomParams::paper();
        for seed in 0..20 {
            let mut rng = seeded_rng(seed);
            let g = random_schema(&mut rng, &params);
            let n = g.schema.relation_count();
            assert!((5..=10).contains(&n));
            for (_, rel) in g.schema.iter() {
                assert!((1..=5).contains(&rel.arity()));
            }
            assert_eq!(g.pools.len(), g.schema.domains().len());
            for pool in &g.pools {
                assert!((100..=1000).contains(&pool.len()));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let params = RandomParams::small();
        let g1 = random_schema(&mut seeded_rng(42), &params);
        let g2 = random_schema(&mut seeded_rng(42), &params);
        assert_eq!(g1.schema.to_string(), g2.schema.to_string());
        let q1 = random_query(&mut seeded_rng(43), &g1, &params);
        let q2 = random_query(&mut seeded_rng(43), &g2, &params);
        assert_eq!(q1.is_some(), q2.is_some());
        if let (Some(q1), Some(q2)) = (q1, q2) {
            assert_eq!(
                q1.display(&g1.schema).to_string(),
                q2.display(&g2.schema).to_string()
            );
        }
    }

    #[test]
    fn queries_have_joins_when_multi_atom() {
        let params = RandomParams::paper();
        let mut rng = seeded_rng(7);
        let g = random_schema(&mut rng, &params);
        let mut produced = 0;
        for _ in 0..50 {
            if let Some(q) = random_query(&mut rng, &g, &params) {
                produced += 1;
                assert!((2..=6).contains(&q.atoms().len()));
                assert!(q.has_join());
                assert!(!q.head().is_empty());
            }
        }
        assert!(produced > 0, "the generator must produce some queries");
    }

    #[test]
    fn instances_respect_tuple_bounds() {
        let params = RandomParams::small();
        let mut rng = seeded_rng(11);
        let g = random_schema(&mut rng, &params);
        let db = random_instance(&mut rng, &g, &params);
        for (id, _) in g.schema.iter() {
            assert!(db.relation_len(id) <= params.tuples.1);
        }
    }

    #[test]
    fn constants_come_from_pools() {
        let params = RandomParams {
            constant_probability: 0.9,
            ..RandomParams::small()
        };
        let mut rng = seeded_rng(3);
        let g = random_schema(&mut rng, &params);
        for _ in 0..20 {
            if let Some(q) = random_query(&mut rng, &g, &params) {
                for (value, domain) in q.constants(&g.schema) {
                    assert!(
                        g.pools[domain.index()].contains(&value),
                        "constant {value} not from pool of {domain:?}"
                    );
                }
            }
        }
    }
}
