//! Multi-tenant traffic for the query service: N tenants × M overlapping
//! statements, interleaved into a deterministic seeded mix.
//!
//! The daemon's load scenario is the [`overlapping`](crate::overlapping)
//! workload made concurrent: a population of tenants asks variations of
//! the same handful of question shapes over one shared cache, so the cold
//! misses any one tenant's statement needs were mostly paid by an earlier
//! tenant already. The generator assigns each tenant a per-tenant slice of
//! a shared statement pool — overlapping across tenants by construction —
//! and shuffles each tenant's request order with its own seeded RNG, so a
//! load test replaying tenant streams concurrently is reproducible
//! request-for-request.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::overlapping::{overlapping_queries, OverlapParams};

/// Knobs for the multi-tenant traffic generator.
#[derive(Clone, Copy, Debug)]
pub struct TrafficParams {
    /// Number of tenants (`tenant0`, `tenant1`, …).
    pub tenants: usize,
    /// Requests each tenant sends.
    pub requests_per_tenant: usize,
    /// Size of the shared statement pool the tenants draw from; smaller
    /// pools mean heavier cross-tenant overlap.
    pub statement_pool: usize,
    /// Parameters of the underlying overlapping-query generator.
    pub overlap: OverlapParams,
    /// RNG seed for the per-tenant mixes.
    pub seed: u64,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            tenants: 8,
            requests_per_tenant: 12,
            statement_pool: 10,
            overlap: OverlapParams::default(),
            seed: 0x5E12_F1CE,
        }
    }
}

/// One tenant's request stream.
#[derive(Clone, Debug)]
pub struct TenantTraffic {
    /// The tenant name (`tenant0`, `tenant1`, …).
    pub tenant: String,
    /// The statement texts, in send order.
    pub requests: Vec<String>,
}

/// Generates the tenant streams: a shared pool of
/// `params.statement_pool` distinct overlapping statements, each tenant
/// drawing `params.requests_per_tenant` of them with its own seeded RNG.
/// Deterministic given `params`; every statement in every stream appears
/// in [`traffic_statements`] of the same parameters.
pub fn traffic(params: &TrafficParams) -> Vec<TenantTraffic> {
    let pool = traffic_statements(params);
    (0..params.tenants)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(params.seed ^ (t as u64).wrapping_mul(0x9E37));
            let requests = (0..params.requests_per_tenant)
                .map(|_| pool[rng.gen_range(0..pool.len())].clone())
                .collect();
            TenantTraffic {
                tenant: format!("tenant{t}"),
                requests,
            }
        })
        .collect()
}

/// The shared statement pool behind [`traffic`]: the first
/// `params.statement_pool` *distinct* statements the overlapping generator
/// produces (generating more behind the scenes when the requested pool
/// exceeds the distinct yield of one batch).
pub fn traffic_statements(params: &TrafficParams) -> Vec<String> {
    let mut pool: Vec<String> = Vec::new();
    let mut batch = params.overlap;
    batch.queries = params.statement_pool.max(1) * 4;
    for q in overlapping_queries(&batch) {
        if !pool.contains(&q) {
            pool.push(q);
            if pool.len() == params.statement_pool.max(1) {
                break;
            }
        }
    }
    // Six templates over small constant pools bound the distinct yield;
    // take what exists rather than spinning (the pool stays overlapping).
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlapping::music_schema;
    use toorjah_query::parse_query;

    #[test]
    fn streams_are_deterministic_and_draw_from_the_pool() {
        let params = TrafficParams::default();
        let streams = traffic(&params);
        assert_eq!(streams.len(), params.tenants);
        let pool = traffic_statements(&params);
        assert!(!pool.is_empty());
        let schema = music_schema();
        for stream in &streams {
            assert_eq!(stream.requests.len(), params.requests_per_tenant);
            for q in &stream.requests {
                assert!(pool.contains(q), "{q} not from the pool");
                parse_query(q, &schema).unwrap_or_else(|e| panic!("{q}: {e}"));
            }
        }
        // Reproducible request-for-request.
        let again = traffic(&params);
        for (a, b) in streams.iter().zip(&again) {
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.requests, b.requests);
        }
        // Tenants differ from each other (distinct per-tenant seeds).
        assert!(
            streams.windows(2).any(|w| w[0].requests != w[1].requests),
            "tenant mixes must not all coincide"
        );
    }

    #[test]
    fn tenants_overlap_on_statements() {
        let streams = traffic(&TrafficParams::default());
        let mut shared = 0usize;
        for (i, a) in streams.iter().enumerate() {
            for b in &streams[i + 1..] {
                if a.requests.iter().any(|q| b.requests.contains(q)) {
                    shared += 1;
                }
            }
        }
        assert!(
            shared > 0,
            "a traffic mix with zero overlap defeats the cache"
        );
    }
}
