//! The bound-reachability workload: a transitive-closure program whose
//! answer set is tiny compared to its full least fixpoint — the showcase
//! for demand-driven (magic-sets) evaluation.
//!
//! The program is the *left-linear* transitive closure
//!
//! ```text
//! path(X, Y) <- edge(X, Y)
//! path(X, Z) <- path(X, Y), edge(Y, Z)
//! ```
//!
//! over a backbone chain `n0 -> n1 -> ... -> n_len` plus, at every chain
//! position `i >= 1`, `fan_out` feeder nodes with an edge *into* the chain
//! (`f -> n_i`). A query bound on the first column — "all nodes reachable
//! from `n0`" — has exactly `len` answers, but the full fixpoint also
//! contains every suffix pair of the chain and every feeder's reach:
//! `len·(len+1)/2 + fan_out·Σᵢ(len−i+1)` facts in total, all but `len` of
//! them invisible to the query. Left-linearity is what keeps the rewrite
//! profitable: the recursive rule passes the bound source through
//! unchanged, so the magic set stays `{n0}` and demand-driven evaluation
//! derives only the `len + 1` demanded facts instead of the full closure.
//!
//! The generator is fully deterministic (no seed needed): node identities
//! are integers, with feeders numbered after the chain.

use toorjah_catalog::{Tuple, Value};
use toorjah_datalog::{DTerm, FactStore, Literal, PredId, Program, Rule};

/// Shape of the bound-reachability workload.
#[derive(Clone, Copy, Debug)]
pub struct BoundConfig {
    /// Number of edges in the backbone chain (`len + 1` nodes).
    pub chain_len: usize,
    /// Feeder nodes with an edge into the chain, per chain position
    /// (positions `1..=chain_len`). Tunes the undemanded mass: every
    /// feeder's whole reach is derived by full evaluation and skipped by
    /// the demand-driven one.
    pub fan_out: usize,
}

impl Default for BoundConfig {
    /// The committed benchmark shape: chain-120 with 8 feeders per node.
    fn default() -> Self {
        BoundConfig {
            chain_len: 120,
            fan_out: 8,
        }
    }
}

impl BoundConfig {
    /// Facts in the full least fixpoint of `path`.
    pub fn full_facts(&self) -> usize {
        let n = self.chain_len;
        n * (n + 1) / 2 + self.fan_out * (1..=n).map(|i| n - i + 1).sum::<usize>()
    }

    /// Facts demanded by the query bound to the chain's source.
    pub fn demanded_facts(&self) -> usize {
        self.chain_len
    }
}

/// A generated bound-reachability workload: the program, its extensional
/// database, and the handles a caller needs to query it.
#[derive(Clone, Debug)]
pub struct BoundWorkload {
    /// The left-linear transitive-closure program.
    pub program: Program,
    /// The edge facts (backbone chain plus feeders).
    pub edb: FactStore,
    /// The extensional `edge` predicate.
    pub edge: PredId,
    /// The intensional `path` predicate (the query target).
    pub path: PredId,
    /// The chain's source node, `n0`.
    pub source: Value,
}

impl BoundWorkload {
    /// Bindings for the bound query `path(n0, ?)` — the first column bound
    /// to the source, the second free (adornment `bf`).
    pub fn bound_bindings(&self) -> Vec<Option<Value>> {
        vec![Some(self.source), None]
    }
}

/// Builds the bound-reachability workload for `config`.
pub fn bound_closure(config: &BoundConfig) -> BoundWorkload {
    let mut program = Program::new();
    let edge = program
        .predicate("edge", 2)
        .expect("fresh program accepts edge/2");
    let path = program
        .predicate("path", 2)
        .expect("fresh program accepts path/2");
    let v = DTerm::Var;
    program
        .add_rule(Rule::new(
            Literal::new(path, vec![v(0), v(1)]),
            vec![Literal::new(edge, vec![v(0), v(1)])],
            vec!["X".into(), "Y".into()],
        ))
        .expect("base rule is range-restricted");
    program
        .add_rule(Rule::new(
            Literal::new(path, vec![v(0), v(2)]),
            vec![
                Literal::new(path, vec![v(0), v(1)]),
                Literal::new(edge, vec![v(1), v(2)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into()],
        ))
        .expect("left-linear step is range-restricted");

    let mut edb = FactStore::new();
    let node = |i: usize| Value::int(i as i64);
    for i in 0..config.chain_len {
        edb.insert(edge, Tuple::new(vec![node(i), node(i + 1)]));
    }
    // Feeders are numbered after the chain's `chain_len + 1` nodes.
    let mut next = config.chain_len + 1;
    for i in 1..=config.chain_len {
        for _ in 0..config.fan_out {
            edb.insert(edge, Tuple::new(vec![node(next), node(i)]));
            next += 1;
        }
    }

    BoundWorkload {
        program,
        edb,
        edge,
        path,
        source: Value::int(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_datalog::{evaluate, evaluate_demand};

    #[test]
    fn fixpoint_and_demand_counts_match_the_formulas() {
        let config = BoundConfig {
            chain_len: 10,
            fan_out: 3,
        };
        let w = bound_closure(&config);
        let (full, _) = evaluate(&w.program, &w.edb);
        assert_eq!(full.len(w.path), config.full_facts());

        let (demand, stats) =
            evaluate_demand(&w.program, &w.edb, w.path, &w.bound_bindings()).unwrap();
        assert_eq!(demand.len(w.path), config.demanded_facts());
        assert!(stats.magic_facts >= 1, "{stats:?}");
        assert!(demand.len(w.path) < full.len(w.path));
    }

    #[test]
    fn demanded_answers_equal_the_filtered_fixpoint() {
        let w = bound_closure(&BoundConfig {
            chain_len: 7,
            fan_out: 2,
        });
        let (full, _) = evaluate(&w.program, &w.edb);
        let mut filtered: Vec<Tuple> = full
            .tuples(w.path)
            .iter()
            .filter(|t| t.values()[0] == w.source)
            .cloned()
            .collect();
        filtered.sort();
        let (demand, _) = evaluate_demand(&w.program, &w.edb, w.path, &w.bound_bindings()).unwrap();
        let mut demanded = demand.tuples(w.path).to_vec();
        demanded.sort();
        assert_eq!(demanded, filtered);
    }

    #[test]
    fn default_shape_is_the_committed_benchmark() {
        let config = BoundConfig::default();
        assert_eq!(config.chain_len, 120);
        assert_eq!(config.demanded_facts(), 120);
        // 120·121/2 + 8·(120 + 119 + … + 1) = 7260 + 58080.
        assert_eq!(config.full_facts(), 65_340);
    }
}
