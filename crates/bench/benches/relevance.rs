//! Criterion benchmark of the evaluation kernel's runtime access-relevance
//! pruning on the sparse star-join workload: the same plan executed with
//! pruning off vs. on. Answers are bit-identical; the pruned run performs
//! ≥ 30% fewer accesses (asserted here and, end-to-end, in
//! `tests/relevance.rs`), and over a slow source the saved accesses are
//! saved wall-clock.
//!
//! Run in smoke mode (CI) with: `cargo bench -p toorjah-bench --bench
//! relevance -- --test`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use toorjah_engine::{InstanceSource, LatencySource, PruningLevel, SourceProvider};
use toorjah_system::Toorjah;
use toorjah_workload::{sparse_instance, sparse_query, sparse_schema, SparseConfig};

fn setup() -> Arc<dyn SourceProvider> {
    let schema = sparse_schema();
    let config = SparseConfig::default();
    let db = sparse_instance(&schema, &config);
    // 50 µs per access, really slept: pruned accesses are saved wall-clock.
    let provider: Arc<dyn SourceProvider> = Arc::new(
        LatencySource::new(InstanceSource::new(schema, db), Duration::from_micros(50))
            .with_real_sleep(),
    );

    // Pin the bench's claim up front: identical answers, ≥ 30% fewer
    // accesses performed.
    let off = Toorjah::from_arc(Arc::clone(&provider))
        .ask(sparse_query())
        .expect("sparse query is answerable");
    let on = Toorjah::builder_from_arc(Arc::clone(&provider))
        .prune_level(PruningLevel::Runtime)
        .build()
        .ask(sparse_query())
        .expect("sparse query is answerable");
    assert_eq!(on.answers, off.answers, "pruning must preserve answers");
    assert!(
        on.profile.accesses_performed * 10 <= off.profile.accesses_performed * 7,
        "expected >=30% fewer accesses: {} vs {}",
        on.profile.accesses_performed,
        off.profile.accesses_performed
    );

    provider
}

fn pruning_modes(c: &mut Criterion) {
    let provider = setup();
    let mut group = c.benchmark_group("relevance_sparse");

    group.bench_function("pruning_off", |b| {
        let system = Toorjah::from_arc(Arc::clone(&provider));
        b.iter(|| {
            system
                .ask(std::hint::black_box(sparse_query()))
                .expect("answerable")
                .profile
                .accesses_performed
        })
    });

    group.bench_function("pruning_on", |b| {
        let system = Toorjah::builder_from_arc(Arc::clone(&provider))
            .prune_level(PruningLevel::Runtime)
            .build();
        b.iter(|| {
            system
                .ask(std::hint::black_box(sparse_query()))
                .expect("answerable")
                .profile
                .accesses_performed
        })
    });

    group.finish();
}

criterion_group!(benches, pruning_modes);
criterion_main!(benches);
