//! Criterion micro-benchmarks of the semi-naive delta discipline: the
//! delta-join evaluator (`evaluate`) against the full-join reference
//! (`evaluate_full_join`) on the two recursion shapes where the discipline
//! matters most.
//!
//! - **Chain transitive closure** (120 edges): ~120 rounds whose deltas
//!   shrink by one fact per round — the full join re-derives the entire
//!   closure every round, the delta join touches each fact once.
//! - **Cyclic group** (a 48-cycle): the closure is all 48² pairs, reached
//!   through deltas that first grow and then saturate — stressing the
//!   dedup-versus-total path rather than the shrinking-frontier path.
//!
//! The committed `BENCH_kernel.json` snapshot doubles as a regression
//! guard: `bench_trajectory` fails the build if the full-join median on the
//! chain drops under 2× the delta-join median.

use criterion::{criterion_group, criterion_main, Criterion};
use toorjah_catalog::tuple;
use toorjah_datalog::{evaluate, evaluate_full_join, DTerm, FactStore, Literal, Program, Rule};

/// The textbook closure program: `path(X,Y) ← edge(X,Y)` and
/// `path(X,Z) ← edge(X,Y), path(Y,Z)`.
fn closure_program() -> (Program, toorjah_datalog::PredId) {
    let mut p = Program::new();
    let edge = p.predicate("edge", 2).unwrap();
    let path = p.predicate("path", 2).unwrap();
    let v = DTerm::Var;
    p.add_rule(Rule::new(
        Literal::new(path, vec![v(0), v(1)]),
        vec![Literal::new(edge, vec![v(0), v(1)])],
        vec!["X".into(), "Y".into()],
    ))
    .unwrap();
    p.add_rule(Rule::new(
        Literal::new(path, vec![v(0), v(2)]),
        vec![
            Literal::new(edge, vec![v(0), v(1)]),
            Literal::new(path, vec![v(1), v(2)]),
        ],
        vec!["X".into(), "Y".into(), "Z".into()],
    ))
    .unwrap();
    (p, edge)
}

fn chain_edb(edge: toorjah_datalog::PredId, n: i64) -> FactStore {
    let mut edb = FactStore::new();
    for i in 0..n {
        edb.insert(edge, tuple![i, i + 1]);
    }
    edb
}

fn cycle_edb(edge: toorjah_datalog::PredId, n: i64) -> FactStore {
    let mut edb = FactStore::new();
    for i in 0..n {
        edb.insert(edge, tuple![i, (i + 1) % n]);
    }
    edb
}

fn transitive_closure_chain(c: &mut Criterion) {
    let (p, edge) = closure_program();
    let edb = chain_edb(edge, 120);
    c.bench_function("seminaive_transitive_closure_120", |b| {
        b.iter(|| evaluate(std::hint::black_box(&p), &edb))
    });
    c.bench_function("fulljoin_transitive_closure_120", |b| {
        b.iter(|| evaluate_full_join(std::hint::black_box(&p), &edb))
    });
}

fn cyclic_group(c: &mut Criterion) {
    let (p, edge) = closure_program();
    let edb = cycle_edb(edge, 48);
    c.bench_function("seminaive_cyclic_group_48", |b| {
        b.iter(|| evaluate(std::hint::black_box(&p), &edb))
    });
    c.bench_function("fulljoin_cyclic_group_48", |b| {
        b.iter(|| evaluate_full_join(std::hint::black_box(&p), &edb))
    });
}

criterion_group!(benches, transitive_closure_chain, cyclic_group);
criterion_main!(benches);
