//! Criterion benchmarks of the shared-cache subsystem on the overlapping
//! music workload: per-query caches (cold) vs. one shared session cache
//! (warm) vs. a byte-budgeted LRU cache. Each iteration replays the whole
//! workload from an empty cache, so the numbers compare end-to-end serving
//! cost, not steady state.
//!
//! Run in smoke mode (CI) with: `cargo bench -p toorjah-bench --bench cache
//! -- --test`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use toorjah_cache::{CacheConfig, SharedAccessCache};
use toorjah_engine::{InstanceSource, SourceProvider};
use toorjah_system::Toorjah;
use toorjah_workload::{
    music_instance, music_schema, overlapping_queries, MusicConfig, OverlapParams,
};

fn setup() -> (Arc<dyn SourceProvider>, Vec<String>) {
    let schema = music_schema();
    let db = music_instance(&schema, &MusicConfig::default());
    let provider: Arc<dyn SourceProvider> = Arc::new(InstanceSource::new(schema, db));
    (provider, overlapping_queries(&OverlapParams::default()))
}

fn run_workload(system: &Toorjah, queries: &[String]) -> usize {
    queries
        .iter()
        .map(|q| {
            system
                .ask(std::hint::black_box(q))
                .expect("workload queries are answerable")
                .profile
                .stats
                .total_accesses
        })
        .sum()
}

fn cache_modes(c: &mut Criterion) {
    let (provider, queries) = setup();
    let mut group = c.benchmark_group("cache_workload");

    group.bench_function("cold_per_query", |b| {
        let system = Toorjah::from_arc(Arc::clone(&provider));
        b.iter(|| run_workload(&system, &queries))
    });

    group.bench_function("warm_shared", |b| {
        b.iter(|| {
            let system =
                Toorjah::from_arc(Arc::clone(&provider)).with_cache(SharedAccessCache::unbounded());
            run_workload(&system, &queries)
        })
    });

    group.bench_function("lru_byte_capped", |b| {
        b.iter(|| {
            let system = Toorjah::from_arc(Arc::clone(&provider))
                .with_cache(SharedAccessCache::new(CacheConfig::max_bytes(8 * 1024)));
            run_workload(&system, &queries)
        })
    });

    group.finish();
}

fn snapshot_roundtrip(c: &mut Criterion) {
    let (provider, queries) = setup();
    let schema = music_schema();
    // Populate once; benchmark the serialize + reload path.
    let cache = SharedAccessCache::unbounded();
    let system = Toorjah::from_arc(provider).with_cache(cache.clone());
    run_workload(&system, &queries);
    c.bench_function("cache_snapshot_roundtrip", |b| {
        b.iter(|| {
            let text = cache.snapshot(&schema);
            let fresh = SharedAccessCache::unbounded();
            fresh
                .load_snapshot(&schema, std::hint::black_box(&text))
                .expect("own snapshot reloads")
                .loaded
        })
    });
}

criterion_group!(benches, cache_modes, snapshot_roundtrip);
criterion_main!(benches);
