//! Criterion micro-benchmarks of the interned fact-store data plane — and
//! the guard that keeps the interning swap honest.
//!
//! Two hot paths are measured against an in-bench **legacy emulation** of
//! the pre-interning data plane (boxed `Arc<str>` values, a `RefCell`-lazy
//! single-column index whose probes clone their posting list):
//!
//! * **indexed probe** — `FactStore::candidates` with a bound column, the
//!   inner loop of the evaluator's backtracking joins and of runtime
//!   relevance pruning;
//! * **fresh-binding enumeration** — building every binding combination
//!   from per-position value pools, the kernel's frontier enumeration.
//!
//! Besides registering both sides as benchmarks (so the trajectory file
//! records them), a measured run *asserts* the interned paths are at least
//! 2× faster than the legacy emulation — the floor claimed for this
//! optimization. The assertion is skipped in smoke mode (`-- --test`),
//! which is what CI runs; the guard fires on real measured runs.
//!
//! Run in smoke mode (CI) with: `cargo bench -p toorjah-bench --bench
//! datalog -- --test`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use toorjah_catalog::{Tuple, Value};
use toorjah_datalog::{FactStore, PredId};

// Fanout of 4 positions per posting list: probe cost is dominated by the
// per-probe fixed work (hashing the key, materializing the positions) that
// interning removes, not by walking the handful of matching positions —
// the regime the paper's selective access patterns live in.
const DISTINCT_STRINGS: usize = 4000;
const FACTS: usize = 16_000;
const POOL: usize = 60;

fn payload(i: usize) -> String {
    // Realistically sized constants: long enough that hashing the payload
    // (what the legacy plane does on every probe) is visible work.
    format!("artist-{i:04}-with-some-representative-payload")
}

fn interned_store() -> (FactStore, PredId, Vec<Value>) {
    let strings: Vec<Value> = (0..DISTINCT_STRINGS)
        .map(|i| Value::from(payload(i)))
        .collect();
    let p = PredId(0);
    let mut store = FactStore::new();
    store.extend(
        p,
        (0..FACTS).map(|i| {
            Tuple::from_slice(&[
                strings[i % DISTINCT_STRINGS],
                strings[(i * 7) % DISTINCT_STRINGS],
                Value::from(i as i64),
            ])
        }),
    );
    (store, p, strings)
}

// ---------------------------------------------------------------------------
// Legacy emulation: the pre-interning data plane, captured as code so the
// baseline is measured live instead of trusted from a recorded number.
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Hash)]
enum LegacyValue {
    Int(i64),
    Str(Arc<str>),
}

/// The old `PredFacts`: boxed values, lazily built single-column indexes
/// behind a `RefCell`, and a probe that clones the whole posting list.
#[derive(Default)]
struct LegacyFacts {
    tuples: Vec<Arc<[LegacyValue]>>,
    indexes: RefCell<HashMap<usize, HashMap<LegacyValue, Vec<usize>>>>,
}

impl LegacyFacts {
    fn insert(&mut self, t: Arc<[LegacyValue]>) {
        let pos = self.tuples.len();
        for (&col, index) in self.indexes.get_mut().iter_mut() {
            index.entry(t[col].clone()).or_default().push(pos);
        }
        self.tuples.push(t);
    }

    fn matching(&self, col: usize, value: &LegacyValue) -> Vec<usize> {
        let mut indexes = self.indexes.borrow_mut();
        let index = indexes.entry(col).or_insert_with(|| {
            let mut index: HashMap<LegacyValue, Vec<usize>> = HashMap::new();
            for (pos, t) in self.tuples.iter().enumerate() {
                index.entry(t[col].clone()).or_default().push(pos);
            }
            index
        });
        index.get(value).cloned().unwrap_or_default()
    }
}

fn legacy_store() -> (LegacyFacts, Vec<LegacyValue>) {
    let strings: Vec<LegacyValue> = (0..DISTINCT_STRINGS)
        .map(|i| LegacyValue::Str(payload(i).into()))
        .collect();
    let mut store = LegacyFacts::default();
    for i in 0..FACTS {
        store.insert(
            vec![
                strings[i % DISTINCT_STRINGS].clone(),
                strings[(i * 7) % DISTINCT_STRINGS].clone(),
                LegacyValue::Int(i as i64),
            ]
            .into(),
        );
    }
    // Force the lazy index once so the measured probes compare steady-state
    // lookup cost, not index construction.
    black_box(store.matching(0, &strings[0]));
    (store, strings)
}

// ---------------------------------------------------------------------------
// The two measured paths.
// ---------------------------------------------------------------------------

// Both probes consume the candidate positions the way the evaluator's join
// loops do — iterate them — so the comparison isolates the data-plane
// difference: hashing a u32 and borrowing the posting list (interned) vs
// hashing the string payload and cloning the posting list (legacy).

fn probe_interned(store: &FactStore, p: PredId, probes: &[Value]) -> usize {
    probes
        .iter()
        .map(|v| store.candidates(p, Some((0, *v))).sum::<usize>())
        .sum()
}

fn probe_legacy(store: &LegacyFacts, probes: &[LegacyValue]) -> usize {
    probes
        .iter()
        .map(|v| store.matching(0, v).into_iter().sum::<usize>())
        .sum()
}

fn enumerate_interned(pool_a: &[Value], pool_b: &[Value], out: &mut Vec<Tuple>) -> usize {
    out.clear();
    let mut scratch = [Value::Int(0); 2];
    for &a in pool_a {
        scratch[0] = a;
        for &b in pool_b {
            scratch[1] = b;
            out.push(Tuple::from_slice(&scratch));
        }
    }
    out.len()
}

fn enumerate_legacy(
    pool_a: &[LegacyValue],
    pool_b: &[LegacyValue],
    out: &mut Vec<Arc<[LegacyValue]>>,
) -> usize {
    out.clear();
    for a in pool_a {
        for b in pool_b {
            let binding: Arc<[LegacyValue]> = vec![a.clone(), b.clone()].into();
            out.push(binding);
        }
    }
    out.len()
}

fn factstore_paths(c: &mut Criterion) {
    let (store, p, strings) = interned_store();
    let (legacy, legacy_strings) = legacy_store();

    let mut group = c.benchmark_group("factstore");
    group.bench_function("indexed_probe", |b| {
        b.iter(|| probe_interned(black_box(&store), p, black_box(&strings)))
    });
    group.bench_function("legacy_probe", |b| {
        b.iter(|| probe_legacy(black_box(&legacy), black_box(&legacy_strings)))
    });

    let pool_a = &strings[..POOL];
    let pool_b = &strings[POOL..2 * POOL];
    let legacy_a = &legacy_strings[..POOL];
    let legacy_b = &legacy_strings[POOL..2 * POOL];
    let mut out = Vec::new();
    let mut legacy_out = Vec::new();
    group.bench_function("fresh_enumeration", |b| {
        b.iter(|| enumerate_interned(black_box(pool_a), black_box(pool_b), &mut out))
    });
    group.bench_function("legacy_enumeration", |b| {
        b.iter(|| enumerate_legacy(black_box(legacy_a), black_box(legacy_b), &mut legacy_out))
    });
    group.finish();
}

/// Times `f` over `iters` runs and returns total wall-clock.
fn time(mut f: impl FnMut() -> usize, iters: u32) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed()
}

/// The ≥2× floor: interned probe and enumeration must beat the legacy
/// emulation by at least 2× on a measured run. Panics (failing the bench
/// run) otherwise.
fn speedup_guard(_c: &mut Criterion) {
    if std::env::args().any(|a| a == "--test") {
        println!("speedup_guard: skipped in smoke mode");
        return;
    }
    const ITERS: u32 = 40;

    let (store, p, strings) = interned_store();
    let (legacy, legacy_strings) = legacy_store();
    let interned_probe = time(|| probe_interned(&store, p, &strings), ITERS);
    let legacy_probe = time(|| probe_legacy(&legacy, &legacy_strings), ITERS);
    let probe_ratio = legacy_probe.as_secs_f64() / interned_probe.as_secs_f64().max(1e-12);
    println!(
        "speedup_guard: probe {probe_ratio:.1}x (interned {interned_probe:?}, legacy {legacy_probe:?})"
    );

    let mut out = Vec::new();
    let mut legacy_out = Vec::new();
    let interned_enum = time(
        || enumerate_interned(&strings[..POOL], &strings[POOL..2 * POOL], &mut out),
        ITERS,
    );
    let legacy_enum = time(
        || {
            enumerate_legacy(
                &legacy_strings[..POOL],
                &legacy_strings[POOL..2 * POOL],
                &mut legacy_out,
            )
        },
        ITERS,
    );
    let enum_ratio = legacy_enum.as_secs_f64() / interned_enum.as_secs_f64().max(1e-12);
    println!(
        "speedup_guard: enumeration {enum_ratio:.1}x (interned {interned_enum:?}, legacy {legacy_enum:?})"
    );

    assert!(
        probe_ratio >= 2.0,
        "interned indexed probe must be ≥2x the legacy data plane, got {probe_ratio:.2}x"
    );
    assert!(
        enum_ratio >= 2.0,
        "interned fresh-binding enumeration must be ≥2x the legacy data plane, got {enum_ratio:.2}x"
    );
}

criterion_group!(benches, factstore_paths, speedup_guard);
criterion_main!(benches);
