//! Criterion benchmark of the observability layer's overhead budget.
//!
//! The contract (DESIGN.md §8): with observability *disabled*, the probes
//! threaded through the kernel round loop are branch-on-`None` no-ops —
//! the instrumented loop must stay within **2%** of an identical loop with
//! no probes at all. That bound is asserted here (min-of-interleaved-trials,
//! so scheduler noise cannot produce a false pass) before the trajectory
//! benchmarks run. The criterion groups then record the absolute cost of
//! each observability tier end-to-end: disabled, metrics-only (the builder
//! default), and metrics + tracing into a ring buffer.
//!
//! Run in smoke mode (CI) with: `cargo bench -p toorjah-bench --bench
//! obs -- --test`.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use toorjah_engine::InstanceSource;
use toorjah_obs::{EventKind, Obs, RingBufferSink};
use toorjah_system::Toorjah;
use toorjah_workload::{music_instance, music_schema, MusicConfig};

const QUERY: &str = "q(N) <- r1(A, N, Y1), r2('t0', Y2, A)";

/// Per-iteration "round work" standing in for frontier processing. Sized
/// at ~150ns — still orders of magnitude below a real kernel round (tens
/// of microseconds of dispatch work), so the bound asserted here is far
/// stricter than the production budget — yet small enough that a probe
/// that allocated or took a lock would blow it immediately.
#[inline(never)]
fn round_work(mut x: u64) -> u64 {
    for _ in 0..128 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

/// The kernel round loop with no observability probes at all.
fn loop_plain(rounds: u64) -> u64 {
    let mut acc = 0u64;
    for round in 1..=rounds {
        acc = acc.wrapping_add(round_work(round));
    }
    acc
}

/// The same loop with the exact probe pattern the kernel uses per round:
/// an enabled check, a metrics-handle check, and two trace probes whose
/// closures are never invoked on a disabled handle.
fn loop_probed(obs: Obs, rounds: u64) -> u64 {
    let registry = obs.registry();
    let mut acc = 0u64;
    for round in 1..=rounds {
        let started = obs.is_enabled().then(Instant::now);
        obs.trace(round as u32, || EventKind::RoundStart {
            requested: round as usize,
        });
        acc = acc.wrapping_add(round_work(round));
        if let Some(registry) = registry {
            registry.counter("kernel.rounds").inc();
        }
        if let Some(started) = started {
            let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            obs.trace(round as u32, || EventKind::RoundEnd { micros });
        }
    }
    acc
}

/// Asserts the disabled-path budget: min-of-interleaved-trials of the
/// probed loop within 2% of the plain loop.
fn assert_disabled_overhead_budget() {
    const TRIALS: usize = 9;
    const ROUNDS: u64 = 150_000;
    let obs = Obs::disabled();
    // Warm-up, and keep the results observable so neither loop folds away.
    let mut sink = loop_plain(ROUNDS) ^ loop_probed(obs, ROUNDS);
    let mut plain_min = u128::MAX;
    let mut probed_min = u128::MAX;
    for _ in 0..TRIALS {
        let t = Instant::now();
        sink ^= loop_plain(std::hint::black_box(ROUNDS));
        plain_min = plain_min.min(t.elapsed().as_nanos());
        let t = Instant::now();
        sink ^= loop_probed(std::hint::black_box(obs), std::hint::black_box(ROUNDS));
        probed_min = probed_min.min(t.elapsed().as_nanos());
    }
    std::hint::black_box(sink);
    assert!(
        probed_min * 100 <= plain_min * 102,
        "disabled-path probes exceed the 2% budget: probed {probed_min}ns vs plain {plain_min}ns"
    );
    println!(
        "disabled-path overhead: plain {plain_min}ns, probed {probed_min}ns \
         ({:+.2}%)",
        100.0 * (probed_min as f64 - plain_min as f64) / plain_min as f64
    );
}

fn observability_tiers(c: &mut Criterion) {
    assert_disabled_overhead_budget();

    let schema = music_schema();
    let db = music_instance(&schema, &MusicConfig::default());
    let provider = InstanceSource::new(schema, db);
    let mut group = c.benchmark_group("obs_tiers");

    group.bench_function("round_loop_plain", |b| {
        b.iter(|| loop_plain(std::hint::black_box(4096)))
    });
    group.bench_function("round_loop_probed_disabled", |b| {
        let obs = Obs::disabled();
        b.iter(|| loop_probed(std::hint::black_box(obs), std::hint::black_box(4096)))
    });

    group.bench_function("ask_disabled", |b| {
        let system = Toorjah::new(provider.clone());
        b.iter(|| {
            system
                .ask(std::hint::black_box(QUERY))
                .expect("answerable")
                .answers
                .len()
        })
    });
    group.bench_function("ask_metrics", |b| {
        let system = Toorjah::builder(provider.clone()).build();
        b.iter(|| {
            system
                .ask(std::hint::black_box(QUERY))
                .expect("answerable")
                .answers
                .len()
        })
    });
    group.bench_function("ask_traced", |b| {
        let sink = Arc::new(RingBufferSink::new(4096));
        let system = Toorjah::builder(provider.clone()).trace_sink(sink).build();
        b.iter(|| {
            system
                .ask(std::hint::black_box(QUERY))
                .expect("answerable")
                .answers
                .len()
        })
    });

    group.finish();
}

criterion_group!(benches, observability_tiers);
criterion_main!(benches);
