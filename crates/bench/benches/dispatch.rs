//! Criterion benchmarks of frontier dispatch on the overlapping music
//! workload over a slow (real-sleep) source: the sequential path vs a
//! batched round-trip path vs an 8-way parallel worker pool. Answers and
//! access counts are identical across the three — the benchmark measures
//! exactly the wall-clock the dispatcher buys back from source latency.
//!
//! Run in smoke mode (CI) with: `cargo bench -p toorjah-bench --bench
//! dispatch -- --test`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use toorjah_engine::{DispatchOptions, InstanceSource, LatencySource, SourceProvider};
use toorjah_system::Toorjah;
use toorjah_workload::{
    music_instance, music_schema, overlapping_queries, MusicConfig, OverlapParams,
};

fn setup() -> (Arc<dyn SourceProvider>, Vec<String>) {
    let schema = music_schema();
    let db = music_instance(&schema, &MusicConfig::default());
    // 200 µs per round trip, really slept: access latency dominates, as in
    // the paper's web-wrapper setting (§V).
    let provider: Arc<dyn SourceProvider> = Arc::new(
        LatencySource::new(InstanceSource::new(schema, db), Duration::from_micros(200))
            .with_real_sleep(),
    );
    let queries = overlapping_queries(&OverlapParams {
        queries: 8,
        ..OverlapParams::default()
    });
    (provider, queries)
}

fn run_workload(system: &Toorjah, queries: &[String]) -> usize {
    queries
        .iter()
        .map(|q| {
            system
                .ask(std::hint::black_box(q))
                .expect("workload queries are answerable")
                .profile
                .stats
                .total_accesses
        })
        .sum()
}

fn dispatch_modes(c: &mut Criterion) {
    let (provider, queries) = setup();
    let mut group = c.benchmark_group("dispatch_workload");

    group.bench_function("sequential", |b| {
        let system =
            Toorjah::from_arc(Arc::clone(&provider)).with_dispatch(DispatchOptions::sequential());
        b.iter(|| run_workload(&system, &queries))
    });

    group.bench_function("batched_round_trips", |b| {
        let system = Toorjah::from_arc(Arc::clone(&provider))
            .with_dispatch(DispatchOptions::sequential().with_batch_size(16));
        b.iter(|| run_workload(&system, &queries))
    });

    group.bench_function("parallel_8", |b| {
        let system =
            Toorjah::from_arc(Arc::clone(&provider)).with_dispatch(DispatchOptions::parallel(8));
        b.iter(|| run_workload(&system, &queries))
    });

    group.finish();
}

criterion_group!(benches, dispatch_modes);
criterion_main!(benches);
