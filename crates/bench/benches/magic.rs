//! Criterion benchmark of demand-driven (magic sets) Datalog evaluation on
//! the bound-reachability workload: the left-linear transitive closure of
//! a 120-edge chain with 8 feeder nodes per chain position, queried with
//! the source bound (`path(n0, ?)`).
//!
//! - **runtime_bound_closure_120** — what the `Runtime` pruning tier does
//!   for a bound Datalog query: derive the full least fixpoint (65,340
//!   `path` facts) and filter the answers afterwards.
//! - **magic_bound_closure_120** — the `Magic` tier: rewrite the program
//!   for the `bf` adornment and evaluate only the demanded facts (120).
//!
//! The committed `BENCH_magic.json` snapshot doubles as a regression
//! guard: `bench_trajectory` fails the build if the full-evaluation median
//! drops under 5× the demand-driven median — the headline claim of the
//! magic-sets tier.
//!
//! Run in smoke mode (CI) with: `cargo bench -p toorjah-bench --bench
//! magic -- --test`.

use criterion::{criterion_group, criterion_main, Criterion};
use toorjah_catalog::Tuple;
use toorjah_datalog::{evaluate, evaluate_demand};
use toorjah_workload::{bound_closure, BoundConfig, BoundWorkload};

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v
}

/// Full evaluation followed by the answer filter — the bound query as the
/// non-demand tiers execute it.
fn full_then_filter(w: &BoundWorkload) -> Vec<Tuple> {
    let (idb, _) = evaluate(&w.program, &w.edb);
    idb.tuples(w.path)
        .iter()
        .filter(|t| t.values()[0] == w.source)
        .cloned()
        .collect()
}

fn demand(w: &BoundWorkload) -> Vec<Tuple> {
    let (idb, _) = evaluate_demand(&w.program, &w.edb, w.path, &w.bound_bindings())
        .expect("the bound query admits a magic rewrite");
    idb.tuples(w.path).to_vec()
}

fn bound_closure_120(c: &mut Criterion) {
    let config = BoundConfig::default();
    let w = bound_closure(&config);

    // Pin the bench's claim up front: identical answers, a fraction of the
    // derivations.
    let full = full_then_filter(&w);
    let demanded = demand(&w);
    assert_eq!(sorted(full), sorted(demanded.clone()));
    assert_eq!(demanded.len(), config.demanded_facts());

    c.bench_function("runtime_bound_closure_120", |b| {
        b.iter(|| full_then_filter(std::hint::black_box(&w)))
    });
    c.bench_function("magic_bound_closure_120", |b| {
        b.iter(|| demand(std::hint::black_box(&w)))
    });
}

criterion_group!(benches, bound_closure_120);
criterion_main!(benches);
