//! Criterion benchmark of the query daemon's wire path.
//!
//! The contract (DESIGN.md §10): the service tax — request parsing,
//! admission, session bookkeeping, and response rendering around an
//! execution — must stay within **3×** of the direct facade call on a
//! cache-warm prepared statement (where the execution itself is cheapest
//! and the wrapper is proportionally largest). That bound is asserted
//! up front (min-of-interleaved-trials, so scheduler noise cannot
//! produce a false pass); the criterion groups then record the absolute
//! request rates: warm `execute` through the statement registry, one-shot
//! `ask` (fresh parse + plan per request), the pure protocol floor
//! (`cache_stats`, no execution), and the direct facade baseline.
//!
//! Run in smoke mode (CI) with: `cargo bench -p toorjah-bench --bench
//! server -- --test`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use toorjah_cache::SharedAccessCache;
use toorjah_engine::InstanceSource;
use toorjah_obs::Obs;
use toorjah_query::Statement;
use toorjah_server::{Service, ServiceConfig};
use toorjah_system::{ExecMode, Toorjah};
use toorjah_workload::{music_instance, music_schema, MusicConfig};

const QUERY: &str = "q(N) <- r1(A, N, Y1), r2('t0', Y2, A)";

fn warm_service() -> Service {
    let schema = music_schema();
    let db = music_instance(&schema, &MusicConfig::default());
    let system = Toorjah::builder(InstanceSource::new(schema, db))
        .cache(SharedAccessCache::unbounded())
        .observability(Obs::disabled())
        .build();
    let service = Service::new(system, ServiceConfig::default());
    // Pay the cold misses and the plan once; the measured loops below run
    // entirely cache- and registry-warm (cache-served lookups are free, so
    // the tenant budget never depletes).
    let reply = service.handle_line(&execute_line(QUERY));
    assert!(reply.contains("\"ok\":true"), "{reply}");
    service
}

fn execute_line(query: &str) -> String {
    format!("{{\"id\":1,\"verb\":\"execute\",\"query\":\"{query}\"}}")
}

fn ask_line(query: &str) -> String {
    format!("{{\"id\":1,\"verb\":\"ask\",\"query\":\"{query}\"}}")
}

fn prepare(service: &Service) -> toorjah_system::Prepared {
    let system = service.system();
    let statement = Statement::parse(QUERY, system.schema()).expect("parses");
    system.prepare(&statement).expect("answerable")
}

/// Asserts the wire-tax budget: min-of-interleaved-trials of the warm
/// wire `execute` within 3× of the direct facade execution it wraps.
fn assert_wire_overhead_budget() {
    const TRIALS: usize = 9;
    const ITERS: usize = 300;
    let service = warm_service();
    let prepared = prepare(&service);
    let line = execute_line(QUERY);
    let mut sink = 0usize;
    let mut direct_min = u128::MAX;
    let mut wire_min = u128::MAX;
    for _ in 0..TRIALS {
        let t = Instant::now();
        for _ in 0..ITERS {
            sink ^= prepared
                .execute(ExecMode::Sequential)
                .expect("answerable")
                .answers
                .len();
        }
        direct_min = direct_min.min(t.elapsed().as_nanos());
        let t = Instant::now();
        for _ in 0..ITERS {
            sink ^= service.handle_line(std::hint::black_box(&line)).len();
        }
        wire_min = wire_min.min(t.elapsed().as_nanos());
    }
    std::hint::black_box(sink);
    assert!(
        wire_min <= direct_min * 3,
        "wire path exceeds the 3x budget: wire {wire_min}ns vs direct {direct_min}ns \
         per {ITERS} warm executions"
    );
    println!(
        "wire tax on a warm statement: direct {direct_min}ns, wire {wire_min}ns \
         ({:.2}x)",
        wire_min as f64 / direct_min as f64
    );
}

fn server_wire(c: &mut Criterion) {
    assert_wire_overhead_budget();

    let mut group = c.benchmark_group("server_wire");

    group.bench_function("direct_execute_warm", |b| {
        let service = warm_service();
        let prepared = prepare(&service);
        b.iter(|| {
            prepared
                .execute(ExecMode::Sequential)
                .expect("answerable")
                .answers
                .len()
        })
    });
    group.bench_function("wire_execute_warm", |b| {
        let service = warm_service();
        let line = execute_line(QUERY);
        b.iter(|| service.handle_line(std::hint::black_box(&line)).len())
    });
    group.bench_function("wire_ask_warm", |b| {
        let service = warm_service();
        let line = ask_line(QUERY);
        b.iter(|| service.handle_line(std::hint::black_box(&line)).len())
    });
    group.bench_function("wire_cache_stats", |b| {
        let service = warm_service();
        let line = "{\"id\":1,\"verb\":\"cache_stats\"}";
        b.iter(|| service.handle_line(std::hint::black_box(line)).len())
    });

    group.finish();
}

criterion_group!(benches, server_wire);
criterion_main!(benches);
