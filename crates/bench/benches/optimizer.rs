//! Criterion micro-benchmarks of the optimizer pipeline: d-graph
//! construction, the GFP arc-marking algorithm, ordering and full plan
//! generation, at increasing schema/query sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toorjah_core::{gfp, order_sources, plan_query, DGraph, OptimizedDGraph, OrderingHeuristic};
use toorjah_query::{parse_query, preprocess};
use toorjah_workload::random::seeded_rng;
use toorjah_workload::{publication_schema, random_query, random_schema, RandomParams};

fn paper_q3_pipeline(c: &mut Criterion) {
    let schema = publication_schema();
    let q3 = parse_query(
        "q3(R) <- rev_icde(R, S, acc), sub(S, A), pub1(P, R), pub1(P, A), \
         rev(R, icde, 2008), conf(P, icde, Y)",
        &schema,
    )
    .unwrap();
    let pre = preprocess(&q3, &schema).unwrap();

    c.bench_function("dgraph_build_q3", |b| {
        b.iter(|| DGraph::build(std::hint::black_box(&pre)).unwrap())
    });

    let graph = DGraph::build(&pre).unwrap();
    c.bench_function("gfp_q3", |b| b.iter(|| gfp(std::hint::black_box(&graph))));

    let (solution, _) = gfp(&graph);
    let opt = OptimizedDGraph::new(graph.clone(), solution);
    c.bench_function("ordering_q3", |b| {
        b.iter(|| {
            order_sources(std::hint::black_box(&opt), OrderingHeuristic::JoinCountDesc).unwrap()
        })
    });

    c.bench_function("plan_query_q3_end_to_end", |b| {
        b.iter(|| plan_query(std::hint::black_box(&q3), &schema).unwrap())
    });
}

fn gfp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("gfp_scaling");
    for &relations in &[5usize, 10, 20, 40] {
        let params = RandomParams {
            relations: (relations, relations),
            atoms: (4, 6),
            ..RandomParams::paper()
        };
        let mut rng = seeded_rng(relations as u64);
        let generated = random_schema(&mut rng, &params);
        let Some(query) = random_query(&mut rng, &generated, &params) else {
            continue;
        };
        let Ok(pre) = preprocess(&query, &generated.schema) else {
            continue;
        };
        let Ok(graph) = DGraph::build(&pre) else {
            continue;
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(relations),
            &graph,
            |b, graph| b.iter(|| gfp(std::hint::black_box(graph))),
        );
    }
    group.finish();
}

criterion_group!(benches, paper_q3_pipeline, gfp_scaling);
criterion_main!(benches);
