//! Criterion micro-benchmarks of query execution: the naive Fig. 1
//! algorithm vs the optimized fast-failing executor over the publication
//! workload (small configuration so each iteration is quick), plus CQ
//! minimization and the semi-naive Datalog evaluator.

use criterion::{criterion_group, criterion_main, Criterion};
use toorjah_catalog::tuple;
use toorjah_core::plan_query;
use toorjah_datalog::{evaluate, DTerm, FactStore, Literal, Program, Rule};
use toorjah_engine::{execute_plan, naive_evaluate, ExecOptions, InstanceSource, NaiveOptions};
use toorjah_query::{minimize, parse_query};
use toorjah_workload::{
    paper_queries, publication_instance, publication_schema, PublicationConfig,
};

fn naive_vs_optimized(c: &mut Criterion) {
    let schema = publication_schema();
    let config = PublicationConfig {
        papers: 60,
        persons: 60,
        conferences: 10,
        years: 6,
        tuples_per_relation: 150,
        seed: 0x1CDE_2008,
    };
    let instance = publication_instance(&schema, &config);
    let provider = InstanceSource::new(schema.clone(), instance);

    for (name, query) in paper_queries(&schema) {
        let planned = plan_query(&query, &schema).unwrap();
        c.bench_function(&format!("naive_{name}"), |b| {
            b.iter(|| {
                naive_evaluate(
                    std::hint::black_box(&query),
                    &schema,
                    &provider,
                    NaiveOptions::default(),
                )
                .unwrap()
            })
        });
        c.bench_function(&format!("optimized_{name}"), |b| {
            b.iter(|| {
                execute_plan(
                    std::hint::black_box(&planned.plan),
                    &provider,
                    ExecOptions::default(),
                )
                .unwrap()
            })
        });
    }
}

fn minimization(c: &mut Criterion) {
    let schema = toorjah_catalog::Schema::parse("e^oo(V, V)").unwrap();
    // A 6-atom chain with a redundant self-loop: folds down to one atom.
    let q = parse_query(
        "q() <- e(A, B), e(B, C), e(C, D), e(D, E), e(E, F), e(W, W)",
        &schema,
    )
    .unwrap();
    c.bench_function("minimize_6_atom_chain", |b| {
        b.iter(|| minimize(std::hint::black_box(&q)))
    });
}

fn datalog_closure(c: &mut Criterion) {
    let mut p = Program::new();
    let edge = p.predicate("edge", 2).unwrap();
    let path = p.predicate("path", 2).unwrap();
    let v = DTerm::Var;
    p.add_rule(Rule::new(
        Literal::new(path, vec![v(0), v(1)]),
        vec![Literal::new(edge, vec![v(0), v(1)])],
        vec!["X".into(), "Y".into()],
    ))
    .unwrap();
    p.add_rule(Rule::new(
        Literal::new(path, vec![v(0), v(2)]),
        vec![
            Literal::new(edge, vec![v(0), v(1)]),
            Literal::new(path, vec![v(1), v(2)]),
        ],
        vec!["X".into(), "Y".into(), "Z".into()],
    ))
    .unwrap();
    let mut edb = FactStore::new();
    for i in 0..120i64 {
        edb.insert(edge, tuple![i, i + 1]);
    }
    c.bench_function("datalog_transitive_closure_120", |b| {
        b.iter(|| evaluate(std::hint::black_box(&p), &edb))
    });
}

criterion_group!(benches, naive_vs_optimized, minimization, datalog_closure);
criterion_main!(benches);
