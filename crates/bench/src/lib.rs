//! # toorjah-bench
//!
//! Benchmark harness reproducing every table and figure of the ICDE 2008
//! evaluation (§V). One binary per artifact:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig6` | Fig. 6 — accesses & returned rows per relation, naive vs optimized, q1–q3 |
//! | `figs7to9` | Figs. 7–9 — d-graphs and optimized d-graphs of q1–q3 (DOT + summaries) |
//! | `fig10` | Fig. 10 — arc/deletion/strong statistics and saved accesses over random workloads |
//! | `fig11` | Fig. 11 — average execution time by number of atoms, naive vs optimized |
//! | `connection_stats` | §VI — fraction of synthetic queries that are connection queries |
//! | `distillation` | §V — time-to-first-answer vs total time under the parallel strategy |
//!
//! Each binary accepts `--full` to run at the paper's scale and
//! `--seed <n>` for reproducibility; defaults are scaled down to finish in
//! seconds. Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]

use std::time::Duration;

/// Minimal command-line options shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Run at the paper's full scale.
    pub full: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Override for the number of schemas (fig10/fig11/connection_stats).
    pub schemas: Option<usize>,
    /// Override for the number of queries per schema.
    pub queries: Option<usize>,
}

impl Cli {
    /// Parses `--full`, `--seed <n>`, `--schemas <n>`, `--queries <n>`.
    pub fn parse() -> Cli {
        let mut cli = Cli {
            full: false,
            seed: 2008,
            schemas: None,
            queries: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => cli.full = true,
                "--seed" => {
                    cli.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--schemas" => {
                    cli.schemas = args.next().and_then(|v| v.parse().ok());
                }
                "--queries" => {
                    cli.queries = args.next().and_then(|v| v.parse().ok());
                }
                other => {
                    eprintln!("unknown argument {other}; supported: --full --seed N --schemas N --queries N");
                    std::process::exit(2);
                }
            }
        }
        cli
    }
}

/// Accumulates min/max/avg like Fig. 10's rows.
#[derive(Clone, Debug, Default)]
pub struct MinMaxAvg {
    values: Vec<f64>,
}

impl MinMaxAvg {
    /// Records one observation.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean (0 when empty).
    pub fn avg(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }
}

/// Formats a duration in the paper's milliseconds style.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.0} ms", d.as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_avg() {
        let mut m = MinMaxAvg::default();
        for v in [10.0, 66.0, 20.0] {
            m.push(v);
        }
        assert_eq!(m.min(), 10.0);
        assert_eq!(m.max(), 66.0);
        assert!((m.avg() - 32.0).abs() < 1e-9);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn fmt_ms_rounds() {
        assert_eq!(fmt_ms(Duration::from_millis(9310)), "9310 ms");
    }
}
