//! §V observation — under the distillation strategy "the time needed to
//! retrieve the first answers […] is only a small fraction of the total
//! query execution time".
//!
//! Measures time-to-first-answer vs total time for the publication queries
//! under a real per-access sleep, with parallel per-relation wrappers.
//!
//! Run: `cargo run --release -p toorjah-bench --bin distillation`

use std::sync::Arc;
use std::time::Duration;

use toorjah_bench::{fmt_ms, Cli};
use toorjah_core::plan_query;
use toorjah_engine::{InstanceSource, LatencySource};
use toorjah_system::{run_distillation, DistillationOptions};
use toorjah_workload::{
    paper_queries, publication_instance, publication_schema, PublicationConfig,
};

fn main() {
    let cli = Cli::parse();
    let schema = publication_schema();
    // A smaller instance keeps the real-sleep demo short.
    let config = if cli.full {
        PublicationConfig::paper()
    } else {
        PublicationConfig {
            papers: 60,
            persons: 60,
            conferences: 10,
            years: 6,
            tuples_per_relation: 150,
            seed: 0x1CDE_2008,
        }
    };
    let instance = publication_instance(&schema, &config);
    let provider = Arc::new(
        LatencySource::new(
            InstanceSource::new(schema.clone(), instance),
            Duration::from_micros(500),
        )
        .with_real_sleep(),
    );

    println!("§V — distillation: time to first answer vs total time\n");
    println!(
        "{:<6}{:>10}{:>16}{:>14}{:>10}{:>10}",
        "query", "answers", "first answer", "total", "ratio", "accesses"
    );
    for (name, query) in paper_queries(&schema) {
        let planned = match plan_query(&query, &schema) {
            Ok(p) => p,
            Err(e) => {
                println!("{name}: planning failed: {e}");
                continue;
            }
        };
        let stream = run_distillation(
            planned.plan,
            provider.clone(),
            DistillationOptions::default(),
        );
        match stream.wait() {
            Ok(report) => {
                let first = report.time_to_first_answer;
                let ratio = first.map_or(f64::NAN, |f| {
                    100.0 * f.as_secs_f64() / report.total_time.as_secs_f64().max(1e-9)
                });
                println!(
                    "{:<6}{:>10}{:>16}{:>14}{:>9.1}%{:>10}",
                    name,
                    report.answers.len(),
                    first.map_or("-".to_string(), fmt_ms),
                    fmt_ms(report.total_time),
                    ratio,
                    report.stats.total_accesses,
                );
            }
            Err(e) => println!("{name}: execution failed: {e}"),
        }
    }
}
