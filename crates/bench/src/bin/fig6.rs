//! Fig. 6 — experimental results for the test queries q1–q3 over the
//! publication schema: number of accesses and returned rows per relation,
//! naive plan vs optimized plan. Blank cells (-) mean the relation is not
//! part of the plan (irrelevant) or was never probed.
//!
//! Run: `cargo run --release -p toorjah-bench --bin fig6 [--full]`
//! (default uses the paper-scale configuration already).

use toorjah_bench::Cli;
use toorjah_core::plan_query;
use toorjah_engine::{execute_plan, naive_evaluate, ExecOptions, InstanceSource, NaiveOptions};
use toorjah_workload::{
    paper_queries, publication_instance, publication_schema, PublicationConfig,
};

/// The paper's published cell values for comparison, as printed in Fig. 6
/// (naive accesses, optimized accesses, naive rows, optimized rows); `None`
/// marks cells left blank.
type Row = (
    &'static str,
    Option<u64>,
    Option<u64>,
    Option<u64>,
    Option<u64>,
);

fn paper_reference(query: &str) -> Vec<Row> {
    match query {
        "q1" => vec![
            ("pub1", Some(4), None, Some(996), None),
            ("pub2", Some(399), Some(364), Some(991), Some(884)),
            ("conf", Some(4), Some(1), Some(1000), Some(1000)),
            ("rev", Some(20), Some(20), Some(999), Some(999)),
            ("sub", Some(400), None, Some(996), None),
            ("rev_icde", Some(159_600), None, Some(997), None),
        ],
        "q2" => vec![
            ("pub1", Some(4), None, Some(996), None),
            ("pub2", Some(399), None, Some(991), None),
            ("conf", Some(4), Some(1), Some(1000), Some(1000)),
            ("rev", Some(20), Some(20), Some(999), Some(999)),
            ("sub", Some(400), None, Some(996), None),
            (
                "rev_icde",
                Some(159_600),
                Some(133_588),
                Some(997),
                Some(818),
            ),
        ],
        "q3" => vec![
            ("pub1", Some(4), None, Some(996), None),
            ("pub2", Some(399), Some(364), Some(991), Some(884)),
            ("conf", Some(4), Some(1), Some(1000), Some(1000)),
            ("rev", Some(20), Some(1), Some(999), Some(56)),
            ("sub", Some(400), Some(357), Some(996), Some(893)),
            (
                "rev_icde",
                Some(159_600),
                Some(17_184),
                Some(997),
                Some(102),
            ),
        ],
        _ => Vec::new(),
    }
}

fn fmt(v: Option<u64>) -> String {
    v.map_or("-".to_string(), |n| n.to_string())
}

fn main() {
    let _cli = Cli::parse();
    let schema = publication_schema();
    let config = PublicationConfig::paper();
    eprintln!("generating data (seed {:#x})…", config.seed);
    let instance = publication_instance(&schema, &config);
    let provider = InstanceSource::new(schema.clone(), instance);

    println!("Fig. 6 — accesses and returned rows per relation (naive | optimized)");
    println!("paper columns are the published values; ours come from the seeded");
    println!("synthetic instance (absolute numbers differ with the data; the shape");
    println!("— which relations are pruned, relative magnitudes — is the target).\n");

    for (name, query) in paper_queries(&schema) {
        println!("=== {name}: {} ===", query.display(&schema));
        let naive = naive_evaluate(&query, &schema, &provider, NaiveOptions::default())
            .expect("naive evaluation fits the budget");
        let planned = plan_query(&query, &schema).expect("q1-q3 are answerable");
        let optimized =
            execute_plan(&planned.plan, &provider, ExecOptions::default()).expect("plan runs");

        println!(
            "{:<10}| {:>12} {:>12} | {:>12} {:>12} | {:>11} {:>11} | {:>10} {:>10}",
            "",
            "naive acc.",
            "(paper)",
            "opt. acc.",
            "(paper)",
            "naive rows",
            "(paper)",
            "opt. rows",
            "(paper)"
        );
        let reference = paper_reference(name);
        for (id, rel) in schema.iter() {
            let r = reference.iter().find(|r| r.0 == rel.name());
            let na = naive.stats.accesses_to(id);
            let oa = optimized.stats.accesses_to(id);
            let nr = naive.stats.extracted_from(id);
            let or = optimized.stats.extracted_from(id);
            let blank = |n: usize| {
                if n == 0 {
                    "-".to_string()
                } else {
                    n.to_string()
                }
            };
            println!(
                "{:<10}| {:>12} {:>12} | {:>12} {:>12} | {:>11} {:>11} | {:>10} {:>10}",
                rel.name(),
                blank(na),
                r.map_or("?".into(), |r| fmt(r.1)),
                blank(oa),
                r.map_or("?".into(), |r| fmt(r.2)),
                blank(nr),
                r.map_or("?".into(), |r| fmt(r.3)),
                blank(or),
                r.map_or("?".into(), |r| fmt(r.4)),
            );
        }
        let saved = 100.0
            * (1.0
                - optimized.stats.total_accesses as f64 / naive.stats.total_accesses.max(1) as f64);
        let mut a = naive.answers.clone();
        let mut b = optimized.answers.clone();
        a.sort();
        b.sort();
        println!(
            "answers: {} (naive == optimized: {}); total accesses {} → {} ({saved:.1}% saved)\n",
            optimized.answers.len(),
            a == b,
            naive.stats.total_accesses,
            optimized.stats.total_accesses,
        );
    }
}
