//! Figs. 7, 8, 9 — the d-graph and optimized d-graph for q1, q2 and q3.
//!
//! Emits Graphviz DOT files under `figures/` (render with
//! `dot -Tpdf figures/q1_optimized.dot -o q1.pdf`) and prints textual
//! summaries: the sources of each graph and the pruning outcome, matching
//! the paper's figures (e.g. Fig. 7: the optimized d-graph for q1 keeps
//! only rev(1), conf(1), pub1(1)).
//!
//! Run: `cargo run --release -p toorjah-bench --bin figs7to9`

use std::fs;
use std::path::Path;

use toorjah_core::{dgraph_to_dot, optimized_to_dot, plan_query};
use toorjah_workload::{paper_queries, publication_schema};

fn main() {
    let schema = publication_schema();
    let out_dir = Path::new("figures");
    fs::create_dir_all(out_dir).expect("can create figures/");

    for (idx, (name, query)) in paper_queries(&schema).into_iter().enumerate() {
        let fig = 7 + idx;
        println!("=== Fig. {fig}: d-graph and optimized d-graph for {name} ===");
        println!("{name}: {}", query.display(&schema));
        let planned = plan_query(&query, &schema).expect("q1-q3 plan");
        let opt = &planned.optimized;
        let graph = opt.graph();

        // Full d-graph.
        let full_sources: Vec<String> = graph.sources().iter().map(|s| s.label.clone()).collect();
        println!(
            "  d-graph: sources {{{}}}, {} arcs",
            full_sources.join(", "),
            graph.arcs().len()
        );

        // Optimized d-graph.
        let kept: Vec<String> = planned
            .plan
            .caches
            .iter()
            .map(|c| format!("{}@{}", c.label, c.position))
            .collect();
        println!(
            "  optimized: sources {{{}}} — {} strong, {} weak, {} deleted arcs",
            kept.join(", "),
            opt.strong_count(),
            opt.weak_count(),
            opt.deleted_count(),
        );
        let pruned: Vec<String> = graph
            .sources()
            .iter()
            .enumerate()
            .filter(|(i, _)| !opt.is_relevant_source(toorjah_core::SourceId(*i as u32)))
            .map(|(_, s)| s.label.clone())
            .collect();
        println!("  pruned sources: {{{}}}", pruned.join(", "));

        let full_dot = dgraph_to_dot(graph);
        let opt_dot = optimized_to_dot(opt, false);
        let full_path = out_dir.join(format!("{name}_dgraph.dot"));
        let opt_path = out_dir.join(format!("{name}_optimized.dot"));
        fs::write(&full_path, full_dot).expect("write dot");
        fs::write(&opt_path, opt_dot).expect("write dot");
        println!(
            "  wrote {} and {}\n",
            full_path.display(),
            opt_path.display()
        );
    }

    println!("paper reference:");
    println!("  Fig. 7 (q1): optimized keeps rev(1), conf(1), pub1(1)");
    println!("  Fig. 8 (q2): optimized keeps rev(1), conf(1), rev_icde(1), r_rej(1)");
    println!("  Fig. 9 (q3): optimized keeps pub1(1), conf(1), rev(1), r_acc(1), pub1(2), sub(1), rev_icde(1), r_2008(1), r_icde(1)");
}
