//! Validates a JSON-lines trace file produced by the CLI's `--trace=<path>`
//! flag (a `toorjah_obs::WriterSink` export).
//!
//! Checks, per line and across the stream:
//!
//! 1. every line is one JSON object with numeric `seq`, `round` and `us`
//!    fields and a string `event` field naming a known event kind;
//! 2. sequence ids are strictly increasing (the sink preserves the
//!    emitter's deterministic order);
//! 3. the access lifecycle reconciles: the number of `access_requested`
//!    events equals `access_served_cache + access_served_source +
//!    access_pruned + access_failed` — every requested access is
//!    terminally resolved exactly once;
//! 4. the server request lifecycle reconciles: `request_accepted` equals
//!    `request_completed + request_rejected` plus the requests still in
//!    flight when the trace ended (every accepted request reaches exactly
//!    one terminal event — see the `toorjah-server` crate);
//! 5. with `--drained`, that in-flight remainder must be zero — the
//!    property of a *graceful* shutdown, where the server finishes every
//!    admitted request before exiting;
//! 6. with `--monotone-deltas`, at least one `delta_round` event is present
//!    and, within each fixpoint segment (between `fixpoint_reached`
//!    boundaries), the per-round `delta` sizes never increase. This is an
//!    opt-in property: it holds for straight-line frontier schedules like
//!    the paper's Example 1, not for every workload.
//!
//! Usage: `cargo run -p toorjah-bench --bin trace_check <trace.jsonl>
//! [--monotone-deltas] [--drained]`. Prints a one-line summary and exits
//! non-zero on any violation.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The event names the trace taxonomy can emit (`EventKind::name`).
const KNOWN_EVENTS: [&str; 17] = [
    "round_start",
    "round_end",
    "access_requested",
    "access_dispatched",
    "access_served_cache",
    "access_served_source",
    "access_pruned",
    "access_failed",
    "cache_evict",
    "batch_coalesced",
    "fixpoint_reached",
    "delta_round",
    "demand_seeded",
    "rewrite_fallback",
    "request_accepted",
    "request_rejected",
    "request_completed",
];

fn main() -> ExitCode {
    let mut path = None;
    let mut monotone_deltas = false;
    let mut drained = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--monotone-deltas" => monotone_deltas = true,
            "--drained" => drained = true,
            _ if path.is_none() => path = Some(arg),
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_check <trace.jsonl> [--monotone-deltas] [--drained]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_full(&text, monotone_deltas, drained) {
        Ok(summary) => {
            println!("ok: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("FAIL: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
fn check(text: &str) -> Result<String, String> {
    check_full(text, false, false)
}

#[cfg(test)]
fn check_with(text: &str, monotone_deltas: bool) -> Result<String, String> {
    check_full(text, monotone_deltas, false)
}

fn check_full(text: &str, monotone_deltas: bool, drained: bool) -> Result<String, String> {
    let mut last_seq = 0u64;
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut lines = 0usize;
    // The previous `delta_round` size within the current fixpoint segment;
    // `fixpoint_reached` closes a segment and resets the baseline.
    let mut last_delta: Option<u64> = None;
    for (no, line) in text.lines().enumerate() {
        let no = no + 1;
        if line.trim().is_empty() {
            return Err(format!("line {no}: empty line in the stream"));
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(format!("line {no}: not a JSON object: {line}"));
        }
        let seq = number_field(line, "seq").ok_or(format!("line {no}: no numeric \"seq\""))?;
        number_field(line, "round").ok_or(format!("line {no}: no numeric \"round\""))?;
        number_field(line, "us").ok_or(format!("line {no}: no numeric \"us\""))?;
        let event = string_field(line, "event").ok_or(format!("line {no}: no string \"event\""))?;
        if !KNOWN_EVENTS.contains(&event.as_str()) {
            return Err(format!("line {no}: unknown event {event:?}"));
        }
        if seq <= last_seq {
            return Err(format!(
                "line {no}: sequence id {seq} not strictly above {last_seq}"
            ));
        }
        last_seq = seq;
        match event.as_str() {
            "delta_round" => {
                let delta = number_field(line, "delta")
                    .ok_or(format!("line {no}: delta_round without numeric \"delta\""))?;
                if monotone_deltas {
                    if let Some(prev) = last_delta {
                        if delta > prev {
                            return Err(format!(
                                "line {no}: delta grew from {prev} to {delta} within a \
                                 fixpoint segment (--monotone-deltas)"
                            ));
                        }
                    }
                    last_delta = Some(delta);
                }
            }
            "fixpoint_reached" => last_delta = None,
            _ => {}
        }
        *counts.entry(event).or_default() += 1;
        lines += 1;
    }
    if lines == 0 {
        return Err("empty trace".into());
    }
    if monotone_deltas && !counts.contains_key("delta_round") {
        return Err("--monotone-deltas: trace contains no delta_round events".into());
    }

    let count = |name: &str| counts.get(name).copied().unwrap_or(0);
    let requested = count("access_requested");
    let terminal = count("access_served_cache")
        + count("access_served_source")
        + count("access_pruned")
        + count("access_failed");
    if requested != terminal {
        return Err(format!(
            "lifecycle does not reconcile: {requested} requested vs {terminal} \
             terminal events ({counts:?})"
        ));
    }

    // The server request lifecycle: every accepted request must reach one
    // terminal event (completed or rejected); the remainder was in flight
    // when the trace ended, which a drained trace forbids.
    let accepted = count("request_accepted");
    let request_terminal = count("request_completed") + count("request_rejected");
    if request_terminal > accepted {
        return Err(format!(
            "request lifecycle does not reconcile: {request_terminal} terminal \
             events for only {accepted} accepted requests ({counts:?})"
        ));
    }
    let in_flight = accepted - request_terminal;
    if drained && in_flight != 0 {
        return Err(format!(
            "--drained: {in_flight} of {accepted} accepted request(s) never \
             reached a terminal event ({counts:?})"
        ));
    }

    Ok(format!(
        "{lines} events, {requested} accesses requested and terminally resolved \
         ({} from source, {} from cache, {} pruned, {} failed), {} delta round(s), \
         {accepted} request(s) accepted ({} completed, {} rejected, {in_flight} in flight)",
        count("access_served_source"),
        count("access_served_cache"),
        count("access_pruned"),
        count("access_failed"),
        count("delta_round"),
        count("request_completed"),
        count("request_rejected"),
    ))
}

/// The value of `"key": <integer>` (first occurrence).
fn number_field(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// The value of `"key": "..."` (first occurrence, minimal unescaping).
fn string_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let n = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(n)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_reconciling_trace_passes() {
        let trace = "\
{\"seq\":1,\"round\":1,\"event\":\"round_start\",\"us\":0,\"requested\":1}\n\
{\"seq\":2,\"round\":1,\"event\":\"access_requested\",\"us\":0,\"relation\":0,\"binding\":[]}\n\
{\"seq\":3,\"round\":1,\"event\":\"access_served_source\",\"us\":4,\"relation\":0,\"binding\":[],\"tuples\":2}\n\
{\"seq\":4,\"round\":1,\"event\":\"round_end\",\"us\":9}\n";
        let summary = check(trace).unwrap();
        assert!(summary.contains("4 events"), "{summary}");
        assert!(summary.contains("1 accesses requested"), "{summary}");
    }

    #[test]
    fn violations_fail() {
        // Unresolved request.
        let unresolved = "{\"seq\":1,\"round\":1,\"event\":\"access_requested\",\"us\":0}\n";
        assert!(check(unresolved).unwrap_err().contains("reconcile"));
        // Non-increasing sequence ids.
        let stuck = "\
{\"seq\":2,\"round\":1,\"event\":\"round_start\",\"us\":0}\n\
{\"seq\":2,\"round\":1,\"event\":\"round_end\",\"us\":0}\n";
        assert!(check(stuck).unwrap_err().contains("strictly above"));
        // Unknown event name and missing fields.
        assert!(
            check("{\"seq\":1,\"round\":1,\"event\":\"nope\",\"us\":0}\n")
                .unwrap_err()
                .contains("unknown event")
        );
        assert!(check("{\"seq\":1,\"event\":\"round_end\",\"us\":0}\n")
            .unwrap_err()
            .contains("round"));
        assert!(check("").unwrap_err().contains("empty trace"));
    }

    #[test]
    fn monotone_deltas_flag() {
        let shrinking = "\
{\"seq\":1,\"round\":1,\"event\":\"delta_round\",\"us\":0,\"delta\":3}\n\
{\"seq\":2,\"round\":2,\"event\":\"delta_round\",\"us\":0,\"delta\":1}\n\
{\"seq\":3,\"round\":2,\"event\":\"fixpoint_reached\",\"us\":0}\n\
{\"seq\":4,\"round\":3,\"event\":\"delta_round\",\"us\":0,\"delta\":2}\n";
        // Non-increasing within each segment; the post-fixpoint rebound to 2
        // starts a fresh segment and is fine.
        let summary = check_with(shrinking, true).unwrap();
        assert!(summary.contains("3 delta round(s)"), "{summary}");

        let growing = "\
{\"seq\":1,\"round\":1,\"event\":\"delta_round\",\"us\":0,\"delta\":1}\n\
{\"seq\":2,\"round\":2,\"event\":\"delta_round\",\"us\":0,\"delta\":4}\n";
        let err = check_with(growing, true).unwrap_err();
        assert!(err.contains("delta grew from 1 to 4"), "{err}");
        // Without the flag the same trace passes: growth is workload-legal.
        assert!(check_with(growing, false).is_ok());

        // The flag demands evidence: a trace with no delta_round fails.
        let silent = "{\"seq\":1,\"round\":1,\"event\":\"round_start\",\"us\":0}\n";
        let err = check_with(silent, true).unwrap_err();
        assert!(err.contains("no delta_round"), "{err}");

        // A delta_round without its payload is malformed either way.
        let bare = "{\"seq\":1,\"round\":1,\"event\":\"delta_round\",\"us\":0}\n";
        assert!(check(bare).unwrap_err().contains("delta"));
    }

    #[test]
    fn request_lifecycle_reconciles() {
        let served = "\
{\"seq\":1,\"round\":0,\"event\":\"request_accepted\",\"us\":0,\"tenant\":\"a\",\"verb\":\"ask\"}\n\
{\"seq\":2,\"round\":0,\"event\":\"request_accepted\",\"us\":0,\"tenant\":\"b\",\"verb\":\"ask\"}\n\
{\"seq\":3,\"round\":0,\"event\":\"request_rejected\",\"us\":0,\"tenant\":\"b\",\"verb\":\"ask\",\"retry_after_ms\":25}\n\
{\"seq\":4,\"round\":0,\"event\":\"request_completed\",\"us\":12,\"tenant\":\"a\",\"verb\":\"ask\"}\n";
        let summary = check_full(served, false, true).unwrap();
        assert!(
            summary.contains("2 request(s) accepted (1 completed, 1 rejected, 0 in flight)"),
            "{summary}"
        );

        // An accepted request with no terminal event: fine by default
        // (it was in flight when the trace ended), fatal under --drained.
        let in_flight = "\
{\"seq\":1,\"round\":0,\"event\":\"request_accepted\",\"us\":0,\"tenant\":\"a\",\"verb\":\"ask\"}\n";
        let summary = check(in_flight).unwrap();
        assert!(summary.contains("1 in flight"), "{summary}");
        let err = check_full(in_flight, false, true).unwrap_err();
        assert!(err.contains("--drained"), "{err}");

        // More terminal events than acceptances is corrupt either way.
        let excess = "\
{\"seq\":1,\"round\":0,\"event\":\"request_completed\",\"us\":3,\"tenant\":\"a\",\"verb\":\"ask\"}\n";
        let err = check(excess).unwrap_err();
        assert!(err.contains("request lifecycle"), "{err}");
    }
}
