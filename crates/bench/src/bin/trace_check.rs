//! Validates a JSON-lines trace file produced by the CLI's `--trace=<path>`
//! flag (a `toorjah_obs::WriterSink` export).
//!
//! Checks, per line and across the stream:
//!
//! 1. every line is one JSON object with numeric `seq`, `round` and `us`
//!    fields and a string `event` field naming a known event kind;
//! 2. sequence ids are strictly increasing (the sink preserves the
//!    emitter's deterministic order);
//! 3. the access lifecycle reconciles: the number of `access_requested`
//!    events equals `access_served_cache + access_served_source +
//!    access_pruned + access_failed` — every requested access is
//!    terminally resolved exactly once.
//!
//! Usage: `cargo run -p toorjah-bench --bin trace_check <trace.jsonl>`.
//! Prints a one-line summary and exits non-zero on any violation.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The event names the trace taxonomy can emit (`EventKind::name`).
const KNOWN_EVENTS: [&str; 11] = [
    "round_start",
    "round_end",
    "access_requested",
    "access_dispatched",
    "access_served_cache",
    "access_served_source",
    "access_pruned",
    "access_failed",
    "cache_evict",
    "batch_coalesced",
    "fixpoint_reached",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: trace_check <trace.jsonl>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&text) {
        Ok(summary) => {
            println!("ok: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("FAIL: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn check(text: &str) -> Result<String, String> {
    let mut last_seq = 0u64;
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut lines = 0usize;
    for (no, line) in text.lines().enumerate() {
        let no = no + 1;
        if line.trim().is_empty() {
            return Err(format!("line {no}: empty line in the stream"));
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(format!("line {no}: not a JSON object: {line}"));
        }
        let seq = number_field(line, "seq").ok_or(format!("line {no}: no numeric \"seq\""))?;
        number_field(line, "round").ok_or(format!("line {no}: no numeric \"round\""))?;
        number_field(line, "us").ok_or(format!("line {no}: no numeric \"us\""))?;
        let event = string_field(line, "event").ok_or(format!("line {no}: no string \"event\""))?;
        if !KNOWN_EVENTS.contains(&event.as_str()) {
            return Err(format!("line {no}: unknown event {event:?}"));
        }
        if seq <= last_seq {
            return Err(format!(
                "line {no}: sequence id {seq} not strictly above {last_seq}"
            ));
        }
        last_seq = seq;
        *counts.entry(event).or_default() += 1;
        lines += 1;
    }
    if lines == 0 {
        return Err("empty trace".into());
    }

    let count = |name: &str| counts.get(name).copied().unwrap_or(0);
    let requested = count("access_requested");
    let terminal = count("access_served_cache")
        + count("access_served_source")
        + count("access_pruned")
        + count("access_failed");
    if requested != terminal {
        return Err(format!(
            "lifecycle does not reconcile: {requested} requested vs {terminal} \
             terminal events ({counts:?})"
        ));
    }
    Ok(format!(
        "{lines} events, {requested} accesses requested and terminally resolved \
         ({} from source, {} from cache, {} pruned, {} failed)",
        count("access_served_source"),
        count("access_served_cache"),
        count("access_pruned"),
        count("access_failed"),
    ))
}

/// The value of `"key": <integer>` (first occurrence).
fn number_field(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// The value of `"key": "..."` (first occurrence, minimal unescaping).
fn string_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let n = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(n)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_reconciling_trace_passes() {
        let trace = "\
{\"seq\":1,\"round\":1,\"event\":\"round_start\",\"us\":0,\"requested\":1}\n\
{\"seq\":2,\"round\":1,\"event\":\"access_requested\",\"us\":0,\"relation\":0,\"binding\":[]}\n\
{\"seq\":3,\"round\":1,\"event\":\"access_served_source\",\"us\":4,\"relation\":0,\"binding\":[],\"tuples\":2}\n\
{\"seq\":4,\"round\":1,\"event\":\"round_end\",\"us\":9}\n";
        let summary = check(trace).unwrap();
        assert!(summary.contains("4 events"), "{summary}");
        assert!(summary.contains("1 accesses requested"), "{summary}");
    }

    #[test]
    fn violations_fail() {
        // Unresolved request.
        let unresolved = "{\"seq\":1,\"round\":1,\"event\":\"access_requested\",\"us\":0}\n";
        assert!(check(unresolved).unwrap_err().contains("reconcile"));
        // Non-increasing sequence ids.
        let stuck = "\
{\"seq\":2,\"round\":1,\"event\":\"round_start\",\"us\":0}\n\
{\"seq\":2,\"round\":1,\"event\":\"round_end\",\"us\":0}\n";
        assert!(check(stuck).unwrap_err().contains("strictly above"));
        // Unknown event name and missing fields.
        assert!(
            check("{\"seq\":1,\"round\":1,\"event\":\"nope\",\"us\":0}\n")
                .unwrap_err()
                .contains("unknown event")
        );
        assert!(check("{\"seq\":1,\"event\":\"round_end\",\"us\":0}\n")
            .unwrap_err()
            .contains("round"));
        assert!(check("").unwrap_err().contains("empty trace"));
    }
}
