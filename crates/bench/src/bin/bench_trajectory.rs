//! Validates the committed `BENCH_<area>.json` performance trajectory.
//!
//! The vendored criterion harness persists each bench target's medians to
//! `BENCH_<area>.json` at the workspace root (committed per PR) and, in
//! smoke mode, to `target/bench-smoke/` (freshly produced by the CI smoke
//! steps, never committed). This validator cross-checks the two:
//!
//! 1. every required area has a committed file that parses, names its area,
//!    and lists at least one benchmark with a positive `median_ns`;
//! 2. when a smoke snapshot exists for an area, the committed file's
//!    benchmark *name set* matches it — a committed file that still lists
//!    renamed or deleted benchmarks (or misses new ones) is stale and fails
//!    the build. Medians are not compared: smoke numbers are unmeasured.
//!
//! Usage: `cargo run -p toorjah-bench --bin bench_trajectory [--root DIR]`.
//! Exits non-zero with a per-file report on any failure.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The bench areas every PR must keep a trajectory snapshot for.
const REQUIRED_AREAS: [&str; 9] = [
    "cache",
    "dispatch",
    "relevance",
    "execution",
    "datalog",
    "obs",
    "kernel",
    "server",
    "magic",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        workspace_root().unwrap_or_else(|| {
            eprintln!("cannot locate the workspace root (no Cargo.lock upward of cwd)");
            std::process::exit(1);
        })
    });

    let mut failures = 0usize;
    for area in REQUIRED_AREAS {
        match check_area(&root, area) {
            Ok(report) => println!("ok: {report}"),
            Err(e) => {
                eprintln!("FAIL [{area}]: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} of {} trajectory files failed",
            REQUIRED_AREAS.len()
        );
        ExitCode::FAILURE
    } else {
        println!("bench trajectory valid: {} areas", REQUIRED_AREAS.len());
        ExitCode::SUCCESS
    }
}

fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn check_area(root: &Path, area: &str) -> Result<String, String> {
    let committed_path = root.join(format!("BENCH_{area}.json"));
    let text = std::fs::read_to_string(&committed_path)
        .map_err(|e| format!("missing committed {}: {e}", committed_path.display()))?;
    let snapshot = parse_snapshot(&text)
        .map_err(|e| format!("malformed {}: {e}", committed_path.display()))?;
    if snapshot.area != area {
        return Err(format!(
            "area field is {:?}, expected {area:?}",
            snapshot.area
        ));
    }
    if snapshot.benchmarks.is_empty() {
        return Err("no benchmarks recorded".into());
    }
    for (name, median_ns) in &snapshot.benchmarks {
        if name.is_empty() {
            return Err("empty benchmark name".into());
        }
        if *median_ns == 0 {
            return Err(format!("benchmark {name:?} has median_ns 0 (unmeasured?)"));
        }
    }

    // The kernel area carries a speedup guard: the committed medians must
    // show the delta-join evaluator at least 2× ahead of the full-join
    // reference on the 120-chain transitive closure. A refactor that quietly
    // loses the semi-naive advantage fails here, not in a reviewer's head.
    if area == "kernel" {
        let median = |wanted: &str| {
            snapshot
                .benchmarks
                .iter()
                .find(|(n, _)| n == wanted)
                .map(|&(_, m)| m)
                .ok_or_else(|| format!("missing benchmark {wanted:?}"))
        };
        let semi = median("seminaive_transitive_closure_120")?;
        let full = median("fulljoin_transitive_closure_120")?;
        if full < semi.saturating_mul(2) {
            return Err(format!(
                "semi-naive speedup guard: full-join median {full} ns is \
                 under 2x the delta-join median {semi} ns"
            ));
        }
    }

    // The magic area carries the demand-driven speedup guard: on the
    // bound-reachability chain-120 workload, full evaluation plus answer
    // filtering must stay at least 5× slower than the magic-sets rewrite —
    // the headline claim of the `Magic` pruning tier.
    if area == "magic" {
        let median = |wanted: &str| {
            snapshot
                .benchmarks
                .iter()
                .find(|(n, _)| n == wanted)
                .map(|&(_, m)| m)
                .ok_or_else(|| format!("missing benchmark {wanted:?}"))
        };
        let runtime = median("runtime_bound_closure_120")?;
        let magic = median("magic_bound_closure_120")?;
        if runtime < magic.saturating_mul(5) {
            return Err(format!(
                "magic-sets speedup guard: full-evaluation median {runtime} ns \
                 is under 5x the demand-driven median {magic} ns"
            ));
        }
    }

    // Staleness: compare the name set against a fresh smoke snapshot, when
    // the smoke steps produced one.
    let smoke_path = root
        .join("target")
        .join("bench-smoke")
        .join(format!("BENCH_{area}.json"));
    let freshness = match std::fs::read_to_string(&smoke_path) {
        Err(_) => "no smoke snapshot to cross-check".to_string(),
        Ok(smoke_text) => {
            let smoke = parse_snapshot(&smoke_text)
                .map_err(|e| format!("malformed smoke snapshot {}: {e}", smoke_path.display()))?;
            let committed: BTreeSet<&str> = snapshot
                .benchmarks
                .iter()
                .map(|(n, _)| n.as_str())
                .collect();
            let fresh: BTreeSet<&str> = smoke.benchmarks.iter().map(|(n, _)| n.as_str()).collect();
            if committed != fresh {
                let missing: Vec<&&str> = fresh.difference(&committed).collect();
                let extra: Vec<&&str> = committed.difference(&fresh).collect();
                return Err(format!(
                    "stale: committed names diverge from the current bench target \
                     (missing {missing:?}, stale {extra:?}) — re-run \
                     `cargo bench -p toorjah-bench --bench {area}` and commit the result"
                ));
            }
            "names match smoke snapshot".to_string()
        }
    };
    Ok(format!(
        "BENCH_{area}.json: {} benchmarks, {freshness}",
        snapshot.benchmarks.len()
    ))
}

struct Snapshot {
    area: String,
    benchmarks: Vec<(String, u64)>,
}

/// Hand-rolled parser for the snapshot shape `{"area": "...",
/// "benchmarks": [{"name": "...", "median_ns": N}, ...]}` — the workspace
/// has no JSON dependency, and the emitter (vendored criterion) produces
/// exactly this shape.
fn parse_snapshot(text: &str) -> Result<Snapshot, String> {
    let area = string_field(text, "area").ok_or("missing \"area\" string field")?;
    let list_start = text
        .find("\"benchmarks\"")
        .ok_or("missing \"benchmarks\" field")?;
    let open = text[list_start..]
        .find('[')
        .ok_or("\"benchmarks\" is not an array")?
        + list_start;
    let close = text[open..]
        .rfind(']')
        .ok_or("unterminated \"benchmarks\" array")?
        + open;
    let body = &text[open + 1..close];

    let mut benchmarks = Vec::new();
    for entry in split_objects(body)? {
        let name = string_field(&entry, "name")
            .ok_or_else(|| format!("entry without \"name\": {entry}"))?;
        let median = number_field(&entry, "median_ns")
            .ok_or_else(|| format!("entry without numeric \"median_ns\": {entry}"))?;
        benchmarks.push((name, median));
    }
    Ok(Snapshot { area, benchmarks })
}

/// Splits the inside of a JSON array into its top-level `{...}` objects.
fn split_objects(body: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.checked_sub(1).ok_or("unbalanced braces")?;
                if depth == 0 {
                    let s = start.take().ok_or("unbalanced braces")?;
                    out.push(body[s..=i].to_string());
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        return Err("unterminated object or string".into());
    }
    Ok(out)
}

/// The value of `"key": "..."`, unescaping the minimal JSON escapes the
/// emitter produces.
fn string_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let n = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(n)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// The value of `"key": <integer>`.
fn number_field(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}
