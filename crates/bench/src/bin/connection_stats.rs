//! §VI statistic — the fraction of synthetic queries that are *connection
//! queries* (the restricted class handled by prior work [Li & Chang 2001]).
//!
//! The paper: "approximately 70% of our 10,000 synthetically generated
//! queries are not connection queries (and, for instance, also the
//! non-synthetic query q3 is not a connection query)".
//!
//! Run: `cargo run --release -p toorjah-bench --bin connection_stats [--full]`

use toorjah_bench::Cli;
use toorjah_query::is_connection_query;
use toorjah_workload::random::seeded_rng;
use toorjah_workload::{
    paper_queries, publication_schema, random_query, random_schema, RandomParams,
};

fn main() {
    let cli = Cli::parse();
    let (schema_count, query_count) = if cli.full {
        (cli.schemas.unwrap_or(100), cli.queries.unwrap_or(100))
    } else {
        (cli.schemas.unwrap_or(50), cli.queries.unwrap_or(50))
    };
    let params = RandomParams::paper();

    let mut total = 0usize;
    let mut connection = 0usize;
    for schema_idx in 0..schema_count {
        let mut rng = seeded_rng(cli.seed ^ (schema_idx as u64).wrapping_mul(0x8525_29C5));
        let generated = random_schema(&mut rng, &params);
        for _ in 0..query_count {
            let Some(query) = random_query(&mut rng, &generated, &params) else {
                break;
            };
            total += 1;
            if is_connection_query(&query, &generated.schema) {
                connection += 1;
            }
        }
    }

    let not_connection = 100.0 * (1.0 - connection as f64 / total.max(1) as f64);
    println!("§VI — connection-query statistics over {total} synthetic queries");
    println!(
        "connection queries: {connection} ({:.1}%); NOT connection queries: {:.1}%",
        100.0 * connection as f64 / total.max(1) as f64,
        not_connection,
    );
    println!("paper: approximately 70% are not connection queries\n");

    // The hand-written queries.
    let schema = publication_schema();
    for (name, q) in paper_queries(&schema) {
        println!(
            "{name} is {}a connection query (paper: q3 is not)",
            if is_connection_query(&q, &schema) {
                ""
            } else {
                "not "
            }
        );
    }
}
