//! §IV/§V heuristic study — the paper notes that when several source
//! orderings are possible, further optimizations based on the choice are
//! "by their nature, highly depending on the instance" and that "their
//! impact […] can only be relatively small". This experiment quantifies
//! that claim: the same random workload is executed with the join-count
//! heuristic (the paper's suggestion: sources with more joins first, to
//! fail faster) and with a plain deterministic order, comparing accesses.
//!
//! Run: `cargo run --release -p toorjah-bench --bin orderings [--seed N]`

use toorjah_bench::{Cli, MinMaxAvg};
use toorjah_core::{CoreError, OrderingHeuristic, Planner};
use toorjah_engine::{execute_plan, ExecOptions, InstanceSource};
use toorjah_workload::random::seeded_rng;
use toorjah_workload::{random_instance, random_query, random_schema, RandomParams};

fn main() {
    let cli = Cli::parse();
    let schema_count = cli.schemas.unwrap_or(15);
    let query_count = cli.queries.unwrap_or(15);
    let params = RandomParams {
        domains: 10,
        domain_values: (20, 60),
        tuples: (10, 1_000),
        input_probability: 0.45,
        join_probability: 0.65,
        constant_probability: 0.3,
        ..RandomParams::paper()
    };
    let budget = 150_000usize;

    let mut join_first = MinMaxAvg::default();
    let mut id_order = MinMaxAvg::default();
    let mut differing = 0usize;
    let mut measured = 0usize;

    for schema_idx in 0..schema_count {
        let mut rng = seeded_rng(cli.seed ^ (schema_idx as u64).wrapping_mul(0xB5297A4D));
        let generated = random_schema(&mut rng, &params);
        let instance = random_instance(&mut rng, &generated, &params);
        let provider = InstanceSource::new(generated.schema.clone(), instance);

        for _ in 0..query_count {
            let Some(query) = random_query(&mut rng, &generated, &params) else {
                break;
            };
            let plans: Vec<_> = [
                OrderingHeuristic::JoinCountDesc,
                OrderingHeuristic::SourceIdAsc,
            ]
            .into_iter()
            .map(|heuristic| {
                let planner = Planner {
                    heuristic,
                    ..Planner::default()
                };
                planner.plan(&query, &generated.schema)
            })
            .collect();
            let (Ok(a), Ok(b)) = (&plans[0], &plans[1]) else {
                if matches!(plans[0], Err(CoreError::NotAnswerable { .. })) {
                    continue;
                }
                panic!("planning failed");
            };
            let opts = ExecOptions {
                max_accesses: budget,
                ..ExecOptions::default()
            };
            let (Ok(ra), Ok(rb)) = (
                execute_plan(&a.plan, &provider, opts),
                execute_plan(&b.plan, &provider, opts),
            ) else {
                continue; // budget blow-up: skip
            };
            // Sanity: the heuristic must never change the answers.
            let mut x = ra.answers.clone();
            let mut y = rb.answers.clone();
            x.sort();
            y.sort();
            assert_eq!(x, y, "ordering heuristics must not change answers");
            join_first.push(ra.stats.total_accesses as f64);
            id_order.push(rb.stats.total_accesses as f64);
            if ra.stats.total_accesses != rb.stats.total_accesses {
                differing += 1;
            }
            measured += 1;
        }
        eprint!("\rschema {}/{schema_count}…", schema_idx + 1);
    }
    eprintln!();

    println!("§IV heuristic study over {measured} queries");
    println!(
        "{:<26}{:>12}{:>12}{:>12}",
        "ordering", "min acc.", "max acc.", "avg acc."
    );
    println!(
        "{:<26}{:>12.0}{:>12.0}{:>12.1}",
        "join-count first (paper)",
        join_first.min(),
        join_first.max(),
        join_first.avg()
    );
    println!(
        "{:<26}{:>12.0}{:>12.0}{:>12.1}",
        "source-id order",
        id_order.min(),
        id_order.max(),
        id_order.avg()
    );
    let delta = 100.0 * (id_order.avg() - join_first.avg()) / id_order.avg().max(1.0);
    println!(
        "\nqueries with differing access counts: {differing}/{measured}; \
         join-count heuristic saves {delta:.2}% on average\n\
         (paper: the impact of ordering choices \"can only be relatively small\")"
    );
}
