//! Fig. 10 — experiments on synthetic queries: minimum, maximum and average
//! number of d-graph arcs, deleted arcs and strong arcs, plus the
//! percentage of accesses saved by the optimization.
//!
//! The paper runs 100 schemata × 100 queries (5–10 relations of arity 1–5;
//! 2–6 atoms with at least one join; instances of 10–10,000 tuples),
//! excluding non-answerable queries and queries over free relations only.
//! Paper results: arcs 10/66/20.54, deleted 4/65/16.23, strong 0/7/1.89,
//! saved accesses 9.10%/99.99%/81.02%.
//!
//! Run: `cargo run --release -p toorjah-bench --bin fig10 [--full] [--seed N]`
//! The default is scaled down (20×20, instances ≤ 2,000 tuples) to finish in
//! about a minute; `--full` uses the paper's counts.

use toorjah_bench::{Cli, MinMaxAvg};
use toorjah_core::{plan_query, CoreError, Planner};
use toorjah_engine::{execute_plan, naive_evaluate, ExecOptions, InstanceSource, NaiveOptions};
use toorjah_workload::random::seeded_rng;
use toorjah_workload::{random_instance, random_query, random_schema, RandomParams};

fn main() {
    let cli = Cli::parse();
    let (schema_count, query_count, params, budget) = if cli.full {
        (
            cli.schemas.unwrap_or(100),
            cli.queries.unwrap_or(100),
            RandomParams {
                domains: 10,
                ..RandomParams::paper()
            },
            1_000_000usize,
        )
    } else {
        (
            cli.schemas.unwrap_or(20),
            cli.queries.unwrap_or(20),
            RandomParams {
                domains: 10,
                domain_values: (20, 60),
                tuples: (10, 1_000),
                input_probability: 0.45,
                join_probability: 0.65,
                constant_probability: 0.3,
                ..RandomParams::paper()
            },
            150_000usize,
        )
    };

    let mut arcs = MinMaxAvg::default();
    let mut deleted = MinMaxAvg::default();
    let mut strong = MinMaxAvg::default();
    let mut saved = MinMaxAvg::default();
    // Ablation: accesses saved with the strong-arc machinery disabled
    // (dead-end pruning only), isolating the contribution of §III's join
    // domination.
    let mut saved_ablated = MinMaxAvg::default();
    let mut skipped_non_answerable = 0usize;
    let mut skipped_free_only = 0usize;
    let mut skipped_budget = 0usize;

    for schema_idx in 0..schema_count {
        let mut rng = seeded_rng(cli.seed ^ (schema_idx as u64).wrapping_mul(0x9E37_79B9));
        let generated = random_schema(&mut rng, &params);
        let instance = random_instance(&mut rng, &generated, &params);
        let provider = InstanceSource::new(generated.schema.clone(), instance);

        let mut produced = 0;
        while produced < query_count {
            let Some(query) = random_query(&mut rng, &generated, &params) else {
                break;
            };
            produced += 1;

            // Exclusion 1: queries over free relations only.
            let all_free = query
                .relations()
                .iter()
                .all(|&r| generated.schema.relation(r).is_free());
            if all_free {
                skipped_free_only += 1;
                continue;
            }
            // Exclusion 2: non-answerable queries.
            let planned = match plan_query(&query, &generated.schema) {
                Ok(p) => p,
                Err(CoreError::NotAnswerable { .. }) => {
                    skipped_non_answerable += 1;
                    continue;
                }
                Err(e) => panic!("planning failed: {e}"),
            };

            arcs.push(planned.optimized.graph().arcs().len() as f64);
            deleted.push(planned.optimized.deleted_count() as f64);
            strong.push(planned.optimized.strong_count() as f64);

            let naive_opts = NaiveOptions {
                max_accesses: budget,
                ..NaiveOptions::default()
            };
            let exec_opts = ExecOptions {
                max_accesses: budget,
                ..ExecOptions::default()
            };
            let naive = naive_evaluate(&query, &generated.schema, &provider, naive_opts);
            let optimized = execute_plan(&planned.plan, &provider, exec_opts);
            let ablated_planner = Planner {
                strong_arcs: false,
                ..Planner::default()
            };
            let ablated = ablated_planner
                .plan(&query, &generated.schema)
                .ok()
                .and_then(|p| execute_plan(&p.plan, &provider, exec_opts).ok());
            match (naive, optimized) {
                (Ok(n), Ok(o)) => {
                    if n.stats.total_accesses > 0 {
                        saved.push(
                            100.0
                                * (1.0
                                    - o.stats.total_accesses as f64
                                        / n.stats.total_accesses as f64),
                        );
                        if let Some(a) = ablated {
                            saved_ablated.push(
                                100.0
                                    * (1.0
                                        - a.stats.total_accesses as f64
                                            / n.stats.total_accesses as f64),
                            );
                        }
                    }
                }
                _ => skipped_budget += 1,
            }
        }
        eprint!("\rschema {}/{schema_count}…", schema_idx + 1);
    }
    eprintln!();

    println!(
        "Fig. 10 — experiments on synthetic queries ({} queries measured;",
        arcs.count()
    );
    println!(
        "excluded: {skipped_non_answerable} non-answerable, {skipped_free_only} free-only, {skipped_budget} over the {budget}-access budget)\n"
    );
    println!(
        "{:<18}{:>10}{:>10}{:>10}    (paper: min/max/avg)",
        "", "min", "max", "avg"
    );
    println!(
        "{:<18}{:>10.0}{:>10.0}{:>10.2}    (10 / 66 / 20.54)",
        "arcs",
        arcs.min(),
        arcs.max(),
        arcs.avg()
    );
    println!(
        "{:<18}{:>10.0}{:>10.0}{:>10.2}    (4 / 65 / 16.23)",
        "deleted arcs",
        deleted.min(),
        deleted.max(),
        deleted.avg()
    );
    println!(
        "{:<18}{:>10.0}{:>10.0}{:>10.2}    (0 / 7 / 1.89)",
        "strong arcs",
        strong.min(),
        strong.max(),
        strong.avg()
    );
    println!(
        "{:<18}{:>9.2}%{:>9.2}%{:>9.2}%    (9.10% / 99.99% / 81.02%)",
        "saved accesses",
        saved.min(),
        saved.max(),
        saved.avg()
    );
    println!(
        "{:<18}{:>9.2}%{:>9.2}%{:>9.2}%    (ablation: no strong arcs)",
        "saved (ablated)",
        saved_ablated.min(),
        saved_ablated.max(),
        saved_ablated.avg()
    );
}
