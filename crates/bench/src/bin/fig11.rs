//! Fig. 11 — average query execution times by number of atoms, naive vs
//! optimized.
//!
//! The paper measured wall time under PostgreSQL on a 2008-era quad-core
//! (naive 9.3–15.5 s, optimized 0.7–1.7 s per query). Here sources are
//! simulated in memory with a configurable per-access latency (default
//! 1 ms, the dominant cost for remote sources), so the reported time is
//!
//! ```text
//! local computation (measured) + accesses × latency (accumulated virtually)
//! ```
//!
//! which preserves the paper's observation that "the number of accesses
//! heavily weighs upon the execution time".
//!
//! Run: `cargo run --release -p toorjah-bench --bin fig11 [--full] [--seed N]`

use std::time::{Duration, Instant};

use toorjah_bench::{fmt_ms, Cli, MinMaxAvg};
use toorjah_core::{plan_query, CoreError};
use toorjah_engine::{
    execute_plan, naive_evaluate, ExecOptions, InstanceSource, LatencySource, NaiveOptions,
};
use toorjah_workload::random::seeded_rng;
use toorjah_workload::{random_instance, random_query, random_schema, RandomParams};

const LATENCY: Duration = Duration::from_millis(1);

fn main() {
    let cli = Cli::parse();
    let (schema_count, queries_per_schema, params, budget) = if cli.full {
        (
            cli.schemas.unwrap_or(50),
            cli.queries.unwrap_or(40),
            RandomParams {
                domains: 10,
                ..RandomParams::paper()
            },
            1_000_000usize,
        )
    } else {
        (
            cli.schemas.unwrap_or(15),
            cli.queries.unwrap_or(20),
            RandomParams {
                domains: 10,
                domain_values: (20, 60),
                tuples: (10, 1_000),
                ..RandomParams::paper()
            },
            120_000usize,
        )
    };

    // naive/optimized simulated time per atom count 2..=6.
    let mut naive_times: Vec<MinMaxAvg> = (0..5).map(|_| MinMaxAvg::default()).collect();
    let mut opt_times: Vec<MinMaxAvg> = (0..5).map(|_| MinMaxAvg::default()).collect();

    for schema_idx in 0..schema_count {
        let mut rng = seeded_rng(cli.seed ^ (schema_idx as u64).wrapping_mul(0xC2B2_AE35));
        let generated = random_schema(&mut rng, &params);
        let instance = random_instance(&mut rng, &generated, &params);
        let provider = LatencySource::new(
            InstanceSource::new(generated.schema.clone(), instance),
            LATENCY,
        );

        for _ in 0..queries_per_schema {
            let Some(query) = random_query(&mut rng, &generated, &params) else {
                break;
            };
            let atoms = query.atoms().len();
            if !(2..=6).contains(&atoms) {
                continue;
            }
            let all_free = query
                .relations()
                .iter()
                .all(|&r| generated.schema.relation(r).is_free());
            if all_free {
                continue;
            }
            let planned = match plan_query(&query, &generated.schema) {
                Ok(p) => p,
                Err(CoreError::NotAnswerable { .. }) => continue,
                Err(e) => panic!("planning failed: {e}"),
            };

            provider.reset_cost();
            let wall = Instant::now();
            let naive = naive_evaluate(
                &query,
                &generated.schema,
                &provider,
                NaiveOptions {
                    max_accesses: budget,
                    ..NaiveOptions::default()
                },
            );
            let naive_time = wall.elapsed() + provider.simulated_cost();

            provider.reset_cost();
            let wall = Instant::now();
            let optimized = execute_plan(
                &planned.plan,
                &provider,
                ExecOptions {
                    max_accesses: budget,
                    ..ExecOptions::default()
                },
            );
            let opt_time = wall.elapsed() + provider.simulated_cost();

            if naive.is_ok() && optimized.is_ok() {
                naive_times[atoms - 2].push(naive_time.as_secs_f64() * 1000.0);
                opt_times[atoms - 2].push(opt_time.as_secs_f64() * 1000.0);
            }
        }
        eprint!("\rschema {}/{schema_count}…", schema_idx + 1);
    }
    eprintln!();

    println!(
        "Fig. 11 — average execution times by atom count ({} per-access latency)\n",
        fmt_ms(LATENCY)
    );
    println!(
        "{:<8}{:>14}{:>14}{:>10}    (paper naive → opt)",
        "atoms", "naive", "optimized", "queries"
    );
    let paper = [
        "9310 → 684",
        "12161 → 1732",
        "10198 → 959",
        "14879 → 1134",
        "15474 → 1247",
    ];
    for (i, label) in (2..=6).enumerate() {
        println!(
            "{:<8}{:>11.0} ms{:>11.0} ms{:>10}    ({} ms)",
            label,
            naive_times[i].avg(),
            opt_times[i].avg(),
            naive_times[i].count(),
            paper[i],
        );
    }
}
