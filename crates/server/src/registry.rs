//! The prepared-statement registry: plan each distinct statement once,
//! share the plan across every tenant and connection.
//!
//! Plans depend only on statement text and schema — never on data or on
//! who is asking — so the daemon keys its registry by *normalized*
//! statement text (whitespace runs collapsed) and hands out
//! `Arc<Prepared>` clones: the `Prepared` is `Send + Sync` and
//! re-executable, so eight tenants asking the same statement share one
//! plan and pay only the execution phase each.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use toorjah_system::{Prepared, Statement, Toorjah, ToorjahError};

/// Statement-text normalization: trims and collapses internal whitespace
/// runs to single spaces, so formatting differences don't split the
/// registry (the parser is whitespace-insensitive anyway).
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut pending_space = false;
    for c in text.trim().chars() {
        if c.is_whitespace() {
            pending_space = true;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push(c);
        }
    }
    out
}

/// The registry: normalized statement text → shared plan.
pub struct StatementRegistry {
    statements: Mutex<HashMap<String, Arc<Prepared>>>,
}

impl StatementRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        StatementRegistry {
            statements: Mutex::new(HashMap::new()),
        }
    }

    /// The plan for `text`, planning it against `system` on first sight.
    /// The boolean is `true` when the registry already held the plan.
    pub fn get_or_prepare(
        &self,
        system: &Toorjah,
        text: &str,
    ) -> Result<(Arc<Prepared>, bool), ToorjahError> {
        let key = normalize(text);
        if let Some(prepared) = self
            .statements
            .lock()
            .expect("statement registry mutex poisoned")
            .get(&key)
        {
            return Ok((Arc::clone(prepared), true));
        }
        // Plan outside the lock: planning is pure and idempotent, so two
        // racing first sights both plan and one insert wins — cheaper than
        // holding the registry across the planner.
        let statement = Statement::parse(&key, system.schema())?;
        let prepared = Arc::new(system.prepare(&statement)?);
        let mut statements = self
            .statements
            .lock()
            .expect("statement registry mutex poisoned");
        let entry = statements
            .entry(key)
            .or_insert_with(|| Arc::clone(&prepared));
        Ok((Arc::clone(entry), false))
    }

    /// How many distinct statements have been prepared.
    pub fn len(&self) -> usize {
        self.statements
            .lock()
            .expect("statement registry mutex poisoned")
            .len()
    }

    /// Whether nothing has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for StatementRegistry {
    fn default() -> Self {
        StatementRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_catalog::{tuple, Instance, Schema};
    use toorjah_engine::InstanceSource;

    fn system() -> Toorjah {
        let schema = Schema::parse("r1^io(A, B)").unwrap();
        let db = Instance::with_data(&schema, [("r1", vec![tuple!["a", "b1"]])]).unwrap();
        Toorjah::builder(InstanceSource::new(schema, db)).build()
    }

    #[test]
    fn normalization_collapses_whitespace() {
        assert_eq!(
            normalize("  q(B)  <-\n\tr1('a',  B) "),
            "q(B) <- r1('a', B)"
        );
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn equivalent_texts_share_one_plan() {
        let system = system();
        let registry = StatementRegistry::new();
        let (first, cached) = registry
            .get_or_prepare(&system, "q(B) <- r1('a', B)")
            .unwrap();
        assert!(!cached);
        let (second, cached) = registry
            .get_or_prepare(&system, "q(B)   <-\n r1('a', B)")
            .unwrap();
        assert!(cached);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn planning_errors_surface_and_cache_nothing() {
        let system = system();
        let registry = StatementRegistry::new();
        assert!(registry.get_or_prepare(&system, "not a statement").is_err());
        assert!(registry.is_empty());
    }
}
