//! A minimal blocking wire client: one connection, pipelined request ids,
//! line-in/line-out. Used by the load tests, the CI smoke step and the
//! `toorjah_client` binary; applications wanting richer handling can speak
//! the line protocol directly (see DESIGN.md §10).

use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::push_json_string;

/// A blocking client over one TCP connection.
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    tenant: String,
    next_id: i64,
}

impl WireClient {
    /// Connects to `addr` as `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        Ok(WireClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            tenant: tenant.to_string(),
            next_id: 0,
        })
    }

    /// The tenant this client sends as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Sends a raw request line (no trailing newline) and returns the raw
    /// response line.
    pub fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while reply.ends_with(['\n', '\r']) {
            reply.pop();
        }
        Ok(reply)
    }

    fn request(&mut self, verb: &str, query: Option<&str>) -> std::io::Result<String> {
        self.next_id += 1;
        let mut line = format!("{{\"id\":{},\"verb\":\"{verb}\",\"tenant\":", self.next_id);
        push_json_string(&mut line, &self.tenant);
        if let Some(query) = query {
            line.push_str(",\"query\":");
            push_json_string(&mut line, query);
        }
        line.push('}');
        self.round_trip(&line)
    }

    /// Plans `query` into the server's statement registry.
    pub fn prepare(&mut self, query: &str) -> std::io::Result<String> {
        self.request("prepare", Some(query))
    }

    /// Executes `query` through the statement registry (plans on first
    /// sight), charged against this tenant's budget.
    pub fn execute(&mut self, query: &str) -> std::io::Result<String> {
        self.request("execute", Some(query))
    }

    /// One-shot parse + plan + execute, charged against this tenant's
    /// budget.
    pub fn ask(&mut self, query: &str) -> std::io::Result<String> {
        self.request("ask", Some(query))
    }

    /// The plan explanation for `query`.
    pub fn explain(&mut self, query: &str) -> std::io::Result<String> {
        self.request("explain", Some(query))
    }

    /// The shared cache's counters.
    pub fn cache_stats(&mut self) -> std::io::Result<String> {
        self.request("cache_stats", None)
    }

    /// The folded metrics report (server gauges, tenants, registry, cache).
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.request("metrics", None)
    }

    /// Asks the server to drain and stop.
    pub fn shutdown(&mut self) -> std::io::Result<String> {
        self.request("shutdown", None)
    }
}

/// Whether a response line reports success.
pub fn reply_ok(reply: &str) -> bool {
    reply.contains("\"ok\":true")
}

/// The error code of a failed response line, when present.
pub fn reply_error_code(reply: &str) -> Option<&str> {
    let rest = reply.split("\"code\":\"").nth(1)?;
    rest.split('"').next()
}

/// The integer value of a top-level-ish `"field":N` occurrence — the wire
/// responses never repeat a numeric field name at different depths with
/// different meanings, so a textual scan suffices for tests and tooling.
pub fn reply_number(reply: &str, field: &str) -> Option<i64> {
    let needle = format!("\"{field}\":");
    let rest = &reply[reply.find(&needle)? + needle.len()..];
    let digits: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect();
    digits.parse().ok()
}

/// The `"answers":[…]` fragment of an execute/ask response, brackets
/// included — answers are sorted tuples, so equal fragments mean equal
/// answer sets.
pub fn reply_answers(reply: &str) -> Option<&str> {
    let start = reply.find("\"answers\":")? + "\"answers\":".len();
    let bytes = reply.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes[start..].iter().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&reply[start..start + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_helpers_extract_fragments() {
        let reply = r#"{"id":3,"ok":true,"verb":"execute","budget_remaining":98,"response":{"answers":[["c1"],["c2",7]],"answer_count":2}}"#;
        assert!(reply_ok(reply));
        assert_eq!(reply_error_code(reply), None);
        assert_eq!(reply_number(reply, "budget_remaining"), Some(98));
        assert_eq!(reply_answers(reply), Some("[[\"c1\"],[\"c2\",7]]"));

        let err = r#"{"id":4,"ok":false,"error":{"code":"admission_rejected","message":"busy","retry_after_ms":25}}"#;
        assert!(!reply_ok(err));
        assert_eq!(reply_error_code(err), Some("admission_rejected"));
        assert_eq!(reply_number(err, "retry_after_ms"), Some(25));
    }
}
