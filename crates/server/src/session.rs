//! Per-tenant sessions: access-budget accounting over one shared cache.
//!
//! Every tenant gets a [`Session`] — created on first request — holding its
//! access budget. The budget is the paper's access limitation made
//! operational: a tenant may cause at most `budget_limit` *performed*
//! source accesses across its whole session; cache-served lookups stay
//! free, exactly like the engine's `accesses_served_by_cache` accounting.
//! Enforcement is two-sided:
//!
//! * **before** an execution, the remaining budget rides into
//!   [`Prepared::execute_capped`](toorjah_system::Prepared::execute_capped)
//!   as the access cap, so a single statement can never overdraw mid-run
//!   (the kernel aborts atomically with `AccessBudgetExceeded` — no
//!   partial answer);
//! * **after** a successful execution, the profile's `accesses_performed`
//!   is charged against the session.
//!
//! A tenant normally drives one connection and its requests serialize on
//! that connection's line loop, making the check-then-charge sequence
//! exact. Tenants sharing a name across connections share the budget;
//! their charges interleave but each individual execution still respects
//! the remaining budget it saw at admission.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// One tenant's accounting state.
#[derive(Clone, Debug)]
pub struct SessionSnapshot {
    /// The configured budget (performed accesses allowed in total).
    pub budget_limit: usize,
    /// Performed accesses charged so far.
    pub budget_used: usize,
    /// Execution-bearing requests this tenant has had accepted.
    pub requests: u64,
}

impl SessionSnapshot {
    /// The budget still available.
    pub fn budget_remaining(&self) -> usize {
        self.budget_limit.saturating_sub(self.budget_used)
    }
}

#[derive(Debug)]
struct Session {
    budget_limit: usize,
    budget_used: usize,
    requests: u64,
}

/// The tenant registry: sessions keyed by tenant name, created lazily with
/// the registry's default budget.
#[derive(Debug)]
pub struct SessionRegistry {
    default_budget: usize,
    // BTreeMap so `metrics` renders tenants in a deterministic order.
    sessions: Mutex<BTreeMap<String, Session>>,
}

impl SessionRegistry {
    /// A registry handing every new tenant `default_budget` performed
    /// accesses.
    pub fn new(default_budget: usize) -> Self {
        SessionRegistry {
            default_budget,
            sessions: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers one accepted execution-bearing request for `tenant`
    /// (creating the session on first contact) and returns the remaining
    /// budget to ride into the execution as its access cap.
    pub fn begin(&self, tenant: &str) -> usize {
        let mut sessions = self.sessions.lock().expect("session mutex poisoned");
        let session = sessions
            .entry(tenant.to_string())
            .or_insert_with(|| Session {
                budget_limit: self.default_budget,
                budget_used: 0,
                requests: 0,
            });
        session.requests += 1;
        session.budget_limit.saturating_sub(session.budget_used)
    }

    /// Charges `performed` accesses against `tenant`'s budget and returns
    /// the remainder. Called only after a successful execution — a failed
    /// one performed accesses too, but the kernel's cap guarantees they
    /// never exceeded the remainder, and charging only observable answers
    /// keeps the accounting reconcilable against response profiles.
    pub fn charge(&self, tenant: &str, performed: usize) -> usize {
        let mut sessions = self.sessions.lock().expect("session mutex poisoned");
        let session = sessions
            .get_mut(tenant)
            .expect("charge without a begin for this tenant");
        session.budget_used = session.budget_used.saturating_add(performed);
        session.budget_limit.saturating_sub(session.budget_used)
    }

    /// The number of sessions created so far.
    pub fn len(&self) -> usize {
        self.sessions.lock().expect("session mutex poisoned").len()
    }

    /// Whether no tenant has connected yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time snapshot of every session, tenant-ordered.
    pub fn snapshot(&self) -> Vec<(String, SessionSnapshot)> {
        let sessions = self.sessions.lock().expect("session mutex poisoned");
        sessions
            .iter()
            .map(|(tenant, s)| {
                (
                    tenant.clone(),
                    SessionSnapshot {
                        budget_limit: s.budget_limit,
                        budget_used: s.budget_used,
                        requests: s.requests,
                    },
                )
            })
            .collect()
    }

    /// Renders the per-tenant block of the `metrics` response:
    /// `{"alice":{"budget_limit":…,"budget_used":…,"budget_remaining":…,"requests":…},…}`.
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (tenant, s)) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::wire::push_json_string(out, tenant);
            let _ = write!(
                out,
                ":{{\"budget_limit\":{},\"budget_used\":{},\
                 \"budget_remaining\":{},\"requests\":{}}}",
                s.budget_limit,
                s.budget_used,
                s.budget_remaining(),
                s.requests,
            );
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_per_tenant_and_monotone() {
        let registry = SessionRegistry::new(10);
        assert!(registry.is_empty());
        assert_eq!(registry.begin("alice"), 10);
        assert_eq!(registry.charge("alice", 4), 6);
        assert_eq!(registry.begin("alice"), 6);
        assert_eq!(registry.charge("alice", 6), 0);
        assert_eq!(registry.begin("alice"), 0);
        // Bob's budget is untouched by Alice's consumption.
        assert_eq!(registry.begin("bob"), 10);
        assert_eq!(registry.len(), 2);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot[0].0, "alice");
        assert_eq!(snapshot[0].1.budget_used, 10);
        assert_eq!(snapshot[0].1.requests, 3);
    }

    #[test]
    fn json_rendering_is_deterministic() {
        let registry = SessionRegistry::new(5);
        registry.begin("b");
        registry.begin("a");
        registry.charge("a", 2);
        let mut out = String::new();
        registry.write_json(&mut out);
        assert_eq!(
            out,
            "{\"a\":{\"budget_limit\":5,\"budget_used\":2,\"budget_remaining\":3,\
             \"requests\":1},\"b\":{\"budget_limit\":5,\"budget_used\":0,\
             \"budget_remaining\":5,\"requests\":1}}"
        );
    }
}
