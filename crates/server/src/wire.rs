//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request. Requests are flat
//! JSON objects (string, number, boolean or `null` values only — the
//! grammar has no nesting, so the parser rejects `{`/`[` values outright):
//!
//! ```json
//! {"id":1,"verb":"ask","tenant":"alice","query":"q(N) <- r1('a', N, Y)"}
//! ```
//!
//! * `id` — required non-negative integer, echoed verbatim in the response
//!   so clients can pipeline requests over one connection;
//! * `verb` — required: `prepare`, `execute`, `ask`, `explain`,
//!   `cache_stats`, `metrics` or `shutdown`;
//! * `tenant` — optional session name (default `"default"`); budgets are
//!   accounted per tenant;
//! * `query` — the statement text, required by the four query verbs.
//!
//! Successful responses are `{"id":N,"ok":true,"verb":"…",…}` with a
//! verb-specific payload (`execute`/`ask` embed the full
//! [`Response::to_json`](toorjah_system::Response::to_json) object under
//! `"response"`). Failures are a typed error shape, pinned byte-for-byte by
//! the golden tests:
//!
//! ```json
//! {"id":1,"ok":false,"error":{"code":"budget_exhausted","message":"…","retry_after_ms":null}}
//! ```
//!
//! `retry_after_ms` is non-null only for `admission_rejected` — the one
//! error where trying again later can succeed without anything else
//! changing.

use std::fmt::Write as _;

/// A scalar value of the flat request grammar.
#[derive(Clone, Debug, PartialEq)]
pub enum WireValue {
    /// A JSON string (escapes decoded).
    Str(String),
    /// A JSON number, kept integral (the grammar has no fractional fields).
    Num(i64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

/// A parsed request line: the flat key/value pairs in arrival order.
#[derive(Clone, Debug, Default)]
pub struct WireRequest {
    fields: Vec<(String, WireValue)>,
}

impl WireRequest {
    /// The value of `key`, when present.
    pub fn get(&self, key: &str) -> Option<&WireValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The string value of `key`, when present and a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(WireValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The integer value of `key`, when present and a number.
    pub fn num_field(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(WireValue::Num(n)) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one request line of the flat JSON grammar. Errors are the
/// `malformed_request` messages clients see verbatim.
pub fn parse_request(line: &str) -> Result<WireRequest, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut request = WireRequest::default();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            request.fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err("expected ',' or '}' after a field".to_string()),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after the request object".to_string());
    }
    Ok(request)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            _ => Err(format!("expected '{}'", want as char)),
        }
    }

    fn parse_value(&mut self) -> Result<WireValue, String> {
        match self.peek() {
            Some(b'"') => Ok(WireValue::Str(self.parse_string()?)),
            Some(b'{' | b'[') => {
                Err("nested objects and arrays are not part of the request grammar".to_string())
            }
            Some(b't') => self.parse_literal("true", WireValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", WireValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", WireValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err("expected a value".to_string()),
        }
    }

    fn parse_literal(&mut self, word: &str, value: WireValue) -> Result<WireValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}'"))
        }
    }

    fn parse_number(&mut self) -> Result<WireValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err("fractional numbers are not part of the request grammar".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i64>()
            .map(WireValue::Num)
            .map_err(|_| format!("number out of range: {text}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("expected 4 hex digits after \\u")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("\\u escape is not a scalar value")?);
                    }
                    _ => return Err("unsupported escape".to_string()),
                },
                Some(b) if b < 0x20 => {
                    return Err("unescaped control character in string".to_string())
                }
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences: the input is a
                    // &str, so continuation bytes are guaranteed well-formed.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    self.pos = start + len;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// The typed wire-error codes. The names are the wire strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not a flat JSON object of the request grammar, or a
    /// required field (`id`, `verb`) is missing or mistyped.
    MalformedRequest,
    /// The `verb` is not one of the seven the protocol defines.
    UnknownVerb,
    /// A query verb arrived without a `query` field.
    MissingQuery,
    /// Parsing, planning or executing the statement failed; the message
    /// carries the facade's error rendering.
    QueryError,
    /// The tenant's access budget cannot cover another source access. The
    /// execution was either refused up front (budget already zero) or
    /// aborted atomically mid-run — never a partial answer.
    BudgetExhausted,
    /// The admission controller is saturated (all execution slots busy and
    /// the wait queue full); retry after `retry_after_ms`.
    AdmissionRejected,
    /// The server is draining after a `shutdown` request.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire string of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedRequest => "malformed_request",
            ErrorCode::UnknownVerb => "unknown_verb",
            ErrorCode::MissingQuery => "missing_query",
            ErrorCode::QueryError => "query_error",
            ErrorCode::BudgetExhausted => "budget_exhausted",
            ErrorCode::AdmissionRejected => "admission_rejected",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

/// Renders the error response line: `id` is `null` when the request was too
/// malformed to carry one, `retry_after_ms` is non-null only for
/// [`ErrorCode::AdmissionRejected`].
pub fn error_line(
    id: Option<i64>,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"id\":");
    match id {
        Some(id) => {
            let _ = write!(out, "{id}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"ok\":false,\"error\":{\"code\":\"");
    out.push_str(code.as_str());
    out.push_str("\",\"message\":");
    push_json_string(&mut out, message);
    out.push_str(",\"retry_after_ms\":");
    match retry_after_ms {
        Some(ms) => {
            let _ = write!(out, "{ms}");
        }
        None => out.push_str("null"),
    }
    out.push_str("}}");
    out
}

/// Starts a success response line: `{"id":N,"ok":true,"verb":"…"` — the
/// caller appends the verb-specific payload and the closing brace.
pub fn ok_head(id: i64, verb: &str) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(out, "{{\"id\":{id},\"ok\":true,\"verb\":\"{verb}\"");
    out
}

/// JSON string escaping (same repertoire as the system crate's renderer).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r =
            parse_request(r#"{"id":7,"verb":"ask","tenant":"alice","query":"q(X) <- r('a', X)"}"#)
                .unwrap();
        assert_eq!(r.num_field("id"), Some(7));
        assert_eq!(r.str_field("verb"), Some("ask"));
        assert_eq!(r.str_field("tenant"), Some("alice"));
        assert_eq!(r.str_field("query"), Some("q(X) <- r('a', X)"));
    }

    #[test]
    fn decodes_escapes_and_scalars() {
        let r = parse_request(r#"{"a":"x\"y\nA","b":-12,"c":true,"d":null}"#).unwrap();
        assert_eq!(r.str_field("a"), Some("x\"y\nA"));
        assert_eq!(r.num_field("b"), Some(-12));
        assert_eq!(r.get("c"), Some(&WireValue::Bool(true)));
        assert_eq!(r.get("d"), Some(&WireValue::Null));
    }

    #[test]
    fn rejects_nesting_and_trailing_garbage() {
        assert!(parse_request(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_request(r#"{"a":[1]}"#).is_err());
        assert!(parse_request(r#"{"a":1} extra"#).is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"a":1.5}"#).is_err());
    }

    #[test]
    fn error_lines_are_stable() {
        assert_eq!(
            error_line(
                Some(3),
                ErrorCode::UnknownVerb,
                "no verb \"frobnicate\"",
                None
            ),
            "{\"id\":3,\"ok\":false,\"error\":{\"code\":\"unknown_verb\",\
             \"message\":\"no verb \\\"frobnicate\\\"\",\"retry_after_ms\":null}}"
        );
        assert_eq!(
            error_line(None, ErrorCode::AdmissionRejected, "saturated", Some(25)),
            "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"admission_rejected\",\
             \"message\":\"saturated\",\"retry_after_ms\":25}}"
        );
    }
}
