//! `toorjah_client` — a command-line client for the Toorjah daemon.
//!
//! ```text
//! toorjah_client --addr HOST:PORT [--tenant NAME] VERB [QUERY]
//! ```
//!
//! `VERB` is one of the wire verbs (`prepare`, `execute`, `ask`,
//! `explain`, `cache_stats`, `metrics`, `shutdown`); the query verbs take
//! the statement text as the final argument. Prints the raw response line
//! and exits 0 on `"ok":true`, 1 on a wire error, 2 on usage/IO errors.

use std::process::ExitCode;

use toorjah_server::{reply_ok, WireClient};

fn usage() -> ExitCode {
    eprintln!(
        "usage: toorjah_client --addr HOST:PORT [--tenant NAME] \
         prepare|execute|ask|explain QUERY\n\
         \x20      toorjah_client --addr HOST:PORT [--tenant NAME] \
         cache_stats|metrics|shutdown"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut tenant = "default".to_string();
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                match args.get(i) {
                    Some(a) => addr = Some(a.clone()),
                    None => return usage(),
                }
            }
            "--tenant" => {
                i += 1;
                match args.get(i) {
                    Some(t) => tenant = t.clone(),
                    None => return usage(),
                }
            }
            _ => rest.push(args[i].clone()),
        }
        i += 1;
    }
    let Some(addr) = addr else {
        return usage();
    };
    let Some(verb) = rest.first().map(String::as_str) else {
        return usage();
    };

    let mut client = match WireClient::connect(&addr, &tenant) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("toorjah_client: cannot connect to {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match (verb, rest.get(1).map(String::as_str)) {
        ("prepare", Some(q)) => client.prepare(q),
        ("execute", Some(q)) => client.execute(q),
        ("ask", Some(q)) => client.ask(q),
        ("explain", Some(q)) => client.explain(q),
        ("cache_stats", None) => client.cache_stats(),
        ("metrics", None) => client.metrics(),
        ("shutdown", None) => client.shutdown(),
        _ => return usage(),
    };
    match result {
        Ok(reply) => {
            println!("{reply}");
            if reply_ok(&reply) {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("toorjah_client: {e}");
            ExitCode::from(2)
        }
    }
}
