//! Admission control: a bounded execution-slot semaphore with a bounded
//! wait queue.
//!
//! The daemon caps concurrent statement executions at `max_inflight`. A
//! request arriving while every slot is busy *waits* — but only if fewer
//! than `max_queue` requests are already waiting; beyond that the request
//! is rejected immediately with a `retry_after_ms` hint instead of queuing
//! unboundedly. Two bounds, two failure modes kept apart: a full queue
//! protects latency (no unbounded backlog), the slot cap protects the
//! sources behind the cache from a thundering herd of frontier dispatches.
//!
//! Built on `std::sync::{Mutex, Condvar}` — the vendored `parking_lot`
//! stand-in deliberately omits condition variables, and admission is far
//! off the per-access hot path, so the std primitives are the right tool.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

#[derive(Debug, Default)]
struct AdmissionState {
    inflight: usize,
    waiting: usize,
    /// Once draining, waiters are woken and new arrivals refused.
    draining: bool,
}

/// The outcome of [`Admission::admit`].
pub enum Admit<'a> {
    /// Admitted: hold the permit for the duration of the execution; slots
    /// release on drop.
    Admitted(Permit<'a>),
    /// Every slot busy and the wait queue full — retry after the hint.
    Rejected {
        /// The client-facing backoff hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// The server is draining; no new work is admitted.
    Draining,
}

/// The admission controller: `max_inflight` concurrent execution slots and
/// at most `max_queue` waiters.
#[derive(Debug)]
pub struct Admission {
    state: Mutex<AdmissionState>,
    slot_freed: Condvar,
    max_inflight: usize,
    max_queue: usize,
    retry_after_ms: u64,
}

impl Admission {
    /// A controller with `max_inflight` slots, `max_queue` wait positions
    /// and the given rejection backoff hint. Both bounds are clamped to at
    /// least one slot (a zero-slot server could admit nothing).
    pub fn new(max_inflight: usize, max_queue: usize, retry_after_ms: u64) -> Self {
        Admission {
            state: Mutex::new(AdmissionState::default()),
            slot_freed: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_queue,
            retry_after_ms,
        }
    }

    /// Requests an execution slot: returns immediately when one is free,
    /// waits when the queue has room, rejects otherwise.
    pub fn admit(&self) -> Admit<'_> {
        let mut state = self.state.lock().expect("admission mutex poisoned");
        if state.draining {
            return Admit::Draining;
        }
        if state.inflight < self.max_inflight {
            state.inflight += 1;
            return Admit::Admitted(Permit { admission: self });
        }
        if state.waiting >= self.max_queue {
            return Admit::Rejected {
                retry_after_ms: self.retry_after_ms,
            };
        }
        state.waiting += 1;
        loop {
            state = self
                .slot_freed
                .wait(state)
                .expect("admission mutex poisoned");
            if state.draining {
                state.waiting -= 1;
                return Admit::Draining;
            }
            if state.inflight < self.max_inflight {
                state.waiting -= 1;
                state.inflight += 1;
                return Admit::Admitted(Permit { admission: self });
            }
        }
    }

    /// Refuses all future admissions and wakes every waiter (they return
    /// [`Admit::Draining`]). In-flight permits run to completion.
    pub fn drain(&self) {
        let mut state = self.state.lock().expect("admission mutex poisoned");
        state.draining = true;
        drop(state);
        self.slot_freed.notify_all();
    }

    /// Blocks until no execution is in flight (used by the graceful
    /// shutdown path after [`Admission::drain`]). Panics if called while
    /// still admitting — draining first is the contract.
    pub fn await_idle(&self) {
        let mut state = self.state.lock().expect("admission mutex poisoned");
        assert!(state.draining, "await_idle before drain");
        while state.inflight > 0 {
            let (next, _) = self
                .slot_freed
                .wait_timeout(state, Duration::from_millis(10))
                .expect("admission mutex poisoned");
            state = next;
        }
    }

    /// The current in-flight execution count.
    pub fn inflight(&self) -> usize {
        self.state
            .lock()
            .expect("admission mutex poisoned")
            .inflight
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("admission mutex poisoned");
        state.inflight -= 1;
        drop(state);
        self.slot_freed.notify_all();
    }
}

/// An execution slot; releasing is dropping.
pub struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admits_up_to_the_slot_cap_then_rejects_past_the_queue() {
        let admission = Admission::new(1, 0, 25);
        let permit = match admission.admit() {
            Admit::Admitted(p) => p,
            _ => panic!("first admit must succeed"),
        };
        match admission.admit() {
            Admit::Rejected { retry_after_ms } => assert_eq!(retry_after_ms, 25),
            _ => panic!("zero-queue controller must reject while the slot is held"),
        }
        drop(permit);
        assert!(matches!(admission.admit(), Admit::Admitted(_)));
    }

    #[test]
    fn queued_waiters_run_when_a_slot_frees() {
        let admission = Arc::new(Admission::new(1, 4, 25));
        let ran = Arc::new(AtomicUsize::new(0));
        let permit = match admission.admit() {
            Admit::Admitted(p) => p,
            _ => panic!("first admit must succeed"),
        };
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let admission = Arc::clone(&admission);
                let ran = Arc::clone(&ran);
                std::thread::spawn(move || match admission.admit() {
                    Admit::Admitted(_p) => {
                        ran.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => panic!("queued waiter must eventually be admitted"),
                })
            })
            .collect();
        // Let the waiters reach the queue, then free the slot.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "no waiter may jump the slot");
        drop(permit);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 4);
        assert_eq!(admission.inflight(), 0);
    }

    #[test]
    fn drain_wakes_waiters_and_refuses_new_work() {
        let admission = Arc::new(Admission::new(1, 4, 25));
        let permit = match admission.admit() {
            Admit::Admitted(p) => p,
            _ => panic!("first admit must succeed"),
        };
        let waiter = {
            let admission = Arc::clone(&admission);
            std::thread::spawn(move || matches!(admission.admit(), Admit::Draining))
        };
        std::thread::sleep(Duration::from_millis(20));
        admission.drain();
        assert!(waiter.join().unwrap(), "drain must wake the waiter");
        assert!(matches!(admission.admit(), Admit::Draining));
        drop(permit);
        admission.await_idle();
        assert_eq!(admission.inflight(), 0);
    }
}
