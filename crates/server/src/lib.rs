//! The Toorjah query service: a long-running, multi-tenant daemon over the
//! [`toorjah_system`] facade.
//!
//! The paper's sources are *services* with access limitations; this crate
//! makes Toorjah itself one. A [`Server`] hosts a [`Service`] over TCP,
//! speaking line-delimited JSON (see [`wire`]): clients `prepare`
//! statements into a shared plan registry, `execute`/`ask` under per-tenant
//! access budgets, and read `cache_stats`/`metrics`; `shutdown` drains
//! gracefully. One [`SharedAccessCache`](toorjah_cache::SharedAccessCache)
//! backs every tenant, so overlapping statements share extractions exactly
//! once — the cross-query caching story of DESIGN.md, now cross-*tenant*.
//!
//! Admission control ([`Admission`]) bounds concurrent executions and the
//! wait queue; saturation is a typed `admission_rejected` error with a
//! `retry_after_ms` hint, never an unbounded backlog. Budget exhaustion is
//! a typed `budget_exhausted` error, never a partial answer — the
//! remaining budget rides into the kernel as its access cap, so an
//! execution that would overdraw aborts atomically.
//!
//! Transport and protocol are separable: [`Service::handle_line`] is the
//! whole protocol (one request line → one response line), which is how the
//! wire golden tests pin response bytes without opening a socket.

#![warn(missing_docs)]

mod admission;
mod client;
mod registry;
mod server;
mod session;
pub mod wire;

pub use admission::{Admission, Admit, Permit};
pub use client::{reply_answers, reply_error_code, reply_number, reply_ok, WireClient};
pub use registry::{normalize, StatementRegistry};
pub use server::{Server, Service, ServiceConfig, DEFAULT_TENANT_BUDGET};
pub use session::{SessionRegistry, SessionSnapshot};
