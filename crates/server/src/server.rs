//! The query service: a transport-free [`Service`] core and the TCP
//! [`Server`] that hosts it.
//!
//! The split keeps the wire protocol testable byte-for-byte without
//! sockets: [`Service::handle_line`] maps one request line to one response
//! line, and the TCP layer only moves lines. Inside the service, the four
//! tentpole mechanisms compose:
//!
//! * a [`StatementRegistry`](crate::StatementRegistry) plans each distinct
//!   statement once and shares the `Arc<Prepared>` across tenants;
//! * a [`SessionRegistry`](crate::SessionRegistry) accounts per-tenant
//!   access budgets, enforced by threading the remaining budget into
//!   [`Prepared::execute_capped`](toorjah_system::Prepared::execute_capped)
//!   — over-budget executions abort atomically, never answering partially;
//! * an [`Admission`](crate::Admission) controller caps concurrent
//!   executions and rejects with `retry_after_ms` once its bounded wait
//!   queue fills;
//! * every execution-bearing request emits `request_accepted` and exactly
//!   one terminal `request_completed`/`request_rejected` trace event, so
//!   `trace_check --drained` can reconcile accepted = completed + rejected
//!   at exit.
//!
//! Shutdown is graceful by construction: the `shutdown` verb flips the
//! draining flag and drains admission; connection loops finish the line
//! they are on, new requests get the `shutting_down` error, and
//! [`Server::run`] joins every connection thread before returning.

use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use toorjah_catalog::Symbol;
use toorjah_engine::EngineError;
use toorjah_obs::EventKind;
use toorjah_system::{Toorjah, ToorjahError};

use crate::admission::{Admission, Admit};
use crate::registry::{normalize, StatementRegistry};
use crate::session::SessionRegistry;
use crate::wire::{self, ErrorCode, WireValue};

/// The default per-tenant access budget: generous for interactive use,
/// finite so a runaway tenant cannot monopolize the sources.
pub const DEFAULT_TENANT_BUDGET: usize = 100_000;

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Performed-access budget handed to each new tenant session.
    pub default_budget: usize,
    /// Maximum concurrent statement executions.
    pub max_inflight: usize,
    /// Maximum requests waiting for an execution slot before rejection.
    pub max_queue: usize,
    /// The `retry_after_ms` hint sent with admission rejections.
    pub retry_after_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            default_budget: DEFAULT_TENANT_BUDGET,
            max_inflight: 8,
            max_queue: 16,
            retry_after_ms: 25,
        }
    }
}

/// The transport-free request processor: one request line in, one response
/// line out. `Send + Sync`; connection threads share one instance.
pub struct Service {
    system: Toorjah,
    statements: StatementRegistry,
    sessions: SessionRegistry,
    admission: Admission,
    started: Instant,
    draining: AtomicBool,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
}

impl Service {
    /// Wraps a [`Toorjah`] instance. Install a session cache on the
    /// instance (the builder's `.cache()`/`.cache_config()`) — without one
    /// every statement runs against a private cache and tenants share
    /// nothing, which defeats the daemon's purpose (the `serve` CLI mode
    /// always installs one).
    pub fn new(system: Toorjah, config: ServiceConfig) -> Self {
        Service {
            system,
            statements: StatementRegistry::new(),
            sessions: SessionRegistry::new(config.default_budget),
            admission: Admission::new(config.max_inflight, config.max_queue, config.retry_after_ms),
            started: Instant::now(),
            draining: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The wrapped system.
    pub fn system(&self) -> &Toorjah {
        &self.system
    }

    /// Whether a `shutdown` request has started the drain.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the service into draining: new execution requests are refused
    /// (`shutting_down`), queued admissions are woken and refused,
    /// in-flight executions run to completion.
    pub fn begin_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.admission.drain();
    }

    /// Blocks until no execution is in flight. Call after
    /// [`Service::begin_shutdown`].
    pub fn await_idle(&self) {
        self.admission.await_idle();
    }

    /// Maps one request line to one response line — the whole wire
    /// protocol lives behind this function.
    pub fn handle_line(&self, line: &str) -> String {
        let request = match wire::parse_request(line) {
            Ok(r) => r,
            Err(message) => {
                return wire::error_line(None, ErrorCode::MalformedRequest, &message, None)
            }
        };
        let id = match request.get("id") {
            Some(WireValue::Num(id)) => *id,
            _ => {
                return wire::error_line(
                    None,
                    ErrorCode::MalformedRequest,
                    "missing required integer field \"id\"",
                    None,
                )
            }
        };
        let verb = match request.str_field("verb") {
            Some(v) => v,
            None => {
                return wire::error_line(
                    Some(id),
                    ErrorCode::MalformedRequest,
                    "missing required string field \"verb\"",
                    None,
                )
            }
        };
        let tenant = request.str_field("tenant").unwrap_or("default");
        match verb {
            "prepare" => self.handle_prepare(id, &request),
            "execute" => self.handle_execution(id, verb, tenant, &request, false),
            "ask" => self.handle_execution(id, verb, tenant, &request, true),
            "explain" => self.handle_explain(id, &request),
            "cache_stats" => self.handle_cache_stats(id),
            "metrics" => self.handle_metrics(id),
            "shutdown" => {
                self.begin_shutdown();
                let mut out = wire::ok_head(id, "shutdown");
                out.push_str(",\"draining\":true}");
                out
            }
            other => wire::error_line(
                Some(id),
                ErrorCode::UnknownVerb,
                &format!("no verb \"{other}\""),
                None,
            ),
        }
    }

    fn query_field<'r>(&self, id: i64, request: &'r wire::WireRequest) -> Result<&'r str, String> {
        request.str_field("query").ok_or_else(|| {
            wire::error_line(
                Some(id),
                ErrorCode::MissingQuery,
                "this verb requires a string field \"query\"",
                None,
            )
        })
    }

    fn handle_prepare(&self, id: i64, request: &wire::WireRequest) -> String {
        let text = match self.query_field(id, request) {
            Ok(t) => t,
            Err(reply) => return reply,
        };
        match self.statements.get_or_prepare(&self.system, text) {
            Ok((_, cached)) => {
                let mut out = wire::ok_head(id, "prepare");
                out.push_str(",\"statement\":");
                wire::push_json_string(&mut out, &normalize(text));
                out.push_str(if cached {
                    ",\"cached\":true}"
                } else {
                    ",\"cached\":false}"
                });
                out
            }
            Err(e) => wire::error_line(Some(id), ErrorCode::QueryError, &e.to_string(), None),
        }
    }

    /// The `execute`/`ask` path: admission → budget → capped execution →
    /// charge. `ad_hoc` distinguishes `ask` (one-shot parse + plan, parse
    /// and plan timings in the profile) from `execute` (plan shared via
    /// the statement registry).
    fn handle_execution(
        &self,
        id: i64,
        verb: &str,
        tenant: &str,
        request: &wire::WireRequest,
        ad_hoc: bool,
    ) -> String {
        let text = match self.query_field(id, request) {
            Ok(t) => t,
            Err(reply) => return reply,
        };
        if self.is_draining() {
            return wire::error_line(
                Some(id),
                ErrorCode::ShuttingDown,
                "the server is draining",
                None,
            );
        }
        let obs = self.system.obs();
        let tenant_sym = Symbol::intern(tenant);
        let verb_sym = Symbol::intern(verb);
        let accepted_at = Instant::now();
        self.accepted.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = obs.counter("server.accepted") {
            c.inc();
        }
        obs.trace(0, || EventKind::RequestAccepted {
            tenant: tenant_sym,
            verb: verb_sym,
        });
        let permit = match self.admission.admit() {
            Admit::Admitted(permit) => permit,
            Admit::Rejected { retry_after_ms } => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = obs.counter("server.rejected") {
                    c.inc();
                }
                obs.trace(0, || EventKind::RequestRejected {
                    tenant: tenant_sym,
                    verb: verb_sym,
                    retry_after_ms,
                });
                return wire::error_line(
                    Some(id),
                    ErrorCode::AdmissionRejected,
                    "all execution slots busy and the wait queue is full",
                    Some(retry_after_ms),
                );
            }
            Admit::Draining => {
                // Drain began while we queued: terminal like any other
                // completed-with-typed-error request.
                return self.complete(
                    id,
                    tenant_sym,
                    verb_sym,
                    accepted_at,
                    Err((
                        ErrorCode::ShuttingDown,
                        "the server is draining".to_string(),
                        None,
                    )),
                );
            }
        };
        if let Some(g) = obs.gauge("server.inflight") {
            g.set(self.admission.inflight() as u64);
        }
        let remaining = self.sessions.begin(tenant);
        if let Some(g) = obs.gauge("server.sessions") {
            g.set(self.sessions.len() as u64);
        }
        let outcome = if remaining == 0 {
            Err((
                ErrorCode::BudgetExhausted,
                format!("tenant \"{tenant}\" has no access budget remaining"),
                None,
            ))
        } else {
            let mode = self.system.default_mode();
            let result = if ad_hoc {
                self.system.ask_capped(text, mode, Some(remaining))
            } else {
                self.statements
                    .get_or_prepare(&self.system, text)
                    .and_then(|(prepared, _)| prepared.execute_capped(mode, Some(remaining)))
            };
            match result {
                Ok(response) => {
                    let performed =
                        usize::try_from(response.profile.accesses_performed).unwrap_or(usize::MAX);
                    let budget_remaining = self.sessions.charge(tenant, performed);
                    let mut out = wire::ok_head(id, verb);
                    out.push_str(",\"budget_remaining\":");
                    out.push_str(&budget_remaining.to_string());
                    out.push_str(",\"response\":");
                    out.push_str(&response.to_json(self.system.schema()));
                    out.push('}');
                    Ok(out)
                }
                Err(ToorjahError::Execution(EngineError::AccessBudgetExceeded { limit })) => Err((
                    ErrorCode::BudgetExhausted,
                    format!(
                        "tenant \"{tenant}\" exhausted its access budget \
                             (remaining {limit} access(es) did not cover the execution)"
                    ),
                    None,
                )),
                Err(e) => Err((ErrorCode::QueryError, e.to_string(), None)),
            }
        };
        drop(permit);
        if let Some(g) = obs.gauge("server.inflight") {
            g.set(self.admission.inflight() as u64);
        }
        self.complete(id, tenant_sym, verb_sym, accepted_at, outcome)
    }

    /// The terminal bookkeeping of an accepted request: one
    /// `request_completed` event whether it answered or failed with a
    /// typed error (rejections take the other terminal path).
    fn complete(
        &self,
        id: i64,
        tenant: Symbol,
        verb: Symbol,
        accepted_at: Instant,
        outcome: Result<String, (ErrorCode, String, Option<u64>)>,
    ) -> String {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let obs = self.system.obs();
        if let Some(c) = obs.counter("server.completed") {
            c.inc();
        }
        let micros = u64::try_from(accepted_at.elapsed().as_micros()).unwrap_or(u64::MAX);
        obs.trace(0, || EventKind::RequestCompleted {
            tenant,
            verb,
            micros,
        });
        match outcome {
            Ok(reply) => reply,
            Err((code, message, retry_after_ms)) => {
                wire::error_line(Some(id), code, &message, retry_after_ms)
            }
        }
    }

    fn handle_explain(&self, id: i64, request: &wire::WireRequest) -> String {
        let text = match self.query_field(id, request) {
            Ok(t) => t,
            Err(reply) => return reply,
        };
        match self.system.explain(text) {
            Ok(explanation) => {
                let mut out = wire::ok_head(id, "explain");
                out.push_str(",\"explanation\":");
                wire::push_json_string(&mut out, &explanation);
                out.push('}');
                out
            }
            Err(e) => wire::error_line(Some(id), ErrorCode::QueryError, &e.to_string(), None),
        }
    }

    fn handle_cache_stats(&self, id: i64) -> String {
        let stats = self.system.cache_stats().unwrap_or_default();
        let mut out = wire::ok_head(id, "cache_stats");
        out.push_str(&format!(
            ",\"cache\":{{\"hits\":{},\"coalesced_hits\":{},\"misses\":{},\
             \"load_failures\":{},\"insertions\":{},\"evictions\":{},\
             \"oversized\":{},\"entries\":{},\"bytes\":{}}}}}",
            stats.hits,
            stats.coalesced_hits,
            stats.misses,
            stats.load_failures,
            stats.insertions,
            stats.evictions,
            stats.oversized,
            stats.entries,
            stats.bytes,
        ));
        out
    }

    fn handle_metrics(&self, id: i64) -> String {
        let mut out = wire::ok_head(id, "metrics");
        let uptime_us = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        out.push_str(&format!(
            ",\"server\":{{\"sessions\":{},\"inflight\":{},\"accepted\":{},\
             \"completed\":{},\"rejected\":{},\"statements\":{},\"uptime_us\":{}}}",
            self.sessions.len(),
            self.admission.inflight(),
            self.accepted.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.statements.len(),
            uptime_us,
        ));
        out.push_str(",\"tenants\":");
        self.sessions.write_json(&mut out);
        out.push_str(",\"metrics\":");
        match self.system.metrics() {
            Some(report) => report.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// The TCP host: accepts connections, runs one line loop per connection,
/// and drains gracefully when a `shutdown` request arrives.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
}

/// How long a connection loop waits on its socket before re-checking the
/// draining flag. Bounds shutdown latency without busy-waiting.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port; read it back with
    /// [`Server::local_addr`]).
    pub fn bind(addr: &str, service: Service) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(service),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The hosted service (shareable before `run`, e.g. to pre-prepare
    /// statements).
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// Serves until a `shutdown` request, then drains: stops accepting,
    /// joins every connection thread (each finishes the request it is on),
    /// and returns once no execution is in flight.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut connections = Vec::new();
        for stream in self.listener.incoming() {
            if self.service.is_draining() {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) if self.service.is_draining() => break,
                Err(e) => return Err(e),
            };
            if self.service.is_draining() {
                break;
            }
            let service = Arc::clone(&self.service);
            connections.push(std::thread::spawn(move || {
                let _ = serve_connection(stream, &service, addr);
            }));
        }
        for connection in connections {
            let _ = connection.join();
        }
        self.service.await_idle();
        Ok(())
    }
}

/// One connection's line loop: read a request line, write the response
/// line, until EOF or drain. The read timeout keeps the loop responsive to
/// a drain initiated on another connection; the dummy self-connect at the
/// end wakes the accept loop out of `incoming()`.
fn serve_connection(
    stream: TcpStream,
    service: &Service,
    server_addr: SocketAddr,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break,
            Ok(_) => {
                let line = String::from_utf8_lossy(&buf).into_owned();
                let line = line.trim_end_matches(['\n', '\r']);
                if !line.trim().is_empty() {
                    let mut reply = service.handle_line(line);
                    reply.push('\n');
                    writer.write_all(reply.as_bytes())?;
                    writer.flush()?;
                }
                buf.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Timeout with a partial line buffered: keep accumulating.
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        if service.is_draining() {
            break;
        }
    }
    if service.is_draining() {
        // Wake `TcpListener::incoming` so the accept loop observes the
        // drain; the throwaway connection is dropped unserved.
        let _ = TcpStream::connect(server_addr);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_cache::SharedAccessCache;
    use toorjah_catalog::{tuple, Instance, Schema};
    use toorjah_engine::InstanceSource;

    fn service(config: ServiceConfig) -> Service {
        let schema = Schema::parse("r1^io(A, B) r2^io(B, C)").unwrap();
        let db = Instance::with_data(
            &schema,
            [
                ("r1", vec![tuple!["a", "b1"]]),
                ("r2", vec![tuple!["b1", "c1"]]),
            ],
        )
        .unwrap();
        let system = Toorjah::builder(InstanceSource::new(schema, db))
            .cache(SharedAccessCache::unbounded())
            .build();
        Service::new(system, config)
    }

    #[test]
    fn execute_charges_the_budget_and_embeds_the_response() {
        let service = service(ServiceConfig::default());
        let reply = service.handle_line(
            r#"{"id":1,"verb":"execute","tenant":"alice","query":"q(C) <- r1('a', B), r2(B, C)"}"#,
        );
        assert!(
            reply.starts_with("{\"id\":1,\"ok\":true,\"verb\":\"execute\""),
            "{reply}"
        );
        assert!(
            reply.contains(&format!(
                "\"budget_remaining\":{}",
                DEFAULT_TENANT_BUDGET - 2
            )),
            "{reply}"
        );
        assert!(reply.contains("\"answers\":[[\"c1\"]]"), "{reply}");
        // The second run is fully cache-served: the budget does not move.
        let reply = service.handle_line(
            r#"{"id":2,"verb":"execute","tenant":"alice","query":"q(C) <- r1('a', B), r2(B, C)"}"#,
        );
        assert!(
            reply.contains(&format!(
                "\"budget_remaining\":{}",
                DEFAULT_TENANT_BUDGET - 2
            )),
            "{reply}"
        );
        assert!(reply.contains("\"accesses_served_by_cache\":2"), "{reply}");
    }

    #[test]
    fn a_zero_budget_tenant_gets_the_typed_error() {
        let service = service(ServiceConfig {
            default_budget: 0,
            ..ServiceConfig::default()
        });
        let reply = service.handle_line(
            r#"{"id":1,"verb":"ask","tenant":"broke","query":"q(C) <- r1('a', B), r2(B, C)"}"#,
        );
        assert_eq!(
            reply,
            "{\"id\":1,\"ok\":false,\"error\":{\"code\":\"budget_exhausted\",\
             \"message\":\"tenant \\\"broke\\\" has no access budget remaining\",\
             \"retry_after_ms\":null}}"
        );
    }

    #[test]
    fn a_binding_cap_is_a_typed_error_with_no_partial_answer() {
        let service = service(ServiceConfig {
            default_budget: 1,
            ..ServiceConfig::default()
        });
        let reply = service.handle_line(
            r#"{"id":1,"verb":"ask","tenant":"thin","query":"q(C) <- r1('a', B), r2(B, C)"}"#,
        );
        assert!(reply.contains("\"code\":\"budget_exhausted\""), "{reply}");
        assert!(!reply.contains("\"answers\""), "{reply}");
    }

    #[test]
    fn shutdown_flips_the_service_into_draining() {
        let service = service(ServiceConfig::default());
        let reply = service.handle_line(r#"{"id":9,"verb":"shutdown"}"#);
        assert_eq!(
            reply,
            "{\"id\":9,\"ok\":true,\"verb\":\"shutdown\",\"draining\":true}"
        );
        assert!(service.is_draining());
        let reply = service.handle_line(r#"{"id":10,"verb":"ask","query":"q(B) <- r1('a', B)"}"#);
        assert!(reply.contains("\"code\":\"shutting_down\""), "{reply}");
    }

    #[test]
    fn metrics_folds_server_tenants_and_registry() {
        let service = service(ServiceConfig::default());
        service.handle_line(
            r#"{"id":1,"verb":"execute","tenant":"alice","query":"q(B) <- r1('a', B)"}"#,
        );
        let reply = service.handle_line(r#"{"id":2,"verb":"metrics"}"#);
        assert!(
            reply.contains(
                "\"server\":{\"sessions\":1,\"inflight\":0,\"accepted\":1,\
             \"completed\":1,\"rejected\":0,\"statements\":1,\"uptime_us\":"
            ),
            "{reply}"
        );
        assert!(
            reply.contains("\"tenants\":{\"alice\":{\"budget_limit\":"),
            "{reply}"
        );
        assert!(reply.contains("\"metrics\":{\"interner\":{"), "{reply}");
        assert_eq!(
            reply.matches('{').count(),
            reply.matches('}').count(),
            "{reply}"
        );
    }
}
