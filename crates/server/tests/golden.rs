//! Wire-protocol golden tests: one request/response fixture per verb plus
//! every error shape, pinned byte-for-byte (like the CLI's `tests/cli.rs`
//! golden suite). Runs against [`Service::handle_line`] directly — the
//! protocol is transport-free, so no sockets are involved and the bytes
//! are exactly what a TCP client would read (minus the trailing newline).
//!
//! Responses embedding wall-clock (execute/ask timings, metrics uptime)
//! are pinned as deterministic byte prefixes and suffixes around the
//! timing fields; everything else — all seven error shapes, `prepare`,
//! `cache_stats`, `shutdown` — is pinned whole.

use std::time::Duration;

use toorjah_cache::SharedAccessCache;
use toorjah_catalog::{tuple, Instance, Schema};
use toorjah_engine::{InstanceSource, LatencySource};
use toorjah_obs::Obs;
use toorjah_server::{Service, ServiceConfig};
use toorjah_system::Toorjah;

/// A two-hop fixture: observability disabled so execute/ask responses end
/// in the deterministic `"metrics":null`.
fn service_with(config: ServiceConfig) -> Service {
    let schema = Schema::parse("r1^io(A, B) r2^io(B, C)").unwrap();
    let db = Instance::with_data(
        &schema,
        [
            ("r1", vec![tuple!["a", "b1"]]),
            ("r2", vec![tuple!["b1", "c1"]]),
        ],
    )
    .unwrap();
    let system = Toorjah::builder(InstanceSource::new(schema, db))
        .cache(SharedAccessCache::unbounded())
        .observability(Obs::disabled())
        .build();
    Service::new(system, config)
}

fn service() -> Service {
    service_with(ServiceConfig::default())
}

#[test]
fn golden_prepare() {
    let service = service();
    assert_eq!(
        service
            .handle_line(r#"{"id":1,"verb":"prepare","query":"q(C) <-  r1('a', B),  r2(B, C)"}"#),
        "{\"id\":1,\"ok\":true,\"verb\":\"prepare\",\
         \"statement\":\"q(C) <- r1('a', B), r2(B, C)\",\"cached\":false}"
    );
    // Re-preparing (any whitespace variant) reports the registry hit.
    assert_eq!(
        service.handle_line(r#"{"id":2,"verb":"prepare","query":"q(C) <- r1('a', B), r2(B, C)"}"#),
        "{\"id\":2,\"ok\":true,\"verb\":\"prepare\",\
         \"statement\":\"q(C) <- r1('a', B), r2(B, C)\",\"cached\":true}"
    );
}

#[test]
fn golden_execute() {
    let service = service();
    let reply =
        service.handle_line(r#"{"id":3,"verb":"execute","query":"q(C) <- r1('a', B), r2(B, C)"}"#);
    // Byte-pinned prefix: everything before the timing fields.
    let prefix = format!(
        "{{\"id\":3,\"ok\":true,\"verb\":\"execute\",\"budget_remaining\":{},\
         \"response\":{{\"statement\":\"cq\",\"mode\":\"sequential\",\
         \"answers\":[[\"c1\"]],\"answer_count\":1,\"rejected\":0,\
         \"skipped_disjuncts\":[],\"time_to_first_answer_us\":null,\
         \"profile\":{{\"prune_level\":\"static\",\
         \"accesses_performed\":2,\"accesses_served_by_cache\":0,\
         \"total_accesses\":2,\"per_relation\":{{\"r1\":{{\"accesses\":1,\"extracted\":1}},\
         \"r2\":{{\"accesses\":1,\"extracted\":1}}}},\"dispatch\":{{\"frontiers\":2,\
         \"largest_frontier\":1,\"batches\":2,\"total_requested\":2,\"accesses_pruned\":0,\
         \"derivations_suppressed\":0,\
         \"pruned_per_frontier\":[0,0],\"delta_schedule\":[0,0,1,0,1,0]}},\
         \"timings_us\":{{\"parse\":null,\"plan\":null,",
        toorjah_server::DEFAULT_TENANT_BUDGET - 2,
    );
    assert!(reply.starts_with(&prefix), "prefix mismatch:\n{reply}");
    // Byte-pinned suffix: everything after the timing fields.
    assert!(
        reply.ends_with(",\"execution\":1},\"metrics\":null}}"),
        "suffix mismatch:\n{reply}"
    );
}

#[test]
fn golden_ask() {
    let service = service();
    let reply = service.handle_line(
        r#"{"id":4,"verb":"ask","tenant":"alice","query":"q(C) <- r1('a', B), r2(B, C)"}"#,
    );
    let prefix = format!(
        "{{\"id\":4,\"ok\":true,\"verb\":\"ask\",\"budget_remaining\":{},\
         \"response\":{{\"statement\":\"cq\",\"mode\":\"sequential\",\
         \"answers\":[[\"c1\"]],\"answer_count\":1,",
        toorjah_server::DEFAULT_TENANT_BUDGET - 2,
    );
    assert!(reply.starts_with(&prefix), "prefix mismatch:\n{reply}");
    // Unlike execute-via-registry, the one-shot ask reports parse timing.
    assert!(reply.contains("\"timings_us\":{\"parse\":"), "{reply}");
    assert!(!reply.contains("\"parse\":null"), "{reply}");
    assert!(
        reply.ends_with(",\"execution\":1},\"metrics\":null}}"),
        "{reply}"
    );
}

#[test]
fn golden_explain() {
    let service = service();
    let reply =
        service.handle_line(r#"{"id":5,"verb":"explain","query":"q(C) <- r1('a', B), r2(B, C)"}"#);
    assert!(
        reply.starts_with(
            "{\"id\":5,\"ok\":true,\"verb\":\"explain\",\"explanation\":\
             \"query (minimized): q(C) ← r1('a', B), r2(B, C)\\n"
        ),
        "{reply}"
    );
    assert!(reply.contains("datalog program:"), "{reply}");
    assert!(reply.ends_with("\"}"), "{reply}");
}

#[test]
fn golden_cache_stats() {
    let service = service();
    // Cold cache: all-zero counters, fully deterministic.
    assert_eq!(
        service.handle_line(r#"{"id":6,"verb":"cache_stats"}"#),
        "{\"id\":6,\"ok\":true,\"verb\":\"cache_stats\",\
         \"cache\":{\"hits\":0,\"coalesced_hits\":0,\"misses\":0,\
         \"load_failures\":0,\"insertions\":0,\"evictions\":0,\
         \"oversized\":0,\"entries\":0,\"bytes\":0}}"
    );
}

#[test]
fn golden_metrics() {
    let service = service();
    service.handle_line(r#"{"id":7,"verb":"ask","tenant":"alice","query":"q(B) <- r1('a', B)"}"#);
    let reply = service.handle_line(r#"{"id":8,"verb":"metrics"}"#);
    // Byte-pinned prefix up to the wall-clock uptime.
    assert!(
        reply.starts_with(
            "{\"id\":8,\"ok\":true,\"verb\":\"metrics\",\
             \"server\":{\"sessions\":1,\"inflight\":0,\"accepted\":1,\
             \"completed\":1,\"rejected\":0,\"statements\":0,\"uptime_us\":"
        ),
        "{reply}"
    );
    // The tenant block is deterministic (performed accesses are data-, not
    // schedule-dependent).
    assert!(
        reply.contains(
            "\"tenants\":{\"alice\":{\"budget_limit\":100000,\"budget_used\":1,\
             \"budget_remaining\":99999,\"requests\":1}}"
        ),
        "{reply}"
    );
    // Observability disabled: the registry block degrades to null.
    assert!(reply.ends_with(",\"metrics\":null}"), "{reply}");
}

#[test]
fn golden_shutdown() {
    let service = service();
    assert_eq!(
        service.handle_line(r#"{"id":9,"verb":"shutdown"}"#),
        "{\"id\":9,\"ok\":true,\"verb\":\"shutdown\",\"draining\":true}"
    );
    // Post-shutdown execution requests get the shutting_down error shape.
    assert_eq!(
        service.handle_line(r#"{"id":10,"verb":"ask","query":"q(B) <- r1('a', B)"}"#),
        "{\"id\":10,\"ok\":false,\"error\":{\"code\":\"shutting_down\",\
         \"message\":\"the server is draining\",\"retry_after_ms\":null}}"
    );
}

#[test]
fn golden_error_unknown_verb() {
    assert_eq!(
        service().handle_line(r#"{"id":11,"verb":"frobnicate"}"#),
        "{\"id\":11,\"ok\":false,\"error\":{\"code\":\"unknown_verb\",\
         \"message\":\"no verb \\\"frobnicate\\\"\",\"retry_after_ms\":null}}"
    );
}

#[test]
fn golden_error_malformed_json() {
    let service = service();
    assert_eq!(
        service.handle_line("this is not json"),
        "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"malformed_request\",\
         \"message\":\"expected '{'\",\"retry_after_ms\":null}}"
    );
    assert_eq!(
        service.handle_line(r#"{"id":12,"verb":{"nested":true}}"#),
        "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"malformed_request\",\
         \"message\":\"nested objects and arrays are not part of the request grammar\",\
         \"retry_after_ms\":null}}"
    );
    // A well-formed object missing the required id.
    assert_eq!(
        service.handle_line(r#"{"verb":"metrics"}"#),
        "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"malformed_request\",\
         \"message\":\"missing required integer field \\\"id\\\"\",\"retry_after_ms\":null}}"
    );
}

#[test]
fn golden_error_missing_query() {
    assert_eq!(
        service().handle_line(r#"{"id":13,"verb":"execute"}"#),
        "{\"id\":13,\"ok\":false,\"error\":{\"code\":\"missing_query\",\
         \"message\":\"this verb requires a string field \\\"query\\\"\",\
         \"retry_after_ms\":null}}"
    );
}

#[test]
fn golden_error_query_error() {
    let reply = service().handle_line(r#"{"id":14,"verb":"ask","query":"q(X) <- nope(X)"}"#);
    assert!(
        reply.starts_with("{\"id\":14,\"ok\":false,\"error\":{\"code\":\"query_error\","),
        "{reply}"
    );
    assert!(reply.ends_with(",\"retry_after_ms\":null}}"), "{reply}");
}

#[test]
fn golden_error_budget_exhausted() {
    let service = service_with(ServiceConfig {
        default_budget: 0,
        ..ServiceConfig::default()
    });
    assert_eq!(
        service
            .handle_line(r#"{"id":15,"verb":"ask","tenant":"broke","query":"q(B) <- r1('a', B)"}"#),
        "{\"id\":15,\"ok\":false,\"error\":{\"code\":\"budget_exhausted\",\
         \"message\":\"tenant \\\"broke\\\" has no access budget remaining\",\
         \"retry_after_ms\":null}}"
    );
}

#[test]
fn golden_error_admission_rejected() {
    // A single slot, no queue, slow sources: while one thread's execution
    // holds the slot, any concurrent request is rejected with the exact
    // bytes below. The `metrics` verb bypasses admission, so the contender
    // can wait for the holder to actually occupy the slot before asking —
    // its 500ms execution window then makes the rejection deterministic.
    let schema = Schema::parse("r1^io(A, B)").unwrap();
    let db = Instance::with_data(&schema, [("r1", vec![tuple!["a", "b1"]])]).unwrap();
    let slow = LatencySource::new(InstanceSource::new(schema, db), Duration::from_millis(500))
        .with_real_sleep();
    let system = Toorjah::builder(slow)
        .cache(SharedAccessCache::unbounded())
        .observability(Obs::disabled())
        .build();
    let service = std::sync::Arc::new(Service::new(
        system,
        ServiceConfig {
            max_inflight: 1,
            max_queue: 0,
            retry_after_ms: 25,
            ..ServiceConfig::default()
        },
    ));
    let holder = {
        let service = std::sync::Arc::clone(&service);
        std::thread::spawn(move || {
            service.handle_line(r#"{"id":16,"verb":"ask","query":"q(B) <- r1('a', B)"}"#)
        })
    };
    for _ in 0..2_000 {
        let metrics = service.handle_line(r#"{"id":0,"verb":"metrics"}"#);
        if metrics.contains("\"inflight\":1") {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let reply = service
        .handle_line(r#"{"id":17,"verb":"ask","tenant":"pushy","query":"q(B) <- r1('a', B)"}"#);
    assert_eq!(
        reply,
        "{\"id\":17,\"ok\":false,\"error\":{\"code\":\"admission_rejected\",\
         \"message\":\"all execution slots busy and the wait queue is full\",\
         \"retry_after_ms\":25}}"
    );
    let held = holder.join().expect("holder thread");
    assert!(held.contains("\"ok\":true"), "{held}");
}
