//! Error type for Datalog program construction and evaluation.

use std::error::Error;
use std::fmt;

/// Errors raised while building or evaluating Datalog programs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DatalogError {
    /// A predicate was interned twice with different arities.
    ArityConflict {
        /// Predicate name.
        predicate: String,
        /// Arity of the first registration.
        first: usize,
        /// Arity of the conflicting registration.
        second: usize,
    },
    /// A literal's term count differs from its predicate's arity.
    LiteralArity {
        /// Predicate name.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Number of terms in the literal.
        got: usize,
    },
    /// A head variable does not occur in the body.
    NotRangeRestricted {
        /// Head predicate name.
        predicate: String,
    },
    /// A fact with the wrong arity was inserted into a store.
    FactArity {
        /// Predicate name.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Arity of the offending fact.
        got: usize,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::ArityConflict { predicate, first, second } => write!(
                f,
                "predicate {predicate} registered with arity {first} and again with arity {second}"
            ),
            DatalogError::LiteralArity { predicate, expected, got } => write!(
                f,
                "literal over {predicate} has {got} term(s), but the predicate has arity {expected}"
            ),
            DatalogError::NotRangeRestricted { predicate } => write!(
                f,
                "rule for {predicate} is not range-restricted (a head variable is missing from the body)"
            ),
            DatalogError::FactArity { predicate, expected, got } => write!(
                f,
                "fact of arity {got} inserted for predicate {predicate} of arity {expected}"
            ),
        }
    }
}

impl Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_predicate() {
        let e = DatalogError::NotRangeRestricted {
            predicate: "q".into(),
        };
        assert!(e.to_string().contains('q'));
    }
}
