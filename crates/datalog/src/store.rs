//! Fact storage with eager single-column hash indexes over interned values.

use std::collections::HashMap;

use toorjah_catalog::{FastMap, FastSet, IVal, Tuple, Value};

use crate::PredId;

/// Facts for one predicate: a deduplicated tuple list with one hash index
/// per column, keyed by the compact [`IVal`] representation — probes hash a
/// `u32` symbol id or an `i64` with the cheap [`FastMap`] hasher, never a
/// string payload through SipHash.
///
/// Indexes are built **eagerly**: the first insert fixes the arity and
/// allocates one map per column, and every later insert appends its position
/// to each column's posting list. Lookups therefore work through plain
/// shared borrows (no interior mutability), the store is `Sync`, and a probe
/// can hand out its posting list as a borrowed slice — see
/// [`FactStore::candidates`] — instead of cloning it.
#[derive(Clone, Default, Debug)]
struct PredFacts {
    tuples: Vec<Tuple>,
    seen: FastSet<Tuple>,
    /// `indexes[col]` maps a column value to the positions of tuples
    /// carrying it at `col`, in insertion order. Empty in an
    /// [unindexed](FactStore::unindexed) store.
    indexes: Vec<FastMap<IVal, Vec<u32>>>,
}

impl PredFacts {
    fn insert(&mut self, t: Tuple, indexed: bool) -> bool {
        if !self.seen.insert(t.clone()) {
            return false;
        }
        let pos = u32::try_from(self.tuples.len()).expect("fewer than 2^32 facts per predicate");
        if indexed {
            if self.indexes.len() != t.len() {
                self.indexes = vec![FastMap::default(); t.len()];
            }
            for (index, &v) in self.indexes.iter_mut().zip(t.values()) {
                index.entry(IVal::from(v)).or_default().push(pos);
            }
        }
        self.tuples.push(t);
        true
    }

    /// The posting list for `value` at `col`, borrowed from the index.
    fn positions(&self, col: usize, value: Value) -> &[u32] {
        self.indexes
            .get(col)
            .and_then(|index| index.get(&IVal::from(value)))
            .map_or(&[], Vec::as_slice)
    }
}

/// Tuple positions produced by a probe: either a borrowed posting list from
/// a column index or the full extent. Iterating allocates nothing — this is
/// what the evaluator's recursive join loops drive.
#[derive(Clone, Debug)]
pub enum Candidates<'a> {
    /// Positions from a column index, in insertion order.
    Indexed(std::slice::Iter<'a, u32>),
    /// Every position: the literal had no bound column to probe with.
    All(std::ops::Range<usize>),
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            Candidates::Indexed(iter) => iter.next().map(|&p| p as usize),
            Candidates::All(range) => range.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Candidates::Indexed(iter) => iter.size_hint(),
            Candidates::All(range) => range.size_hint(),
        }
    }
}

impl ExactSizeIterator for Candidates<'_> {}

/// A set of facts per predicate, the input/output format of
/// [`crate::evaluate`].
///
/// Insertion order is preserved per predicate, making iteration — and hence
/// evaluation traces and test expectations — deterministic.
#[derive(Clone, Debug)]
pub struct FactStore {
    facts: HashMap<PredId, PredFacts>,
    /// Whether inserts maintain the per-column posting lists. An unindexed
    /// store skips them and answers probes by scanning; see
    /// [`FactStore::unindexed`].
    indexed: bool,
}

impl Default for FactStore {
    fn default() -> Self {
        FactStore {
            facts: HashMap::new(),
            indexed: true,
        }
    }
}

impl FactStore {
    /// Creates an empty store with eager column indexes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store that skips index maintenance entirely.
    ///
    /// Probes stay correct — [`FactStore::candidates`] falls back to the
    /// full extent (callers re-verify every column against the tuple, so a
    /// superset is safe) and [`FactStore::matching`] /
    /// [`FactStore::has_matching`] scan. Worth it for stores that are
    /// written far more than probed: the semi-naive evaluator's delta and
    /// pending stores are refilled every round but probed only through
    /// verifying search loops, so the two index-map operations per inserted
    /// fact are pure overhead.
    pub fn unindexed() -> Self {
        FactStore {
            facts: HashMap::new(),
            indexed: false,
        }
    }

    /// Inserts a fact; returns `true` if it was new.
    pub fn insert(&mut self, pred: PredId, tuple: Tuple) -> bool {
        let indexed = self.indexed;
        self.facts.entry(pred).or_default().insert(tuple, indexed)
    }

    /// Inserts many facts.
    pub fn extend(&mut self, pred: PredId, tuples: impl IntoIterator<Item = Tuple>) {
        let indexed = self.indexed;
        let facts = self.facts.entry(pred).or_default();
        for t in tuples {
            facts.insert(t, indexed);
        }
    }

    /// All facts for a predicate, in insertion order.
    pub fn tuples(&self, pred: PredId) -> &[Tuple] {
        self.facts.get(&pred).map_or(&[], |f| &f.tuples)
    }

    /// Whether the predicate has any fact.
    pub fn is_empty(&self, pred: PredId) -> bool {
        self.tuples(pred).is_empty()
    }

    /// Number of facts for a predicate.
    pub fn len(&self, pred: PredId) -> usize {
        self.tuples(pred).len()
    }

    /// Total number of facts across predicates.
    pub fn total(&self) -> usize {
        self.facts.values().map(|f| f.tuples.len()).sum()
    }

    /// Whether a specific fact is present.
    pub fn contains(&self, pred: PredId, tuple: &Tuple) -> bool {
        self.facts
            .get(&pred)
            .is_some_and(|f| f.seen.contains(tuple))
    }

    /// Candidate positions (into [`FactStore::tuples`]) for a body literal:
    /// the posting list of `value` at `col` when a bound column is known, the
    /// full extent otherwise. Borrows the index — no allocation per probe.
    ///
    /// On an [unindexed](FactStore::unindexed) store a bound column yields
    /// the full extent too: a superset of the posting list, in the same
    /// (insertion) order, so search loops that re-verify each tuple visit
    /// the same matches in the same sequence.
    pub fn candidates(&self, pred: PredId, bound: Option<(usize, Value)>) -> Candidates<'_> {
        match (bound, self.facts.get(&pred)) {
            (Some((col, value)), Some(f)) if self.indexed => {
                Candidates::Indexed(f.positions(col, value).iter())
            }
            (Some(_), None) => Candidates::Indexed([].iter()),
            (_, f) => Candidates::All(0..f.map_or(0, |f| f.tuples.len())),
        }
    }

    /// Positions of facts matching `value` at `col`, as an owned vector.
    /// Prefer [`FactStore::candidates`] in loops — this exists for callers
    /// that need to keep the positions around.
    pub fn matching(&self, pred: PredId, col: usize, value: &Value) -> Vec<usize> {
        if self.indexed {
            self.candidates(pred, Some((col, *value))).collect()
        } else {
            self.tuples(pred)
                .iter()
                .enumerate()
                .filter(|(_, t)| t.values().get(col) == Some(value))
                .map(|(pos, _)| pos)
                .collect()
        }
    }

    /// Whether any fact matches `value` at `col` — the allocation-free
    /// membership probe behind the engine's runtime semi-join pruning.
    pub fn has_matching(&self, pred: PredId, col: usize, value: &Value) -> bool {
        if self.indexed {
            self.facts
                .get(&pred)
                .is_some_and(|f| !f.positions(col, *value).is_empty())
        } else {
            self.tuples(pred)
                .iter()
                .any(|t| t.values().get(col) == Some(value))
        }
    }

    /// Removes every fact while keeping the per-predicate allocations
    /// (tuple vectors, seen sets, index maps) for reuse — the semi-naive
    /// evaluator clears and refills its delta store every round instead of
    /// reallocating one.
    pub fn clear(&mut self) {
        for facts in self.facts.values_mut() {
            facts.tuples.clear();
            facts.seen.clear();
            for index in &mut facts.indexes {
                index.clear();
            }
        }
    }

    /// Merges all facts of `other` into `self`.
    pub fn absorb(&mut self, other: &FactStore) {
        let indexed = self.indexed;
        for (&pred, facts) in &other.facts {
            let target = self.facts.entry(pred).or_default();
            for t in &facts.tuples {
                target.insert(t.clone(), indexed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_catalog::tuple;

    #[test]
    fn insert_dedups() {
        let mut s = FactStore::new();
        let p = PredId(0);
        assert!(s.insert(p, tuple!["a", 1]));
        assert!(!s.insert(p, tuple!["a", 1]));
        assert_eq!(s.len(p), 1);
        assert!(s.contains(p, &tuple!["a", 1]));
        assert!(!s.contains(p, &tuple!["a", 2]));
    }

    #[test]
    fn missing_predicate_is_empty() {
        let s = FactStore::new();
        assert!(s.is_empty(PredId(7)));
        assert_eq!(s.tuples(PredId(7)), &[]);
        assert!(s.matching(PredId(7), 0, &Value::from(1)).is_empty());
        assert_eq!(s.candidates(PredId(7), None).count(), 0);
        assert_eq!(
            s.candidates(PredId(7), Some((0, Value::from(1)))).count(),
            0
        );
    }

    #[test]
    fn index_lookup_finds_positions() {
        let mut s = FactStore::new();
        let p = PredId(0);
        s.extend(p, [tuple!["a", 1], tuple!["b", 2], tuple!["a", 3]]);
        let pos = s.matching(p, 0, &Value::from("a"));
        assert_eq!(pos, vec![0, 2]);
        assert!(s.matching(p, 0, &Value::from("zz")).is_empty());
    }

    #[test]
    fn index_extends_after_inserts() {
        let mut s = FactStore::new();
        let p = PredId(0);
        s.insert(p, tuple!["a", 1]);
        assert_eq!(s.matching(p, 0, &Value::from("a")).len(), 1);
        s.insert(p, tuple!["a", 2]);
        assert_eq!(s.matching(p, 0, &Value::from("a")).len(), 2);
    }

    #[test]
    fn candidates_without_bound_column_cover_extent() {
        let mut s = FactStore::new();
        let p = PredId(0);
        s.extend(p, [tuple![3], tuple![1], tuple![2]]);
        let all: Vec<usize> = s.candidates(p, None).collect();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn candidates_probe_every_column() {
        let mut s = FactStore::new();
        let p = PredId(0);
        s.extend(p, [tuple!["a", 1, "x"], tuple!["b", 1, "y"]]);
        let by_mid: Vec<usize> = s.candidates(p, Some((1, Value::from(1)))).collect();
        assert_eq!(by_mid, vec![0, 1]);
        let by_last: Vec<usize> = s.candidates(p, Some((2, Value::from("y")))).collect();
        assert_eq!(by_last, vec![1]);
    }

    #[test]
    fn store_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<FactStore>();
    }

    #[test]
    fn absorb_merges() {
        let mut a = FactStore::new();
        let mut b = FactStore::new();
        let p = PredId(0);
        a.insert(p, tuple![1]);
        b.insert(p, tuple![1]);
        b.insert(p, tuple![2]);
        a.absorb(&b);
        assert_eq!(a.len(p), 2);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn insertion_order_preserved() {
        let mut s = FactStore::new();
        let p = PredId(0);
        s.extend(p, [tuple![3], tuple![1], tuple![2]]);
        let order: Vec<_> = s.tuples(p).to_vec();
        assert_eq!(order, vec![tuple![3], tuple![1], tuple![2]]);
    }

    #[test]
    fn clear_empties_but_keeps_indexes_working() {
        let mut s = FactStore::new();
        let p = PredId(0);
        s.extend(p, [tuple!["a", 1], tuple!["b", 2]]);
        s.clear();
        assert_eq!(s.total(), 0);
        assert!(s.is_empty(p));
        assert!(!s.contains(p, &tuple!["a", 1]));
        assert!(s.matching(p, 0, &Value::from("a")).is_empty());
        // Refilling after a clear keeps dedup and indexing intact.
        assert!(s.insert(p, tuple!["a", 7]));
        assert!(!s.insert(p, tuple!["a", 7]));
        assert_eq!(s.matching(p, 0, &Value::from("a")), vec![0]);
    }

    #[test]
    fn unindexed_store_answers_probes_by_scanning() {
        let mut indexed = FactStore::new();
        let mut plain = FactStore::unindexed();
        let p = PredId(0);
        for s in [&mut indexed, &mut plain] {
            s.extend(p, [tuple!["a", 1], tuple!["b", 2], tuple!["a", 3]]);
        }
        // matching/has_matching agree with the indexed store exactly.
        assert_eq!(
            plain.matching(p, 0, &Value::from("a")),
            indexed.matching(p, 0, &Value::from("a"))
        );
        assert!(plain.has_matching(p, 1, &Value::from(2)));
        assert!(!plain.has_matching(p, 1, &Value::from(9)));
        assert!(plain.matching(p, 0, &Value::from("zz")).is_empty());
        // candidates with a bound column fall back to the full extent — a
        // superset of the posting list, in insertion order.
        let all: Vec<usize> = plain.candidates(p, Some((0, Value::from("a")))).collect();
        assert_eq!(all, vec![0, 1, 2]);
        // Dedup and membership are index-free and unaffected.
        assert!(!plain.insert(p, tuple!["a", 1]));
        assert!(plain.contains(p, &tuple!["b", 2]));
        assert_eq!(plain.len(p), 3);
    }

    #[test]
    fn unindexed_store_clears_and_refills() {
        let mut s = FactStore::unindexed();
        let p = PredId(0);
        s.extend(p, [tuple![1, 2], tuple![2, 3]]);
        s.clear();
        assert_eq!(s.total(), 0);
        assert!(s.insert(p, tuple![5, 6]));
        assert!(!s.insert(p, tuple![5, 6]));
        assert_eq!(s.matching(p, 1, &Value::from(6)), vec![0]);
    }

    #[test]
    fn clone_keeps_indexes_independent() {
        let mut s = FactStore::new();
        let p = PredId(0);
        s.insert(p, tuple!["a", 1]);
        let c = s.clone();
        s.insert(p, tuple!["a", 2]);
        assert_eq!(c.matching(p, 0, &Value::from("a")).len(), 1);
        assert_eq!(s.matching(p, 0, &Value::from("a")).len(), 2);
    }
}
