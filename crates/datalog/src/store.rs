//! Fact storage with lazy single-column hash indexes.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

use toorjah_catalog::{Tuple, Value};

use crate::PredId;

/// Facts for one predicate: a deduplicated tuple list with lazily built
/// single-column indexes (column value → tuple positions).
///
/// Indexes live behind a `RefCell` so lookups work through `&self`; the
/// store is therefore not `Sync`, which is fine for the single-threaded
/// bottom-up evaluator (the parallel executor in `toorjah-system` uses its
/// own lock-protected structures).
#[derive(Clone, Default, Debug)]
struct PredFacts {
    tuples: Vec<Tuple>,
    seen: HashSet<Tuple>,
    /// `indexes[col]` maps a value to the positions of tuples carrying it at
    /// column `col`. Built on first use, extended on insert thereafter.
    indexes: RefCell<HashMap<usize, HashMap<Value, Vec<usize>>>>,
}

impl PredFacts {
    fn insert(&mut self, t: Tuple) -> bool {
        if !self.seen.insert(t.clone()) {
            return false;
        }
        let pos = self.tuples.len();
        for (&col, index) in self.indexes.get_mut().iter_mut() {
            index.entry(t[col].clone()).or_default().push(pos);
        }
        self.tuples.push(t);
        true
    }

    /// Looks up `value` in the column's index (built on first use), handing
    /// the hit — if any — to `read`.
    fn with_index<R>(
        &self,
        col: usize,
        value: &Value,
        read: impl FnOnce(Option<&Vec<usize>>) -> R,
    ) -> R {
        let mut indexes = self.indexes.borrow_mut();
        let index = indexes.entry(col).or_insert_with(|| {
            let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
            for (pos, t) in self.tuples.iter().enumerate() {
                index.entry(t[col].clone()).or_default().push(pos);
            }
            index
        });
        read(index.get(value))
    }

    fn matching(&self, col: usize, value: &Value) -> Vec<usize> {
        self.with_index(col, value, |hit| hit.cloned().unwrap_or_default())
    }

    fn has_matching(&self, col: usize, value: &Value) -> bool {
        self.with_index(col, value, |hit| hit.is_some())
    }
}

/// A set of facts per predicate, the input/output format of
/// [`crate::evaluate`].
///
/// Insertion order is preserved per predicate, making iteration — and hence
/// evaluation traces and test expectations — deterministic.
#[derive(Clone, Default, Debug)]
pub struct FactStore {
    facts: HashMap<PredId, PredFacts>,
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; returns `true` if it was new.
    pub fn insert(&mut self, pred: PredId, tuple: Tuple) -> bool {
        self.facts.entry(pred).or_default().insert(tuple)
    }

    /// Inserts many facts.
    pub fn extend(&mut self, pred: PredId, tuples: impl IntoIterator<Item = Tuple>) {
        let facts = self.facts.entry(pred).or_default();
        for t in tuples {
            facts.insert(t);
        }
    }

    /// All facts for a predicate, in insertion order.
    pub fn tuples(&self, pred: PredId) -> &[Tuple] {
        self.facts.get(&pred).map_or(&[], |f| &f.tuples)
    }

    /// Whether the predicate has any fact.
    pub fn is_empty(&self, pred: PredId) -> bool {
        self.tuples(pred).is_empty()
    }

    /// Number of facts for a predicate.
    pub fn len(&self, pred: PredId) -> usize {
        self.tuples(pred).len()
    }

    /// Total number of facts across predicates.
    pub fn total(&self) -> usize {
        self.facts.values().map(|f| f.tuples.len()).sum()
    }

    /// Whether a specific fact is present.
    pub fn contains(&self, pred: PredId, tuple: &Tuple) -> bool {
        self.facts
            .get(&pred)
            .is_some_and(|f| f.seen.contains(tuple))
    }

    /// Positions (into [`FactStore::tuples`]) of facts matching `value` at
    /// `col`, using (and building on demand) a hash index.
    pub fn matching(&self, pred: PredId, col: usize, value: &Value) -> Vec<usize> {
        self.facts
            .get(&pred)
            .map_or_else(Vec::new, |f| f.matching(col, value))
    }

    /// Whether any fact matches `value` at `col` — the allocation-free
    /// membership probe behind the engine's runtime semi-join pruning.
    pub fn has_matching(&self, pred: PredId, col: usize, value: &Value) -> bool {
        self.facts
            .get(&pred)
            .is_some_and(|f| f.has_matching(col, value))
    }

    /// Merges all facts of `other` into `self`.
    pub fn absorb(&mut self, other: &FactStore) {
        for (&pred, facts) in &other.facts {
            let target = self.facts.entry(pred).or_default();
            for t in &facts.tuples {
                target.insert(t.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_catalog::tuple;

    #[test]
    fn insert_dedups() {
        let mut s = FactStore::new();
        let p = PredId(0);
        assert!(s.insert(p, tuple!["a", 1]));
        assert!(!s.insert(p, tuple!["a", 1]));
        assert_eq!(s.len(p), 1);
        assert!(s.contains(p, &tuple!["a", 1]));
        assert!(!s.contains(p, &tuple!["a", 2]));
    }

    #[test]
    fn missing_predicate_is_empty() {
        let s = FactStore::new();
        assert!(s.is_empty(PredId(7)));
        assert_eq!(s.tuples(PredId(7)), &[]);
        assert!(s.matching(PredId(7), 0, &Value::from(1)).is_empty());
    }

    #[test]
    fn index_lookup_finds_positions() {
        let mut s = FactStore::new();
        let p = PredId(0);
        s.extend(p, [tuple!["a", 1], tuple!["b", 2], tuple!["a", 3]]);
        let pos = s.matching(p, 0, &Value::from("a"));
        assert_eq!(pos, vec![0, 2]);
        assert!(s.matching(p, 0, &Value::from("zz")).is_empty());
    }

    #[test]
    fn index_extends_after_inserts() {
        let mut s = FactStore::new();
        let p = PredId(0);
        s.insert(p, tuple!["a", 1]);
        // Build the index, then insert more.
        assert_eq!(s.matching(p, 0, &Value::from("a")).len(), 1);
        s.insert(p, tuple!["a", 2]);
        assert_eq!(s.matching(p, 0, &Value::from("a")).len(), 2);
    }

    #[test]
    fn absorb_merges() {
        let mut a = FactStore::new();
        let mut b = FactStore::new();
        let p = PredId(0);
        a.insert(p, tuple![1]);
        b.insert(p, tuple![1]);
        b.insert(p, tuple![2]);
        a.absorb(&b);
        assert_eq!(a.len(p), 2);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn insertion_order_preserved() {
        let mut s = FactStore::new();
        let p = PredId(0);
        s.extend(p, [tuple![3], tuple![1], tuple![2]]);
        let order: Vec<_> = s.tuples(p).to_vec();
        assert_eq!(order, vec![tuple![3], tuple![1], tuple![2]]);
    }

    #[test]
    fn clone_keeps_indexes_independent() {
        let mut s = FactStore::new();
        let p = PredId(0);
        s.insert(p, tuple!["a", 1]);
        let c = s.clone();
        s.insert(p, tuple!["a", 2]);
        assert_eq!(c.matching(p, 0, &Value::from("a")).len(), 1);
        assert_eq!(s.matching(p, 0, &Value::from("a")).len(), 2);
    }
}
