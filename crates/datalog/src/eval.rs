//! Bottom-up semi-naive least-fixpoint evaluation.
//!
//! This is the reference semantics for the paper's query plans: §IV states
//! that the fast-failing strategy "is guaranteed to always calculate the same
//! answer as the fixpoint semantics for the Datalog program". The engine's
//! executor is property-tested against this evaluator.
//!
//! Two evaluators share the same round skeleton (initialization round, then
//! one pass per rule per delta pivot until the delta is empty):
//!
//! * [`evaluate`] — the **delta-join** evaluator: every pass enumerates the
//!   pivot literal's *delta first*, then joins the remaining literals (in a
//!   greedy bound-variable order) against the full extents through the
//!   column-index probes of [`FactStore::candidates`]. Per-round work is
//!   proportional to the delta, not the total, and a shared bind trail
//!   keeps the inner join loop allocation-free.
//! * [`evaluate_full_join`] — the historical evaluator enumerating every
//!   body in literal order from the full extents. It is kept as the oracle
//!   the delta evaluator is property-tested against: answers, rounds,
//!   derived counts, derivation counts and per-round delta sizes are
//!   identical, because a conjunctive body's satisfaction set does not
//!   depend on enumeration order.

use std::collections::HashSet;

use toorjah_catalog::{Tuple, Value};
use toorjah_obs::Obs;

use crate::{DTerm, FactStore, Literal, PredId, Program, Rule};

/// Counters describing one evaluation run.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct EvalStats {
    /// Number of fixpoint rounds (including the initialization round).
    pub rounds: usize,
    /// Number of IDB facts derived.
    pub derived: usize,
    /// Number of rule-body satisfactions considered (including rederivations).
    pub derivations: usize,
    /// Facts newly derived per round, aligned with the rounds (the
    /// initialization round first; the final barren round contributes `0`).
    /// The entries sum to [`EvalStats::derived`], and the semi-naive
    /// invariant holds round by round: the delta is disjoint from the
    /// previous total, and delta ∪ total is closed under the rules applied
    /// so far. (Under [`crate::evaluate_demand`] the entries describe the
    /// rewritten program's run, whose `derived` is re-stated post-projection
    /// — see there.)
    pub delta_sizes: Vec<usize>,
    /// Demand (magic) facts derived — always `0` for the plain evaluators;
    /// populated by [`crate::evaluate_demand`], where the demand facts are
    /// bookkeeping rather than answers and are therefore reported here
    /// instead of in [`EvalStats::derived`].
    pub magic_facts: usize,
}

/// Evaluates `program` over the extensional facts in `edb`, returning the
/// derived intensional facts and run statistics.
///
/// The program must be positive (no negation — the AST cannot express it)
/// and range-restricted (validated by [`Program::add_rule`]), so the least
/// fixpoint exists and is finite over a finite EDB.
///
/// ```
/// use toorjah_catalog::tuple;
/// use toorjah_datalog::{evaluate, DTerm, FactStore, Literal, Program, Rule};
///
/// // path(X,Y) ← edge(X,Y);  path(X,Z) ← edge(X,Y), path(Y,Z)
/// let mut p = Program::new();
/// let edge = p.predicate("edge", 2).unwrap();
/// let path = p.predicate("path", 2).unwrap();
/// let v = |i| DTerm::Var(i);
/// p.add_rule(Rule::new(
///     Literal::new(path, vec![v(0), v(1)]),
///     vec![Literal::new(edge, vec![v(0), v(1)])],
///     vec!["X".into(), "Y".into()],
/// )).unwrap();
/// p.add_rule(Rule::new(
///     Literal::new(path, vec![v(0), v(2)]),
///     vec![Literal::new(edge, vec![v(0), v(1)]), Literal::new(path, vec![v(1), v(2)])],
///     vec!["X".into(), "Y".into(), "Z".into()],
/// )).unwrap();
///
/// let mut edb = FactStore::new();
/// edb.extend(edge, [tuple![1, 2], tuple![2, 3]]);
/// let (idb, stats) = evaluate(&p, &edb);
/// assert_eq!(idb.len(path), 3); // (1,2), (2,3), (1,3)
/// assert!(stats.rounds >= 2);
/// assert_eq!(stats.delta_sizes.iter().sum::<usize>(), stats.derived);
/// ```
pub fn evaluate(program: &Program, edb: &FactStore) -> (FactStore, EvalStats) {
    evaluate_with_obs(program, edb, Obs::disabled())
}

/// [`evaluate`] with an observability handle: per-round delta sizes are
/// recorded into the `datalog.delta_facts` histogram (when metrics are on),
/// so delta decay toward the fixpoint is visible next to the kernel's
/// `kernel.delta_size` in a metrics snapshot.
pub fn evaluate_with_obs(program: &Program, edb: &FactStore, obs: Obs) -> (FactStore, EvalStats) {
    let idb_preds = program.idb_predicates();
    let is_idb = |p: PredId| idb_preds.contains(&p);
    let delta_hist = obs.histogram("datalog.delta_facts");

    // Per rule: the IDB body positions (the pivot set) and, per pivot, the
    // delta-join enumeration order starting at the pivot. Computed once —
    // the round loop only walks precomputed orders.
    let rule_plans: Vec<(Vec<usize>, Vec<Vec<usize>>)> = program
        .rules()
        .iter()
        .map(|rule| {
            let idb_positions: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, l)| is_idb(l.pred))
                .map(|(i, _)| i)
                .collect();
            let orders = idb_positions
                .iter()
                .map(|&pivot| pivot_order(rule, pivot))
                .collect();
            (idb_positions, orders)
        })
        .collect();

    let max_vars = program
        .rules()
        .iter()
        .map(|r| r.var_names.len())
        .max()
        .unwrap_or(0);

    // The total store is only ever probed by a bound column when some rule
    // joins the pivot's delta against *another* IDB literal (`Source::Total`
    // arises for non-pivot IDB positions alone). Linear-recursive programs —
    // one IDB literal per body, transitive closure being the canonical case —
    // never probe it, so skip index maintenance on their hot insert path.
    let total_probed = rule_plans
        .iter()
        .any(|(idb_positions, _)| idb_positions.len() >= 2);
    let mut total = if total_probed {
        FactStore::new()
    } else {
        FactStore::unindexed()
    };
    // The delta and pending stores are refilled every round and probed only
    // through verifying search loops, where an unindexed full-extent scan of
    // a small delta beats maintaining per-column posting lists.
    let mut delta = FactStore::unindexed();
    // Initialization counts as the first round: facts and rules whose bodies
    // contain no IDB literal fire exactly once, here.
    let mut stats = EvalStats {
        rounds: 1,
        ..EvalStats::default()
    };
    // Shared scratch: the binding vector and bind trail are reused across
    // every pass (a completed search always unwinds its trail, leaving the
    // binding vector all-unbound), as are the head-tuple and new-fact
    // buffers and — via [`FactStore::clear`] — the delta store itself.
    let mut binding: Vec<Option<Value>> = vec![None; max_vars];
    let mut trail: Vec<u32> = Vec::with_capacity(max_vars);
    let mut out: Vec<Tuple> = Vec::new();
    let mut new_facts: Vec<(PredId, Tuple)> = Vec::new();
    let mut pending = FactStore::unindexed();

    for (rule, (idb_positions, _)) in program.rules().iter().zip(&rule_plans) {
        if !idb_positions.is_empty() {
            continue;
        }
        let order: Vec<usize> = (0..rule.body.len()).collect();
        out.clear();
        delta_search(
            rule,
            &order,
            &|_| Source::Edb,
            edb,
            &total,
            &delta,
            0,
            &mut binding,
            &mut trail,
            &mut out,
            &mut stats,
        );
        for t in out.drain(..) {
            if total.insert(rule.head.pred, t.clone()) {
                delta.insert(rule.head.pred, t);
                stats.derived += 1;
            }
        }
    }
    stats.delta_sizes.push(stats.derived);
    if let Some(h) = &delta_hist {
        h.record(stats.derived as u64);
    }

    // Semi-naive rounds: one delta-seeded pass per rule per pivot. The
    // pivot literal ranges over the delta — enumerated *first*, so the
    // remaining literals are joined through index probes on the variables
    // the pivot tuple bound — every other literal over the running total
    // (for IDB) or the EDB. Using the full total for non-pivot IDB literals
    // may rederive facts but never misses a new combination, because any
    // new derivation uses at least one delta tuple.
    while delta.total() > 0 {
        stats.rounds += 1;
        new_facts.clear();
        for (rule, (idb_positions, orders)) in program.rules().iter().zip(&rule_plans) {
            for (k, &pivot) in idb_positions.iter().enumerate() {
                // An empty pivot delta admits no satisfaction: skip the
                // pass without touching the other literals at all.
                if delta.is_empty(rule.body[pivot].pred) {
                    continue;
                }
                out.clear();
                delta_search(
                    rule,
                    &orders[k],
                    &|i| {
                        if !is_idb(rule.body[i].pred) {
                            Source::Edb
                        } else if i == pivot {
                            Source::Delta
                        } else {
                            Source::Total
                        }
                    },
                    edb,
                    &total,
                    &delta,
                    0,
                    &mut binding,
                    &mut trail,
                    &mut out,
                    &mut stats,
                );
                for t in out.drain(..) {
                    if !total.contains(rule.head.pred, &t) {
                        new_facts.push((rule.head.pred, t));
                    }
                }
            }
        }
        // The new facts become the next delta, deduplicated against the
        // total — preserving the invariant that the delta is disjoint from
        // the previous total while delta ∪ total stays closed.
        std::mem::swap(&mut delta, &mut pending);
        delta.clear();
        let mut added = 0usize;
        for (pred, t) in new_facts.drain(..) {
            if total.insert(pred, t.clone()) {
                delta.insert(pred, t);
                stats.derived += 1;
                added += 1;
            }
        }
        stats.delta_sizes.push(added);
        if let Some(h) = &delta_hist {
            h.record(added as u64);
        }
    }

    (total, stats)
}

/// The delta-join enumeration order for one `(rule, pivot)` pass: the pivot
/// literal first, then greedily the lowest-index remaining literal sharing
/// a variable with the literals already placed (so its probe has a bound
/// column), falling back to the lowest-index remaining literal when the
/// body is variable-disconnected.
fn pivot_order(rule: &Rule, pivot: usize) -> Vec<usize> {
    let n = rule.body.len();
    let vars_of = |i: usize| rule.body[i].terms.iter().filter_map(DTerm::as_var);
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: HashSet<u32> = HashSet::new();
    order.push(pivot);
    used[pivot] = true;
    bound.extend(vars_of(pivot));
    while order.len() < n {
        let next = (0..n)
            .find(|&i| !used[i] && vars_of(i).any(|v| bound.contains(&v)))
            .or_else(|| (0..n).find(|&i| !used[i]))
            .expect("unplaced literals remain");
        order.push(next);
        used[next] = true;
        bound.extend(vars_of(next));
    }
    order
}

/// The full-join oracle: the evaluator [`evaluate`] replaced, kept verbatim
/// as its differential-testing reference. Bodies are enumerated in literal
/// order from the full extents (delta only at the pivot), with a fresh
/// bound-variable list per candidate. Answers and every [`EvalStats`]
/// counter — including per-round delta sizes — match [`evaluate`] exactly;
/// only internal tuple production order differs.
pub fn evaluate_full_join(program: &Program, edb: &FactStore) -> (FactStore, EvalStats) {
    let idb_preds = program.idb_predicates();
    let is_idb = |p: PredId| idb_preds.contains(&p);

    let mut total = FactStore::new();
    let mut delta = FactStore::new();
    let mut stats = EvalStats {
        rounds: 1,
        ..EvalStats::default()
    };
    for rule in program.rules() {
        if rule.body.iter().any(|l| is_idb(l.pred)) {
            continue;
        }
        let mut out = Vec::new();
        apply_rule(
            rule,
            |_| Source::Edb,
            edb,
            &total,
            &delta,
            &mut out,
            &mut stats,
        );
        for t in out {
            if total.insert(rule.head.pred, t.clone()) {
                delta.insert(rule.head.pred, t);
                stats.derived += 1;
            }
        }
    }
    stats.delta_sizes.push(stats.derived);

    while delta.total() > 0 {
        stats.rounds += 1;
        let mut new_facts: Vec<(PredId, Tuple)> = Vec::new();
        for rule in program.rules() {
            let idb_positions: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, l)| is_idb(l.pred))
                .map(|(i, _)| i)
                .collect();
            if idb_positions.is_empty() {
                continue;
            }
            for &pivot in &idb_positions {
                let mut out = Vec::new();
                apply_rule(
                    rule,
                    |i| {
                        if !is_idb(rule.body[i].pred) {
                            Source::Edb
                        } else if i == pivot {
                            Source::Delta
                        } else {
                            Source::Total
                        }
                    },
                    edb,
                    &total,
                    &delta,
                    &mut out,
                    &mut stats,
                );
                for t in out {
                    if !total.contains(rule.head.pred, &t) {
                        new_facts.push((rule.head.pred, t));
                    }
                }
            }
        }
        delta = FactStore::new();
        let mut added = 0usize;
        for (pred, t) in new_facts {
            if total.insert(pred, t.clone()) {
                delta.insert(pred, t);
                stats.derived += 1;
                added += 1;
            }
        }
        stats.delta_sizes.push(added);
    }

    (total, stats)
}

/// Evaluates a single rule once against `facts`, returning all derivable
/// head instances (with duplicates possible when several body assignments
/// agree on the head). Used by the plan executor for the final answer
/// computation.
///
/// The body is decomposed into variable-connected components first:
/// components that bind no head variable are reduced to satisfiability
/// checks, and the remaining components are enumerated independently and
/// combined. This keeps disconnected bodies (e.g. a query with a cartesian
/// guard atom) from blowing up into a product enumeration.
pub fn rule_head_instances(rule: &Rule, facts: &FactStore) -> Vec<Tuple> {
    let components = body_components(rule);
    let head_vars: HashSet<u32> = rule.head.terms.iter().filter_map(DTerm::as_var).collect();

    // Guard components (no head variable): pure satisfiability.
    let mut head_components: Vec<&BodyComponent> = Vec::new();
    for component in &components {
        if component.vars.is_disjoint(&head_vars) {
            if !rule_body_satisfiable(rule, &component.literals, facts) {
                return Vec::new();
            }
        } else {
            head_components.push(component);
        }
    }

    // Enumerate each head component once, projecting onto its head vars.
    let mut projections: Vec<Vec<Vec<(u32, Value)>>> = Vec::new();
    for component in &head_components {
        let relevant: Vec<u32> = component.vars.intersection(&head_vars).copied().collect();
        let rows = project_component(&relevant, |on_row| {
            enumerate_subset(rule, &component.literals, facts, on_row);
        });
        if rows.is_empty() {
            return Vec::new();
        }
        projections.push(rows);
    }

    // Combine the component projections into head instances.
    let mut out = Vec::new();
    combine_projections(rule.var_names.len(), &projections, |assignment| {
        out.push(instantiate(&rule.head, assignment));
    });
    out
}

/// Collects the deduplicated projections of a component's satisfying
/// assignments onto the `relevant` variables. `enumerate` must invoke its
/// callback once per satisfying assignment (a full binding vector indexed
/// by variable id) and stop when the callback returns `false`. Rows are
/// sorted by variable id and returned in first-encounter order.
///
/// Shared by this module's [`rule_head_instances`] and the engine's
/// conjunctive-query evaluator, which enumerate different representations
/// (Datalog rules vs. query atoms) but project head components identically.
pub fn project_component(
    relevant: &[u32],
    enumerate: impl FnOnce(&mut dyn FnMut(&[Option<Value>]) -> bool),
) -> Vec<Vec<(u32, Value)>> {
    let mut seen: HashSet<Vec<(u32, Value)>> = HashSet::new();
    let mut rows = Vec::new();
    enumerate(&mut |binding| {
        let mut row: Vec<(u32, Value)> = relevant
            .iter()
            .map(|&v| {
                (
                    v,
                    binding[v as usize].expect("component variables are bound"),
                )
            })
            .collect();
        row.sort_by_key(|(v, _)| *v);
        if seen.insert(row.clone()) {
            rows.push(row);
        }
        true
    });
    rows
}

/// Combines per-component head projections (as produced by
/// [`project_component`]) into full assignments: an odometer walks every
/// combination of one row per component, merges it into a binding vector of
/// `var_count` slots, and hands it to `emit`. With no components a single
/// all-unbound assignment is emitted, matching the semantics of a rule or
/// query whose head needs nothing (boolean heads).
pub fn combine_projections(
    var_count: usize,
    projections: &[Vec<Vec<(u32, Value)>>],
    mut emit: impl FnMut(&[Option<Value>]),
) {
    debug_assert!(projections.iter().all(|rows| !rows.is_empty()));
    let mut choice = vec![0usize; projections.len()];
    loop {
        let mut assignment: Vec<Option<Value>> = vec![None; var_count];
        for (c, rows) in projections.iter().enumerate() {
            for (v, value) in &rows[choice[c]] {
                assignment[*v as usize] = Some(*value);
            }
        }
        emit(&assignment);
        // Advance the odometer over component choices.
        let mut pos = 0;
        loop {
            if pos == choice.len() {
                return;
            }
            choice[pos] += 1;
            if choice[pos] < projections[pos].len() {
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
    }
}

/// A variable-connected group of body literals.
struct BodyComponent {
    literals: Vec<usize>,
    vars: HashSet<u32>,
}

/// Splits a rule body into variable-connected components (ground literals
/// each form their own component).
fn body_components(rule: &Rule) -> Vec<BodyComponent> {
    let n = rule.body.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let mut owner: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (i, lit) in rule.body.iter().enumerate() {
        for v in lit.terms.iter().filter_map(DTerm::as_var) {
            match owner.get(&v) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    parent[a] = b;
                }
                None => {
                    owner.insert(v, i);
                }
            }
        }
    }
    let mut components: std::collections::HashMap<usize, BodyComponent> =
        std::collections::HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        let entry = components.entry(root).or_insert_with(|| BodyComponent {
            literals: Vec::new(),
            vars: HashSet::new(),
        });
        entry.literals.push(i);
        entry
            .vars
            .extend(rule.body[i].terms.iter().filter_map(DTerm::as_var));
    }
    let mut out: Vec<BodyComponent> = components.into_values().collect();
    out.sort_by_key(|c| c.literals[0]);
    out
}

/// Enumerates all satisfying assignments of the selected body literals;
/// `on_match` returns `false` to stop.
fn enumerate_subset(
    rule: &Rule,
    subset: &[usize],
    facts: &FactStore,
    on_match: &mut dyn FnMut(&[Option<Value>]) -> bool,
) {
    let mut binding: Vec<Option<Value>> = vec![None; rule.var_names.len()];
    enumerate_search(rule, subset, facts, 0, &mut binding, on_match);
}

fn enumerate_search(
    rule: &Rule,
    subset: &[usize],
    facts: &FactStore,
    depth: usize,
    binding: &mut Vec<Option<Value>>,
    on_match: &mut dyn FnMut(&[Option<Value>]) -> bool,
) -> bool {
    let Some(&lit_idx) = subset.get(depth) else {
        return on_match(binding);
    };
    let lit = &rule.body[lit_idx];
    let bound_col = lit.terms.iter().enumerate().find_map(|(col, t)| match t {
        DTerm::Const(c) => Some((col, *c)),
        DTerm::Var(v) => binding[*v as usize].map(|val| (col, val)),
    });
    // Borrowed posting-list iteration: no per-probe allocation.
    'cand: for pos in facts.candidates(lit.pred, bound_col) {
        let tuple = &facts.tuples(lit.pred)[pos];
        let mut newly_bound: Vec<u32> = Vec::new();
        for (t, v) in lit.terms.iter().zip(tuple.values()) {
            match t {
                DTerm::Const(c) => {
                    if c != v {
                        unbind(binding, &newly_bound);
                        continue 'cand;
                    }
                }
                DTerm::Var(var) => match &binding[*var as usize] {
                    Some(bound) => {
                        if bound != v {
                            unbind(binding, &newly_bound);
                            continue 'cand;
                        }
                    }
                    None => {
                        binding[*var as usize] = Some(*v);
                        newly_bound.push(*var);
                    }
                },
            }
        }
        let keep = enumerate_search(rule, subset, facts, depth + 1, binding, on_match);
        unbind(binding, &newly_bound);
        if !keep {
            return false;
        }
    }
    true
}

/// Evaluates a single rule with body literal `pinned_idx` restricted to the
/// tuples in `pinned` (all other literals range over `facts`). This is the
/// delta step of incremental answer computation: when a cache gains
/// `pinned` new tuples, the new answers are exactly the head instances
/// derivable through them.
pub fn rule_head_instances_pinned(
    rule: &Rule,
    facts: &FactStore,
    pinned_idx: usize,
    pinned: &FactStore,
) -> Vec<Tuple> {
    let mut stats = EvalStats::default();
    let mut out = Vec::new();
    apply_rule(
        rule,
        |i| {
            if i == pinned_idx {
                Source::Delta
            } else {
                Source::Edb
            }
        },
        facts,
        facts,
        pinned,
        &mut out,
        &mut stats,
    );
    out
}

/// `true` when the conjunction of the body literals selected by `subset`
/// (indexes into `rule.body`) is satisfiable over `facts` — the §IV early
/// non-emptiness test. An empty subset is trivially satisfiable. Stops at
/// the first witness.
///
/// Variable-disconnected parts of the subset are checked independently, so
/// an unsatisfiable component is discovered without iterating the others.
pub fn rule_body_satisfiable(rule: &Rule, subset: &[usize], facts: &FactStore) -> bool {
    if subset.is_empty() {
        return true;
    }
    let in_subset: HashSet<usize> = subset.iter().copied().collect();
    for component in body_components(rule) {
        let part: Vec<usize> = component
            .literals
            .iter()
            .copied()
            .filter(|i| in_subset.contains(i))
            .collect();
        if part.is_empty() {
            continue;
        }
        let mut binding: Vec<Option<Value>> = vec![None; rule.var_names.len()];
        if !satisfiable_search(rule, &part, facts, 0, &mut binding) {
            return false;
        }
    }
    true
}

fn satisfiable_search(
    rule: &Rule,
    subset: &[usize],
    facts: &FactStore,
    depth: usize,
    binding: &mut Vec<Option<Value>>,
) -> bool {
    let Some(&lit_idx) = subset.get(depth) else {
        return true;
    };
    let lit = &rule.body[lit_idx];
    let bound_col = lit.terms.iter().enumerate().find_map(|(col, t)| match t {
        DTerm::Const(c) => Some((col, *c)),
        DTerm::Var(v) => binding[*v as usize].map(|val| (col, val)),
    });
    'cand: for pos in facts.candidates(lit.pred, bound_col) {
        let tuple = &facts.tuples(lit.pred)[pos];
        let mut newly_bound: Vec<u32> = Vec::new();
        for (t, v) in lit.terms.iter().zip(tuple.values()) {
            match t {
                DTerm::Const(c) => {
                    if c != v {
                        unbind(binding, &newly_bound);
                        continue 'cand;
                    }
                }
                DTerm::Var(var) => match &binding[*var as usize] {
                    Some(bound) => {
                        if bound != v {
                            unbind(binding, &newly_bound);
                            continue 'cand;
                        }
                    }
                    None => {
                        binding[*var as usize] = Some(*v);
                        newly_bound.push(*var);
                    }
                },
            }
        }
        if satisfiable_search(rule, subset, facts, depth + 1, binding) {
            unbind(binding, &newly_bound);
            return true;
        }
        unbind(binding, &newly_bound);
    }
    false
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Source {
    Edb,
    Total,
    Delta,
}

/// Enumerates all satisfactions of `rule`'s body and collects the resulting
/// head tuples into `out`. `source_of(i)` selects which store body literal
/// `i` ranges over.
fn apply_rule(
    rule: &Rule,
    source_of: impl Fn(usize) -> Source,
    edb: &FactStore,
    total: &FactStore,
    delta: &FactStore,
    out: &mut Vec<Tuple>,
    stats: &mut EvalStats,
) {
    let mut binding: Vec<Option<Value>> = vec![None; rule.var_names.len()];
    search_body(
        rule,
        &source_of,
        edb,
        total,
        delta,
        0,
        &mut binding,
        out,
        stats,
    );
}

#[allow(clippy::too_many_arguments)]
fn search_body(
    rule: &Rule,
    source_of: &impl Fn(usize) -> Source,
    edb: &FactStore,
    total: &FactStore,
    delta: &FactStore,
    depth: usize,
    binding: &mut Vec<Option<Value>>,
    out: &mut Vec<Tuple>,
    stats: &mut EvalStats,
) {
    if depth == rule.body.len() {
        stats.derivations += 1;
        out.push(instantiate(&rule.head, binding));
        return;
    }
    let lit = &rule.body[depth];
    let store = match source_of(depth) {
        Source::Edb => edb,
        Source::Total => total,
        Source::Delta => delta,
    };

    // Find a bound column to drive an index lookup, if any.
    let bound_col = lit.terms.iter().enumerate().find_map(|(col, t)| match t {
        DTerm::Const(c) => Some((col, *c)),
        DTerm::Var(v) => binding[*v as usize].map(|val| (col, val)),
    });

    'cand: for pos in store.candidates(lit.pred, bound_col) {
        let tuple = &store.tuples(lit.pred)[pos];
        let mut newly_bound: Vec<u32> = Vec::new();
        for (t, v) in lit.terms.iter().zip(tuple.values()) {
            match t {
                DTerm::Const(c) => {
                    if c != v {
                        unbind(binding, &newly_bound);
                        continue 'cand;
                    }
                }
                DTerm::Var(var) => match &binding[*var as usize] {
                    Some(bound) => {
                        if bound != v {
                            unbind(binding, &newly_bound);
                            continue 'cand;
                        }
                    }
                    None => {
                        binding[*var as usize] = Some(*v);
                        newly_bound.push(*var);
                    }
                },
            }
        }
        search_body(
            rule,
            source_of,
            edb,
            total,
            delta,
            depth + 1,
            binding,
            out,
            stats,
        );
        unbind(binding, &newly_bound);
    }
}

/// The delta-join body search: enumerates the literals in `order` (pivot
/// first, as produced by [`pivot_order`]), each over the store chosen by
/// `source_of(literal_index)`, and collects head instances into `out`.
///
/// Unlike [`search_body`], newly bound variables go onto a shared `trail`
/// instead of a per-candidate vector: a failed or exhausted candidate
/// unwinds the trail to its entry mark, so the inner loop performs no
/// allocation per candidate. A completed call leaves `binding` all-unbound
/// and `trail` empty, ready for the next pass.
#[allow(clippy::too_many_arguments)]
fn delta_search(
    rule: &Rule,
    order: &[usize],
    source_of: &impl Fn(usize) -> Source,
    edb: &FactStore,
    total: &FactStore,
    delta: &FactStore,
    depth: usize,
    binding: &mut Vec<Option<Value>>,
    trail: &mut Vec<u32>,
    out: &mut Vec<Tuple>,
    stats: &mut EvalStats,
) {
    let Some(&lit_idx) = order.get(depth) else {
        stats.derivations += 1;
        out.push(instantiate(&rule.head, binding));
        return;
    };
    let lit = &rule.body[lit_idx];
    let store = match source_of(lit_idx) {
        Source::Edb => edb,
        Source::Total => total,
        Source::Delta => delta,
    };

    // Find a bound column to drive an index probe, if any.
    let bound_col = lit.terms.iter().enumerate().find_map(|(col, t)| match t {
        DTerm::Const(c) => Some((col, *c)),
        DTerm::Var(v) => binding[*v as usize].map(|val| (col, val)),
    });

    let mark = trail.len();
    'cand: for pos in store.candidates(lit.pred, bound_col) {
        let tuple = &store.tuples(lit.pred)[pos];
        for (t, v) in lit.terms.iter().zip(tuple.values()) {
            match t {
                DTerm::Const(c) => {
                    if c != v {
                        unwind(binding, trail, mark);
                        continue 'cand;
                    }
                }
                DTerm::Var(var) => match &binding[*var as usize] {
                    Some(bound) => {
                        if bound != v {
                            unwind(binding, trail, mark);
                            continue 'cand;
                        }
                    }
                    None => {
                        binding[*var as usize] = Some(*v);
                        trail.push(*var);
                    }
                },
            }
        }
        delta_search(
            rule,
            order,
            source_of,
            edb,
            total,
            delta,
            depth + 1,
            binding,
            trail,
            out,
            stats,
        );
        unwind(binding, trail, mark);
    }
}

/// Unbinds every variable the trail recorded past `mark`, truncating the
/// trail back to it.
fn unwind(binding: &mut [Option<Value>], trail: &mut Vec<u32>, mark: usize) {
    for v in trail.drain(mark..) {
        binding[v as usize] = None;
    }
}

fn unbind(binding: &mut [Option<Value>], vars: &[u32]) {
    for v in vars {
        binding[*v as usize] = None;
    }
}

fn instantiate(head: &Literal, binding: &[Option<Value>]) -> Tuple {
    head.terms
        .iter()
        .map(|t| match t {
            DTerm::Const(c) => *c,
            DTerm::Var(v) => {
                binding[*v as usize].expect("range restriction guarantees head variables are bound")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_catalog::tuple;

    fn v(i: u32) -> DTerm {
        DTerm::Var(i)
    }

    fn transitive_closure() -> (Program, PredId, PredId) {
        let mut p = Program::new();
        let edge = p.predicate("edge", 2).unwrap();
        let path = p.predicate("path", 2).unwrap();
        p.add_rule(Rule::new(
            Literal::new(path, vec![v(0), v(1)]),
            vec![Literal::new(edge, vec![v(0), v(1)])],
            vec!["X".into(), "Y".into()],
        ))
        .unwrap();
        p.add_rule(Rule::new(
            Literal::new(path, vec![v(0), v(2)]),
            vec![
                Literal::new(edge, vec![v(0), v(1)]),
                Literal::new(path, vec![v(1), v(2)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into()],
        ))
        .unwrap();
        (p, edge, path)
    }

    #[test]
    fn chain_closure() {
        let (p, edge, path) = transitive_closure();
        let mut edb = FactStore::new();
        edb.extend(edge, (1..5).map(|i| tuple![i, i + 1]));
        let (idb, stats) = evaluate(&p, &edb);
        // 4+3+2+1 = 10 pairs.
        assert_eq!(idb.len(path), 10);
        assert!(idb.contains(path, &tuple![1, 5]));
        assert!(!idb.contains(path, &tuple![5, 1]));
        assert_eq!(stats.derived, 10);
        assert!(stats.rounds >= 4);
    }

    #[test]
    fn cycle_closure_terminates() {
        let (p, edge, path) = transitive_closure();
        let mut edb = FactStore::new();
        edb.extend(edge, [tuple![1, 2], tuple![2, 3], tuple![3, 1]]);
        let (idb, _) = evaluate(&p, &edb);
        // All 9 ordered pairs over {1,2,3}.
        assert_eq!(idb.len(path), 9);
    }

    #[test]
    fn facts_seed_the_fixpoint() {
        let mut p = Program::new();
        let ra = p.predicate("ra", 1).unwrap();
        let q = p.predicate("q", 1).unwrap();
        p.add_rule(Rule::new(
            Literal::new(ra, vec![DTerm::Const(Value::from("a"))]),
            vec![],
            vec![],
        ))
        .unwrap();
        p.add_rule(Rule::new(
            Literal::new(q, vec![v(0)]),
            vec![Literal::new(ra, vec![v(0)])],
            vec!["X".into()],
        ))
        .unwrap();
        let (idb, _) = evaluate(&p, &FactStore::new());
        assert_eq!(idb.tuples(q), &[tuple!["a"]]);
    }

    #[test]
    fn constants_in_bodies_filter() {
        let mut p = Program::new();
        let r = p.predicate("r", 2).unwrap();
        let q = p.predicate("q", 1).unwrap();
        // q(X) ← r(X, 'keep')
        p.add_rule(Rule::new(
            Literal::new(q, vec![v(0)]),
            vec![Literal::new(
                r,
                vec![v(0), DTerm::Const(Value::from("keep"))],
            )],
            vec!["X".into()],
        ))
        .unwrap();
        let mut edb = FactStore::new();
        edb.extend(r, [tuple![1, "keep"], tuple![2, "drop"], tuple![3, "keep"]]);
        let (idb, _) = evaluate(&p, &edb);
        assert_eq!(idb.len(q), 2);
        assert!(idb.contains(q, &tuple![1]));
        assert!(idb.contains(q, &tuple![3]));
    }

    #[test]
    fn join_through_shared_variable() {
        let mut p = Program::new();
        let r = p.predicate("r", 2).unwrap();
        let s = p.predicate("s", 2).unwrap();
        let q = p.predicate("q", 2).unwrap();
        // q(X,Z) ← r(X,Y), s(Y,Z)
        p.add_rule(Rule::new(
            Literal::new(q, vec![v(0), v(2)]),
            vec![
                Literal::new(r, vec![v(0), v(1)]),
                Literal::new(s, vec![v(1), v(2)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into()],
        ))
        .unwrap();
        let mut edb = FactStore::new();
        edb.extend(r, [tuple![1, 10], tuple![2, 20]]);
        edb.extend(s, [tuple![10, 100], tuple![10, 101], tuple![30, 300]]);
        let (idb, _) = evaluate(&p, &edb);
        assert_eq!(idb.len(q), 2);
        assert!(idb.contains(q, &tuple![1, 100]));
        assert!(idb.contains(q, &tuple![1, 101]));
    }

    #[test]
    fn empty_edb_derives_nothing_but_facts() {
        let (p, _, path) = transitive_closure();
        let (idb, stats) = evaluate(&p, &FactStore::new());
        assert_eq!(idb.len(path), 0);
        assert_eq!(stats.derived, 0);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn repeated_variable_in_literal_requires_equality() {
        let mut p = Program::new();
        let r = p.predicate("r", 2).unwrap();
        let q = p.predicate("q", 1).unwrap();
        // q(X) ← r(X, X)
        p.add_rule(Rule::new(
            Literal::new(q, vec![v(0)]),
            vec![Literal::new(r, vec![v(0), v(0)])],
            vec!["X".into()],
        ))
        .unwrap();
        let mut edb = FactStore::new();
        edb.extend(r, [tuple![1, 1], tuple![1, 2], tuple![3, 3]]);
        let (idb, _) = evaluate(&p, &edb);
        assert_eq!(idb.len(q), 2);
    }

    #[test]
    fn delta_join_matches_full_join_oracle() {
        let (p, edge, path) = transitive_closure();
        let mut edb = FactStore::new();
        edb.extend(edge, (1..8).map(|i| tuple![i, i + 1]));
        edb.insert(edge, tuple![8, 1]); // close the cycle
        let (fast, fast_stats) = evaluate(&p, &edb);
        let (slow, slow_stats) = evaluate_full_join(&p, &edb);
        assert_eq!(fast_stats, slow_stats, "stats incl. delta_sizes match");
        let mut a: Vec<Tuple> = fast.tuples(path).to_vec();
        let mut b: Vec<Tuple> = slow.tuples(path).to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn delta_sizes_align_with_rounds() {
        let (p, edge, _) = transitive_closure();
        let mut edb = FactStore::new();
        edb.extend(edge, (1..5).map(|i| tuple![i, i + 1]));
        let (_, stats) = evaluate(&p, &edb);
        assert_eq!(stats.delta_sizes.len(), stats.rounds);
        assert_eq!(stats.delta_sizes.iter().sum::<usize>(), stats.derived);
        // The final round is the barren one that confirmed the fixpoint.
        assert_eq!(*stats.delta_sizes.last().unwrap(), 0);
        // On a chain the delta shrinks monotonically after initialization.
        let mid = &stats.delta_sizes[..stats.delta_sizes.len() - 1];
        assert!(
            mid.windows(2).all(|w| w[1] <= w[0]),
            "{:?}",
            stats.delta_sizes
        );
    }

    #[test]
    fn mutually_recursive_predicates() {
        let mut p = Program::new();
        let e = p.predicate("e", 1).unwrap();
        let odd = p.predicate("odd", 1).unwrap();
        let even = p.predicate("even", 1).unwrap();
        let succ = p.predicate("succ", 2).unwrap();
        // even(X) ← e(X); odd(Y) ← even(X), succ(X,Y); even(Y) ← odd(X), succ(X,Y)
        p.add_rule(Rule::new(
            Literal::new(even, vec![v(0)]),
            vec![Literal::new(e, vec![v(0)])],
            vec!["X".into()],
        ))
        .unwrap();
        p.add_rule(Rule::new(
            Literal::new(odd, vec![v(1)]),
            vec![
                Literal::new(even, vec![v(0)]),
                Literal::new(succ, vec![v(0), v(1)]),
            ],
            vec!["X".into(), "Y".into()],
        ))
        .unwrap();
        p.add_rule(Rule::new(
            Literal::new(even, vec![v(1)]),
            vec![
                Literal::new(odd, vec![v(0)]),
                Literal::new(succ, vec![v(0), v(1)]),
            ],
            vec!["X".into(), "Y".into()],
        ))
        .unwrap();
        let mut edb = FactStore::new();
        edb.insert(e, tuple![0]);
        edb.extend(succ, (0..6).map(|i| tuple![i, i + 1]));
        let (idb, _) = evaluate(&p, &edb);
        assert_eq!(idb.len(even), 4); // 0, 2, 4, 6
        assert_eq!(idb.len(odd), 3); // 1, 3, 5
    }
}

#[cfg(test)]
mod rule_helper_tests {
    use super::*;
    use toorjah_catalog::tuple;

    fn v(i: u32) -> DTerm {
        DTerm::Var(i)
    }

    fn setup() -> (Program, PredId, PredId, PredId, FactStore) {
        let mut p = Program::new();
        let r = p.predicate("r", 2).unwrap();
        let s = p.predicate("s", 2).unwrap();
        let q = p.predicate("q", 2).unwrap();
        p.add_rule(Rule::new(
            Literal::new(q, vec![v(0), v(2)]),
            vec![
                Literal::new(r, vec![v(0), v(1)]),
                Literal::new(s, vec![v(1), v(2)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into()],
        ))
        .unwrap();
        let mut facts = FactStore::new();
        facts.extend(r, [tuple![1, 10], tuple![2, 20]]);
        facts.extend(s, [tuple![10, 100], tuple![30, 300]]);
        (p, r, s, q, facts)
    }

    #[test]
    fn rule_head_instances_joins() {
        let (p, _, _, _, facts) = setup();
        let heads = rule_head_instances(&p.rules()[0], &facts);
        assert_eq!(heads, vec![tuple![1, 100]]);
    }

    #[test]
    fn body_satisfiability_subsets() {
        let (p, _, _, _, facts) = setup();
        let rule = &p.rules()[0];
        assert!(rule_body_satisfiable(rule, &[], &facts));
        assert!(rule_body_satisfiable(rule, &[0], &facts));
        assert!(rule_body_satisfiable(rule, &[1], &facts));
        assert!(rule_body_satisfiable(rule, &[0, 1], &facts));
    }

    #[test]
    fn body_unsatisfiable_when_join_fails() {
        let (p, r, s, _, _) = setup();
        let rule = &p.rules()[0];
        let mut facts = FactStore::new();
        facts.insert(r, tuple![1, 10]);
        facts.insert(s, tuple![11, 100]);
        assert!(rule_body_satisfiable(rule, &[0], &facts));
        assert!(!rule_body_satisfiable(rule, &[0, 1], &facts));
    }

    #[test]
    fn empty_store_unsatisfiable() {
        let (p, _, _, _, _) = setup();
        let rule = &p.rules()[0];
        assert!(!rule_body_satisfiable(rule, &[0], &FactStore::new()));
        assert!(rule_head_instances(rule, &FactStore::new()).is_empty());
    }
}
