//! Magic-sets rewriting: demand-driven evaluation of bound queries.
//!
//! The paper's access limitations mean queries arrive with *bound* arguments
//! — values are known before the sources are touched — yet a bottom-up
//! fixpoint derives every fact the rules admit and filters afterwards. The
//! magic-sets transformation closes that gap: the program is rewritten so
//! that a fact is derived only when a *demand* for it has propagated down
//! from the query's bound arguments, and the rewritten program still runs
//! through the unmodified semi-naive machinery of [`crate::evaluate`] (magic
//! facts flow through the same delta stores as everything else).
//!
//! The rewrite is the classical one:
//!
//! 1. **Adornment.** Each IDB predicate reached from the query is annotated
//!    with a bound/free pattern per argument (`bf`, `bb`, …). Propagation
//!    follows a *sideways information passing* (SIP) order per rule body —
//!    the same greedy lowest-index-sharing-a-bound-variable order the
//!    semi-naive evaluator's `pivot_order` uses — seeded from the bound head
//!    positions.
//! 2. **Magic predicates.** For each adorned predicate `p^a` a predicate
//!    `magic_<p>_<a>` over the bound positions collects the demanded
//!    bindings: one *guard rule* per IDB body occurrence (demand flows from
//!    the head's magic predicate through the SIP prefix), plus one *seed
//!    fact* for the query's constants.
//! 3. **Guarded rules.** Every original rule for `p^a` gets the magic
//!    literal prepended, so it can only fire for demanded bindings.
//!
//! [`evaluate_demand`] packages the whole pipeline: rewrite, seed, evaluate,
//! and project the adorned facts back onto the original predicates so
//! callers see the same `(FactStore, EvalStats)` shape as [`crate::evaluate`].

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use toorjah_catalog::{Tuple, Value};
use toorjah_obs::Obs;

use crate::{
    evaluate_with_obs, DTerm, DatalogError, EvalStats, FactStore, Literal, PredId, Program, Rule,
};

/// Renders a bound/free mask in the classical notation (`b` = bound,
/// `f` = free), e.g. `[true, false]` → `"bf"`.
pub fn adornment_string(mask: &[bool]) -> String {
    mask.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

/// One `(predicate, adornment)` pair the rewrite materialized.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AdornedPred {
    /// The predicate in the original program.
    pub original: PredId,
    /// Bound/free mask per argument position.
    pub adornment: Vec<bool>,
    /// The adorned predicate in the rewritten program (same arity).
    pub adorned: PredId,
    /// The magic predicate in the rewritten program (arity = bound count).
    pub magic: PredId,
}

/// The result of [`magic_rewrite`]: the rewritten program plus the mapping
/// needed to seed it and to project its answers back.
///
/// The original program's predicates are interned **first, in identical
/// order**, so every original [`PredId`] — in particular every EDB
/// predicate — is stable: the caller's [`FactStore`] works against the
/// rewritten program unchanged.
#[derive(Clone, Debug)]
pub struct MagicRewrite {
    /// The rewritten (adorned + guarded) program.
    pub program: Program,
    /// The adorned query predicate (its facts are the bound answers).
    pub query_adorned: PredId,
    /// The magic predicate demand for the query is seeded into.
    pub query_magic: PredId,
    /// Every `(predicate, adornment)` pair reached from the query, in
    /// demand-propagation order (the query's pair first).
    pub adorned: Vec<AdornedPred>,
}

impl MagicRewrite {
    /// The adorned pairs grouped for display: `(original name, adornment
    /// string)` in propagation order.
    pub fn adornment_summary(&self, original: &Program) -> Vec<(String, String)> {
        self.adorned
            .iter()
            .map(|a| {
                (
                    original.pred(a.original).name.clone(),
                    adornment_string(&a.adornment),
                )
            })
            .collect()
    }
}

/// Why a magic rewrite could not be produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RewriteError {
    /// The bound mask's length differs from the query predicate's arity.
    AdornmentArity {
        /// Query predicate name.
        predicate: String,
        /// The predicate's arity.
        arity: usize,
        /// The mask length supplied.
        got: usize,
    },
    /// The query predicate has no rules (EDB): there is nothing to rewrite.
    QueryNotIdb {
        /// Query predicate name.
        predicate: String,
    },
    /// Rewritten-program construction failed (a bug if it ever fires: the
    /// rewrite preserves arities and range restriction by construction).
    Construction(DatalogError),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::AdornmentArity {
                predicate,
                arity,
                got,
            } => write!(
                f,
                "adornment of length {got} for query predicate {predicate} of arity {arity}"
            ),
            RewriteError::QueryNotIdb { predicate } => {
                write!(f, "query predicate {predicate} has no rules to rewrite")
            }
            RewriteError::Construction(e) => write!(f, "rewritten program rejected: {e}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<DatalogError> for RewriteError {
    fn from(e: DatalogError) -> Self {
        RewriteError::Construction(e)
    }
}

/// Rewrites `program` for demand-driven evaluation of `query` under the
/// bound/free mask `bound` (`true` = the argument will be bound to a
/// constant at evaluation time).
///
/// The caller seeds demand by adding one fact for [`MagicRewrite::query_magic`]
/// over the bound constants — [`evaluate_demand`] does exactly that.
pub fn magic_rewrite(
    program: &Program,
    query: PredId,
    bound: &[bool],
) -> Result<MagicRewrite, RewriteError> {
    let query_pred = program.pred(query);
    if bound.len() != query_pred.arity {
        return Err(RewriteError::AdornmentArity {
            predicate: query_pred.name.clone(),
            arity: query_pred.arity,
            got: bound.len(),
        });
    }
    let idb = program.idb_predicates();
    if !idb.contains(&query) {
        return Err(RewriteError::QueryNotIdb {
            predicate: query_pred.name.clone(),
        });
    }

    // Original predicates first, in identical order: EDB ids stay stable.
    let mut out = Program::new();
    for i in 0..program.pred_count() {
        let p = program.pred(PredId(i as u32));
        out.predicate(&p.name, p.arity)?;
    }

    let mut pairs: HashMap<(PredId, Vec<bool>), (PredId, PredId)> = HashMap::new();
    let mut adorned: Vec<AdornedPred> = Vec::new();
    let mut queue: VecDeque<(PredId, Vec<bool>)> = VecDeque::new();

    let intern_pair = |out: &mut Program,
                       adorned: &mut Vec<AdornedPred>,
                       queue: &mut VecDeque<(PredId, Vec<bool>)>,
                       pairs: &mut HashMap<(PredId, Vec<bool>), (PredId, PredId)>,
                       p: PredId,
                       mask: Vec<bool>|
     -> Result<(PredId, PredId), RewriteError> {
        if let Some(&ids) = pairs.get(&(p, mask.clone())) {
            return Ok(ids);
        }
        let name = &program.pred(p).name;
        let ad = adornment_string(&mask);
        let mut adorned_name = format!("{name}_{ad}");
        while out.pred_id(&adorned_name).is_some() {
            adorned_name.push('_');
        }
        let mut magic_name = format!("magic_{name}_{ad}");
        while out.pred_id(&magic_name).is_some() {
            magic_name.push('_');
        }
        let adorned_id = out.predicate(&adorned_name, program.pred(p).arity)?;
        let magic_id = out.predicate(&magic_name, mask.iter().filter(|&&b| b).count())?;
        pairs.insert((p, mask.clone()), (adorned_id, magic_id));
        adorned.push(AdornedPred {
            original: p,
            adornment: mask.clone(),
            adorned: adorned_id,
            magic: magic_id,
        });
        queue.push_back((p, mask));
        Ok((adorned_id, magic_id))
    };

    let (query_adorned, query_magic) = intern_pair(
        &mut out,
        &mut adorned,
        &mut queue,
        &mut pairs,
        query,
        bound.to_vec(),
    )?;

    while let Some((p, mask)) = queue.pop_front() {
        let (p_adorned, p_magic) = pairs[&(p, mask.clone())];
        for rule in program.rules_for(p) {
            // Head terms at bound positions: the demand the magic literal
            // carries into the body.
            let guard_terms: Vec<DTerm> = rule
                .head
                .terms
                .iter()
                .zip(&mask)
                .filter(|(_, &b)| b)
                .map(|(t, _)| t.clone())
                .collect();
            let mut bound_vars: HashSet<u32> =
                guard_terms.iter().filter_map(DTerm::as_var).collect();

            // SIP: the same greedy order the evaluator's pivot passes use —
            // lowest-index literal sharing a bound variable, falling back to
            // the lowest-index remaining literal — seeded from the bound
            // head variables instead of a pivot literal.
            let order = sip_order(rule, &bound_vars);

            let mut transformed: Vec<Literal> = Vec::with_capacity(rule.body.len());
            for &i in &order {
                let lit = &rule.body[i];
                if idb.contains(&lit.pred) {
                    let lit_mask: Vec<bool> = lit
                        .terms
                        .iter()
                        .map(|t| match t {
                            DTerm::Const(_) => true,
                            DTerm::Var(v) => bound_vars.contains(v),
                        })
                        .collect();
                    let (lit_adorned, lit_magic) = intern_pair(
                        &mut out,
                        &mut adorned,
                        &mut queue,
                        &mut pairs,
                        lit.pred,
                        lit_mask.clone(),
                    )?;
                    // Guard rule: demand for this occurrence flows from the
                    // head's demand through the SIP prefix already placed.
                    let magic_head: Vec<DTerm> = lit
                        .terms
                        .iter()
                        .zip(&lit_mask)
                        .filter(|(_, &b)| b)
                        .map(|(t, _)| t.clone())
                        .collect();
                    let mut magic_body = vec![Literal::new(p_magic, guard_terms.clone())];
                    magic_body.extend(transformed.iter().cloned());
                    out.add_rule(Rule::new(
                        Literal::new(lit_magic, magic_head),
                        magic_body,
                        rule.var_names.clone(),
                    ))?;
                    transformed.push(Literal::new(lit_adorned, lit.terms.clone()));
                } else {
                    transformed.push(lit.clone());
                }
                bound_vars.extend(lit.terms.iter().filter_map(DTerm::as_var));
            }

            // The guarded rule: magic literal first, then the SIP-ordered
            // body with IDB literals adorned.
            let mut body = Vec::with_capacity(transformed.len() + 1);
            body.push(Literal::new(p_magic, guard_terms));
            body.extend(transformed);
            out.add_rule(Rule::new(
                Literal::new(p_adorned, rule.head.terms.clone()),
                body,
                rule.var_names.clone(),
            ))?;
        }
    }

    Ok(MagicRewrite {
        program: out,
        query_adorned,
        query_magic,
        adorned,
    })
}

/// The SIP body order: greedily the lowest-index unplaced literal sharing a
/// variable with the bound set, falling back to the lowest-index unplaced
/// literal; every placed literal's variables become bound. Mirrors the
/// evaluator's `pivot_order`, seeded from the bound head variables.
fn sip_order(rule: &Rule, seed: &HashSet<u32>) -> Vec<usize> {
    let n = rule.body.len();
    let vars_of = |i: usize| rule.body[i].terms.iter().filter_map(DTerm::as_var);
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound = seed.clone();
    while order.len() < n {
        let next = (0..n)
            .find(|&i| !used[i] && vars_of(i).any(|v| bound.contains(&v)))
            .or_else(|| (0..n).find(|&i| !used[i]))
            .expect("unplaced literals remain");
        order.push(next);
        used[next] = true;
        bound.extend(vars_of(next));
    }
    order
}

/// Demand-driven evaluation: derive only what the bound query demands.
///
/// `bindings` has one entry per argument of `query`: `Some(v)` binds the
/// position to the constant `v`, `None` leaves it free. The result store
/// contains, for `query`, **exactly** the full fixpoint's facts matching
/// `bindings`, and for every other demanded predicate a (possibly strict)
/// subset of its full fixpoint facts — undemanded predicates are absent
/// entirely. Predicates never demanded derive nothing: that is the saving.
///
/// Falls back to the plain evaluator — the rewrite is the identity — when
/// no position is bound or when `query` has no rules (its answers then come
/// from the EDB, which this function, like [`crate::evaluate`], does not
/// echo back).
///
/// The returned [`EvalStats`] describe the run that actually happened:
/// `rounds`/`derivations`/`delta_sizes` are the rewritten program's, while
/// `derived` counts the distinct original-predicate facts after projection
/// (so it is comparable to — and at most — the unrewritten run's) and
/// [`EvalStats::magic_facts`] counts the demand facts that drove it.
///
/// ```
/// use toorjah_catalog::{tuple, Value};
/// use toorjah_datalog::{evaluate_demand, DTerm, FactStore, Literal, Program, Rule};
///
/// // Left-linear closure: path(X,Y) ← edge(X,Y); path(X,Z) ← path(X,Y), edge(Y,Z)
/// let mut p = Program::new();
/// let edge = p.predicate("edge", 2).unwrap();
/// let path = p.predicate("path", 2).unwrap();
/// let v = |i| DTerm::Var(i);
/// p.add_rule(Rule::new(
///     Literal::new(path, vec![v(0), v(1)]),
///     vec![Literal::new(edge, vec![v(0), v(1)])],
///     vec!["X".into(), "Y".into()],
/// )).unwrap();
/// p.add_rule(Rule::new(
///     Literal::new(path, vec![v(0), v(2)]),
///     vec![Literal::new(path, vec![v(0), v(1)]), Literal::new(edge, vec![v(1), v(2)])],
///     vec!["X".into(), "Y".into(), "Z".into()],
/// )).unwrap();
/// let mut edb = FactStore::new();
/// edb.extend(edge, (1..5).map(|i| tuple![i, i + 1]));
///
/// // Demand only the paths out of node 1: 4 facts instead of 10.
/// let (idb, stats) = evaluate_demand(&p, &edb, path, &[Some(Value::from(1)), None]).unwrap();
/// assert_eq!(idb.len(path), 4);
/// assert_eq!(stats.derived, 4);
/// assert!(stats.magic_facts >= 1);
/// ```
pub fn evaluate_demand(
    program: &Program,
    edb: &FactStore,
    query: PredId,
    bindings: &[Option<Value>],
) -> Result<(FactStore, EvalStats), RewriteError> {
    evaluate_demand_with_obs(program, edb, query, bindings, Obs::disabled())
}

/// [`evaluate_demand`] with an observability handle: the inner run records
/// `datalog.delta_facts` as usual, and the demand-fact count is added to the
/// `datalog.magic_facts` counter.
pub fn evaluate_demand_with_obs(
    program: &Program,
    edb: &FactStore,
    query: PredId,
    bindings: &[Option<Value>],
    obs: Obs,
) -> Result<(FactStore, EvalStats), RewriteError> {
    let pred = program.pred(query);
    if bindings.len() != pred.arity {
        return Err(RewriteError::AdornmentArity {
            predicate: pred.name.clone(),
            arity: pred.arity,
            got: bindings.len(),
        });
    }
    let mask: Vec<bool> = bindings.iter().map(Option::is_some).collect();
    // Identity cases: nothing is bound (every rule would be guarded by an
    // unconditionally-seeded nullary magic predicate — pure overhead), or
    // the query is EDB (no rules to specialize).
    if mask.iter().all(|&b| !b) || !program.idb_predicates().contains(&query) {
        return Ok(evaluate_with_obs(program, edb, obs));
    }

    let mut rw = magic_rewrite(program, query, &mask)?;
    let seed: Vec<DTerm> = bindings
        .iter()
        .filter_map(|b| b.map(DTerm::Const))
        .collect();
    rw.program.add_rule(Rule::new(
        Literal::new(rw.query_magic, seed),
        vec![],
        vec![],
    ))?;

    let (idb, mut stats) = evaluate_with_obs(&rw.program, edb, obs);

    // Project adorned facts back onto the original predicates. The adorned
    // query predicate may hold facts for recursively demanded bindings
    // beyond the seed; the query projection keeps only the seed's.
    let mut result = FactStore::new();
    for pair in &rw.adorned {
        for t in idb.tuples(pair.adorned) {
            if pair.original == query && !tuple_matches(t, bindings) {
                continue;
            }
            result.insert(pair.original, t.clone());
        }
    }
    let magic_facts: usize = rw.adorned.iter().map(|p| idb.len(p.magic)).sum();
    stats.magic_facts = magic_facts;
    stats.derived = result.total();
    if let Some(c) = obs.counter("datalog.magic_facts") {
        c.add(magic_facts as u64);
    }
    Ok((result, stats))
}

/// Whether a tuple agrees with the bound positions of `bindings`.
fn tuple_matches(t: &Tuple, bindings: &[Option<Value>]) -> bool {
    t.values().iter().zip(bindings).all(|(v, b)| match b {
        Some(bv) => bv == v,
        None => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use toorjah_catalog::tuple;

    fn v(i: u32) -> DTerm {
        DTerm::Var(i)
    }

    /// Left-linear transitive closure: the SIP-friendly form whose magic
    /// set stays at the seed.
    fn left_linear_closure() -> (Program, PredId, PredId) {
        let mut p = Program::new();
        let edge = p.predicate("edge", 2).unwrap();
        let path = p.predicate("path", 2).unwrap();
        p.add_rule(Rule::new(
            Literal::new(path, vec![v(0), v(1)]),
            vec![Literal::new(edge, vec![v(0), v(1)])],
            vec!["X".into(), "Y".into()],
        ))
        .unwrap();
        p.add_rule(Rule::new(
            Literal::new(path, vec![v(0), v(2)]),
            vec![
                Literal::new(path, vec![v(0), v(1)]),
                Literal::new(edge, vec![v(1), v(2)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into()],
        ))
        .unwrap();
        (p, edge, path)
    }

    fn chain_edb(edge: PredId, n: i64) -> FactStore {
        let mut edb = FactStore::new();
        edb.extend(edge, (0..n).map(|i| tuple![i, i + 1]));
        edb
    }

    #[test]
    fn rewrite_names_and_stable_edb_ids() {
        let (p, edge, path) = left_linear_closure();
        let rw = magic_rewrite(&p, path, &[true, false]).unwrap();
        // Original predicates keep their ids.
        assert_eq!(rw.program.pred(edge).name, "edge");
        assert_eq!(rw.program.pred(path).name, "path");
        assert_eq!(rw.program.pred(rw.query_adorned).name, "path_bf");
        assert_eq!(rw.program.pred(rw.query_magic).name, "magic_path_bf");
        assert_eq!(rw.program.pred(rw.query_magic).arity, 1);
        // Left-linear closure under bf demands only path^bf.
        assert_eq!(rw.adorned.len(), 1);
        assert_eq!(
            rw.adornment_summary(&p),
            vec![("path".to_string(), "bf".to_string())]
        );
    }

    #[test]
    fn bound_closure_answers_match_filtered_fixpoint() {
        let (p, edge, path) = left_linear_closure();
        let edb = chain_edb(edge, 20);
        let (full, full_stats) = evaluate(&p, &edb);
        let (demand, demand_stats) =
            evaluate_demand(&p, &edb, path, &[Some(Value::from(0)), None]).unwrap();
        let mut expected: Vec<Tuple> = full
            .tuples(path)
            .iter()
            .filter(|t| t.values()[0] == Value::from(0))
            .cloned()
            .collect();
        let mut got: Vec<Tuple> = demand.tuples(path).to_vec();
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
        assert_eq!(demand_stats.derived, 20);
        // The whole point: strictly fewer derivations than the full run.
        assert!(
            demand_stats.derived < full_stats.derived,
            "{} !< {}",
            demand_stats.derived,
            full_stats.derived
        );
        assert!(demand_stats.derivations < full_stats.derivations);
        // Left-linear + single seed: the magic set is exactly the seed.
        assert_eq!(demand_stats.magic_facts, 1);
    }

    #[test]
    fn all_free_query_is_identity() {
        let (p, edge, path) = left_linear_closure();
        let edb = chain_edb(edge, 6);
        let (full, full_stats) = evaluate(&p, &edb);
        let (demand, demand_stats) = evaluate_demand(&p, &edb, path, &[None, None]).unwrap();
        assert_eq!(demand_stats, full_stats);
        assert_eq!(demand_stats.magic_facts, 0);
        let mut a: Vec<Tuple> = full.tuples(path).to_vec();
        let mut b: Vec<Tuple> = demand.tuples(path).to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn all_bound_query_checks_membership() {
        let (p, edge, path) = left_linear_closure();
        let edb = chain_edb(edge, 10);
        let hit = evaluate_demand(
            &p,
            &edb,
            path,
            &[Some(Value::from(2)), Some(Value::from(7))],
        )
        .unwrap();
        assert_eq!(hit.0.tuples(path), &[tuple![2, 7]]);
        let miss = evaluate_demand(
            &p,
            &edb,
            path,
            &[Some(Value::from(7)), Some(Value::from(2))],
        )
        .unwrap();
        assert!(miss.0.is_empty(path));
        // Membership needs one path^bb chain, not the whole closure.
        assert!(hit.1.derived < 55);
    }

    #[test]
    fn predicate_reached_under_two_adornments() {
        // p is demanded bound through `q(X) ← p(X)` and free through the
        // cartesian-guard rule `q(X) ← u(X), p(Y)` (Y shares nothing, so
        // the SIP cannot bind it): two adornments, two magic predicates.
        let mut p = Program::new();
        let u = p.predicate("u", 1).unwrap();
        let s = p.predicate("s", 1).unwrap();
        let q = p.predicate("q", 1).unwrap();
        let pp = p.predicate("p", 1).unwrap();
        p.add_rule(Rule::new(
            Literal::new(q, vec![v(0)]),
            vec![Literal::new(pp, vec![v(0)])],
            vec!["X".into()],
        ))
        .unwrap();
        p.add_rule(Rule::new(
            Literal::new(q, vec![v(0)]),
            vec![Literal::new(u, vec![v(0)]), Literal::new(pp, vec![v(1)])],
            vec!["X".into(), "Y".into()],
        ))
        .unwrap();
        p.add_rule(Rule::new(
            Literal::new(pp, vec![v(0)]),
            vec![Literal::new(s, vec![v(0)])],
            vec!["X".into()],
        ))
        .unwrap();
        let rw = magic_rewrite(&p, q, &[true]).unwrap();
        let summary = rw.adornment_summary(&p);
        assert_eq!(
            summary,
            vec![
                ("q".to_string(), "b".to_string()),
                ("p".to_string(), "b".to_string()),
                ("p".to_string(), "f".to_string()),
            ]
        );
        // And the answers match the filtered fixpoint through either rule.
        let mut edb = FactStore::new();
        edb.extend(s, [tuple![1], tuple![2]]);
        edb.insert(u, tuple![7]);
        let (full, _) = evaluate(&p, &edb);
        assert!(full.contains(q, &tuple![7]) && full.contains(q, &tuple![1]));
        let via_guard = evaluate_demand(&p, &edb, q, &[Some(Value::from(7))]).unwrap();
        assert_eq!(via_guard.0.tuples(q), &[tuple![7]]);
        let via_p = evaluate_demand(&p, &edb, q, &[Some(Value::from(1))]).unwrap();
        assert_eq!(via_p.0.tuples(q), &[tuple![1]]);
        let miss = evaluate_demand(&p, &edb, q, &[Some(Value::from(9))]).unwrap();
        assert!(miss.0.is_empty(q));
    }

    #[test]
    fn mutual_recursion_rewrites_and_matches() {
        let mut p = Program::new();
        let e = p.predicate("e", 1).unwrap();
        let succ = p.predicate("succ", 2).unwrap();
        let odd = p.predicate("odd", 1).unwrap();
        let even = p.predicate("even", 1).unwrap();
        p.add_rule(Rule::new(
            Literal::new(even, vec![v(0)]),
            vec![Literal::new(e, vec![v(0)])],
            vec!["X".into()],
        ))
        .unwrap();
        p.add_rule(Rule::new(
            Literal::new(odd, vec![v(1)]),
            vec![
                Literal::new(even, vec![v(0)]),
                Literal::new(succ, vec![v(0), v(1)]),
            ],
            vec!["X".into(), "Y".into()],
        ))
        .unwrap();
        p.add_rule(Rule::new(
            Literal::new(even, vec![v(1)]),
            vec![
                Literal::new(odd, vec![v(0)]),
                Literal::new(succ, vec![v(0), v(1)]),
            ],
            vec!["X".into(), "Y".into()],
        ))
        .unwrap();
        let mut edb = FactStore::new();
        edb.insert(e, tuple![0]);
        edb.extend(succ, (0..6).map(|i| tuple![i, i + 1]));
        let (full, _) = evaluate(&p, &edb);
        let (demand, _) = evaluate_demand(&p, &edb, even, &[Some(Value::from(4))]).unwrap();
        assert!(full.contains(even, &tuple![4]));
        assert_eq!(demand.tuples(even), &[tuple![4]]);
    }

    #[test]
    fn constants_in_heads_and_bodies_survive() {
        // q(X) ← r(X, 'keep') with q demanded bound: the body constant is
        // treated as bound during adornment.
        let mut p = Program::new();
        let r = p.predicate("r", 2).unwrap();
        let q = p.predicate("q", 1).unwrap();
        p.add_rule(Rule::new(
            Literal::new(q, vec![v(0)]),
            vec![Literal::new(
                r,
                vec![v(0), DTerm::Const(Value::from("keep"))],
            )],
            vec!["X".into()],
        ))
        .unwrap();
        let mut edb = FactStore::new();
        edb.extend(r, [tuple![1, "keep"], tuple![2, "drop"], tuple![3, "keep"]]);
        let (demand, _) = evaluate_demand(&p, &edb, q, &[Some(Value::from(3))]).unwrap();
        assert_eq!(demand.tuples(q), &[tuple![3]]);
    }

    #[test]
    fn error_paths() {
        let (p, edge, path) = left_linear_closure();
        assert!(matches!(
            magic_rewrite(&p, path, &[true]),
            Err(RewriteError::AdornmentArity { .. })
        ));
        assert!(matches!(
            magic_rewrite(&p, edge, &[true, false]),
            Err(RewriteError::QueryNotIdb { .. })
        ));
        assert!(matches!(
            evaluate_demand(&p, &FactStore::new(), path, &[None]),
            Err(RewriteError::AdornmentArity { .. })
        ));
        // EDB query falls back to plain evaluation instead of erroring.
        let (idb, stats) =
            evaluate_demand(&p, &chain_edb(edge, 3), edge, &[Some(Value::from(0)), None]).unwrap();
        assert_eq!(stats.magic_facts, 0);
        assert!(idb.len(path) > 0);
    }

    #[test]
    fn rewritten_program_renders_guard_rules() {
        let (p, _, path) = left_linear_closure();
        let rw = magic_rewrite(&p, path, &[true, false]).unwrap();
        let text = rw.program.to_string();
        assert!(
            text.contains("path_bf(X, Y) ← magic_path_bf(X), edge(X, Y)"),
            "{text}"
        );
        assert!(
            text.contains("magic_path_bf(X) ← magic_path_bf(X)"),
            "guard for the recursive occurrence: {text}"
        );
        assert!(
            text.contains("path_bf(X, Z) ← magic_path_bf(X), path_bf(X, Y), edge(Y, Z)"),
            "{text}"
        );
    }
}
