//! # toorjah-datalog
//!
//! A small Datalog substrate for the Toorjah reproduction of *"Querying Data
//! under Access Limitations"* (Calì & Martinenghi, ICDE 2008).
//!
//! §IV of the paper expresses ⊂-minimal query plans as Datalog programs with
//! *cache* predicates `r̂⁽ᵏ⁾` and *domain* predicates `s` (Example 7), to be
//! evaluated under the usual least-fixpoint semantics "with a few extra
//! expedients" (the fast-failing strategy, implemented in `toorjah-engine`).
//! This crate provides:
//!
//! * [`Program`], [`Rule`], [`Literal`], [`DTerm`]: positive Datalog ASTs
//!   with interned predicates ([`PredId`]) and per-rule variable names;
//! * [`FactStore`]: indexed fact storage;
//! * [`evaluate`]: bottom-up **semi-naive** least-fixpoint evaluation, used
//!   as the reference semantics the fast-failing executor is tested against
//!   (the paper guarantees both compute the same answer);
//! * [`magic_rewrite`] / [`evaluate_demand`]: magic-sets rewriting and
//!   demand-driven evaluation for bound queries — only demanded tuples are
//!   ever derived, through the same semi-naive machinery;
//! * a pretty-printer matching the paper's rule notation.

#![warn(missing_docs)]

mod ast;
mod error;
mod eval;
mod rewrite;
mod store;

pub use ast::{DTerm, Literal, PredId, Predicate, Program, Rule};
pub use error::DatalogError;
pub use eval::{
    combine_projections, evaluate, evaluate_full_join, evaluate_with_obs, project_component,
    rule_body_satisfiable, rule_head_instances, rule_head_instances_pinned, EvalStats,
};
pub use rewrite::{
    adornment_string, evaluate_demand, evaluate_demand_with_obs, magic_rewrite, AdornedPred,
    MagicRewrite, RewriteError,
};
pub use store::{Candidates, FactStore};
