//! Positive Datalog abstract syntax.

use std::collections::HashMap;
use std::fmt;

use toorjah_catalog::Value;

use crate::DatalogError;

/// Identifier of a predicate symbol inside a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredId(pub u32);

impl PredId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Metadata of a predicate symbol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Predicate {
    /// Display name, e.g. `q`, `r1_hat1`, `s_A`.
    pub name: String,
    /// Fixed arity; all literals over the predicate must match it.
    pub arity: usize,
}

/// A term of a rule: a rule-local variable (index into the rule's variable
/// name table) or a constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum DTerm {
    /// Rule-local variable.
    Var(u32),
    /// Constant.
    Const(Value),
}

impl DTerm {
    /// The variable index, if a variable.
    pub fn as_var(&self) -> Option<u32> {
        match self {
            DTerm::Var(v) => Some(*v),
            DTerm::Const(_) => None,
        }
    }

    /// The constant, if a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            DTerm::Var(_) => None,
            DTerm::Const(c) => Some(c),
        }
    }
}

/// A literal `p(t1,…,tn)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Literal {
    /// The predicate symbol.
    pub pred: PredId,
    /// Terms in positional order.
    pub terms: Vec<DTerm>,
}

impl Literal {
    /// Creates a literal.
    pub fn new(pred: PredId, terms: Vec<DTerm>) -> Self {
        Literal { pred, terms }
    }
}

/// A rule `head ← body`. A rule with an empty body and a ground head is a
/// *fact* (e.g. the paper's `ra(a) ←`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head literal.
    pub head: Literal,
    /// Body literals (conjunction); may be empty for facts.
    pub body: Vec<Literal>,
    /// Names of the rule-local variables, indexed by [`DTerm::Var`] payload.
    pub var_names: Vec<String>,
}

impl Rule {
    /// Creates a rule.
    pub fn new(head: Literal, body: Vec<Literal>, var_names: Vec<String>) -> Self {
        Rule {
            head,
            body,
            var_names,
        }
    }

    /// `true` when the rule has an empty body.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// All head variables occur in the body (range restriction). Facts must
    /// have ground heads.
    pub fn is_range_restricted(&self) -> bool {
        self.head.terms.iter().all(|t| match t {
            DTerm::Const(_) => true,
            DTerm::Var(v) => self
                .body
                .iter()
                .any(|l| l.terms.iter().any(|u| u.as_var() == Some(*v))),
        })
    }
}

/// A positive Datalog program: interned predicates plus rules.
///
/// Predicates are partitioned implicitly: a predicate occurring in some rule
/// head is **intensional** (IDB); all others are **extensional** (EDB) and
/// must be supplied by a [`crate::FactStore`] at evaluation time.
#[derive(Clone, Default, Debug)]
pub struct Program {
    preds: Vec<Predicate>,
    by_name: HashMap<String, PredId>,
    rules: Vec<Rule>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a predicate symbol, validating a consistent arity.
    pub fn predicate(&mut self, name: &str, arity: usize) -> Result<PredId, DatalogError> {
        if let Some(&id) = self.by_name.get(name) {
            let existing = &self.preds[id.index()];
            if existing.arity != arity {
                return Err(DatalogError::ArityConflict {
                    predicate: name.to_string(),
                    first: existing.arity,
                    second: arity,
                });
            }
            return Ok(id);
        }
        let id = PredId(self.preds.len() as u32);
        self.preds.push(Predicate {
            name: name.to_string(),
            arity,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a predicate by name.
    pub fn pred_id(&self, name: &str) -> Option<PredId> {
        self.by_name.get(name).copied()
    }

    /// Predicate metadata.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this program.
    pub fn pred(&self, id: PredId) -> &Predicate {
        &self.preds[id.index()]
    }

    /// Number of interned predicates.
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// Adds a rule after validating arities and range restriction.
    pub fn add_rule(&mut self, rule: Rule) -> Result<(), DatalogError> {
        for lit in std::iter::once(&rule.head).chain(rule.body.iter()) {
            let pred = &self.preds[lit.pred.index()];
            if lit.terms.len() != pred.arity {
                return Err(DatalogError::LiteralArity {
                    predicate: pred.name.clone(),
                    expected: pred.arity,
                    got: lit.terms.len(),
                });
            }
        }
        if !rule.is_range_restricted() {
            let pred = &self.preds[rule.head.pred.index()];
            return Err(DatalogError::NotRangeRestricted {
                predicate: pred.name.clone(),
            });
        }
        self.rules.push(rule);
        Ok(())
    }

    /// All rules, in insertion order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Rules whose head is `pred`.
    pub fn rules_for(&self, pred: PredId) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(move |r| r.head.pred == pred)
    }

    /// Predicates that occur in some rule head (IDB).
    pub fn idb_predicates(&self) -> Vec<PredId> {
        let mut out: Vec<PredId> = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.head.pred) {
                out.push(r.head.pred);
            }
        }
        out
    }

    /// Predicates that never occur in a rule head (EDB).
    pub fn edb_predicates(&self) -> Vec<PredId> {
        let idb = self.idb_predicates();
        (0..self.preds.len() as u32)
            .map(PredId)
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// Renders a single rule in the paper's notation.
    pub fn render_rule(&self, rule: &Rule) -> String {
        let mut s = String::new();
        self.render_literal(&mut s, &rule.head, &rule.var_names);
        s.push_str(" ← ");
        for (i, lit) in rule.body.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            self.render_literal(&mut s, lit, &rule.var_names);
        }
        if rule.body.is_empty() {
            // Facts render as `ra('a') ←` like the paper's Example 7.
            while s.ends_with(' ') {
                s.pop();
            }
        }
        s
    }

    fn render_literal(&self, out: &mut String, lit: &Literal, var_names: &[String]) {
        out.push_str(&self.preds[lit.pred.index()].name);
        out.push('(');
        for (i, t) in lit.terms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match t {
                DTerm::Var(v) => out.push_str(
                    var_names
                        .get(*v as usize)
                        .map(String::as_str)
                        .unwrap_or("?"),
                ),
                DTerm::Const(c) => out.push_str(&c.to_string()),
            }
        }
        out.push(')');
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            f.write_str(&self.render_rule(rule))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_program() -> (Program, PredId, PredId) {
        let mut p = Program::new();
        let edge = p.predicate("edge", 2).unwrap();
        let path = p.predicate("path", 2).unwrap();
        // path(X,Y) ← edge(X,Y)
        p.add_rule(Rule::new(
            Literal::new(path, vec![DTerm::Var(0), DTerm::Var(1)]),
            vec![Literal::new(edge, vec![DTerm::Var(0), DTerm::Var(1)])],
            vec!["X".into(), "Y".into()],
        ))
        .unwrap();
        // path(X,Z) ← edge(X,Y), path(Y,Z)
        p.add_rule(Rule::new(
            Literal::new(path, vec![DTerm::Var(0), DTerm::Var(2)]),
            vec![
                Literal::new(edge, vec![DTerm::Var(0), DTerm::Var(1)]),
                Literal::new(path, vec![DTerm::Var(1), DTerm::Var(2)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into()],
        ))
        .unwrap();
        (p, edge, path)
    }

    #[test]
    fn predicates_intern_with_arity_check() {
        let mut p = Program::new();
        let a = p.predicate("p", 2).unwrap();
        assert_eq!(p.predicate("p", 2).unwrap(), a);
        assert!(matches!(
            p.predicate("p", 3),
            Err(DatalogError::ArityConflict { .. })
        ));
        assert_eq!(p.pred(a).name, "p");
        assert_eq!(p.pred_id("p"), Some(a));
        assert_eq!(p.pred_id("zz"), None);
    }

    #[test]
    fn idb_edb_partition() {
        let (p, edge, path) = edge_program();
        assert_eq!(p.idb_predicates(), vec![path]);
        assert_eq!(p.edb_predicates(), vec![edge]);
    }

    #[test]
    fn literal_arity_validated() {
        let mut p = Program::new();
        let q = p.predicate("q", 1).unwrap();
        let bad = Rule::new(Literal::new(q, vec![]), vec![], vec![]);
        assert!(matches!(
            p.add_rule(bad),
            Err(DatalogError::LiteralArity { .. })
        ));
    }

    #[test]
    fn range_restriction_validated() {
        let mut p = Program::new();
        let q = p.predicate("q", 1).unwrap();
        let bad = Rule::new(
            Literal::new(q, vec![DTerm::Var(0)]),
            vec![],
            vec!["X".into()],
        );
        assert!(matches!(
            p.add_rule(bad),
            Err(DatalogError::NotRangeRestricted { .. })
        ));
    }

    #[test]
    fn facts_are_rules_with_empty_bodies() {
        let mut p = Program::new();
        let ra = p.predicate("ra", 1).unwrap();
        let fact = Rule::new(
            Literal::new(ra, vec![DTerm::Const(Value::from("a"))]),
            vec![],
            vec![],
        );
        assert!(fact.is_fact());
        p.add_rule(fact).unwrap();
        assert_eq!(p.render_rule(&p.rules()[0]), "ra('a') ←");
    }

    #[test]
    fn display_matches_paper_style() {
        let (p, _, _) = edge_program();
        let text = p.to_string();
        assert_eq!(
            text,
            "path(X, Y) ← edge(X, Y)\npath(X, Z) ← edge(X, Y), path(Y, Z)"
        );
    }

    #[test]
    fn rules_for_filters_by_head() {
        let (p, _, path) = edge_program();
        assert_eq!(p.rules_for(path).count(), 2);
    }
}
