//! Property-based tests of the Datalog evaluator: the semi-naive engine is
//! compared against a naive reference (repeated whole-rule application until
//! fixpoint), and monotonicity of the least fixpoint is checked.

use proptest::prelude::*;
use toorjah_catalog::{Tuple, Value};
use toorjah_datalog::{
    evaluate, evaluate_demand, evaluate_full_join, rule_head_instances, DTerm, FactStore, Literal,
    PredId, Program, Rule,
};

/// Naive reference evaluator: apply every rule to (EDB ∪ IDB) until nothing
/// new is derived.
fn naive_reference(program: &Program, edb: &FactStore) -> FactStore {
    let mut everything = edb.clone();
    let mut idb = FactStore::new();
    loop {
        let mut changed = false;
        for rule in program.rules() {
            for head in rule_head_instances(rule, &everything) {
                if idb.insert(rule.head.pred, head.clone()) {
                    everything.insert(rule.head.pred, head);
                    changed = true;
                }
            }
        }
        if !changed {
            return idb;
        }
    }
}

/// A random linear-rule program over binary predicates p0..p3 plus an EDB
/// predicate e, generated from a seed.
fn random_program(seed: u64) -> (Program, PredId, Vec<PredId>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    let e = program.predicate("e", 2).unwrap();
    let preds: Vec<PredId> = (0..3)
        .map(|i| program.predicate(&format!("p{i}"), 2).unwrap())
        .collect();
    let rule_count = rng.gen_range(1..=5);
    for _ in 0..rule_count {
        let head = preds[rng.gen_range(0..preds.len())];
        let body_len = rng.gen_range(1..=2);
        let mut body = Vec::new();
        // Chain pattern: head(X0, Xn) ← b1(X0, X1), b2(X1, X2)…
        for j in 0..body_len {
            let pred = if rng.gen_bool(0.5) {
                e
            } else {
                preds[rng.gen_range(0..preds.len())]
            };
            body.push(Literal::new(
                pred,
                vec![DTerm::Var(j as u32), DTerm::Var(j as u32 + 1)],
            ));
        }
        let head_lit = Literal::new(head, vec![DTerm::Var(0), DTerm::Var(body_len as u32)]);
        let var_names = (0..=body_len).map(|i| format!("X{i}")).collect();
        program
            .add_rule(Rule::new(head_lit, body, var_names))
            .unwrap();
    }
    (program, e, preds)
}

fn random_edb(seed: u64, e: PredId) -> FactStore {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let mut edb = FactStore::new();
    let n = rng.gen_range(0..12);
    for _ in 0..n {
        let a = Value::from(rng.gen_range(0..6i64));
        let b = Value::from(rng.gen_range(0..6i64));
        edb.insert(e, Tuple::new(vec![a, b]));
    }
    edb
}

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v
}

proptest! {
    /// Semi-naive and naive evaluation agree on every predicate.
    #[test]
    fn semi_naive_equals_naive(seed in 0u64..50_000) {
        let (program, e, preds) = random_program(seed);
        let edb = random_edb(seed, e);
        let (semi, _) = evaluate(&program, &edb);
        let reference = naive_reference(&program, &edb);
        for &p in &preds {
            prop_assert_eq!(
                sorted(semi.tuples(p).to_vec()),
                sorted(reference.tuples(p).to_vec()),
                "predicate {:?} differs on seed {}", p, seed
            );
        }
    }

    /// The delta-join evaluator and the full-join reference agree not just
    /// on answers but on the whole derivation trajectory: rounds, derived
    /// counts, rule firings, and the per-round delta sizes. This pins the
    /// semi-naive rewrite as a pure scheduling change.
    #[test]
    fn delta_join_matches_full_join_trajectory(seed in 0u64..50_000) {
        let (program, e, preds) = random_program(seed);
        let edb = random_edb(seed, e);
        let (fast, fast_stats) = evaluate(&program, &edb);
        let (slow, slow_stats) = evaluate_full_join(&program, &edb);
        prop_assert_eq!(&fast_stats, &slow_stats, "stats diverge on seed {}", seed);
        for &p in &preds {
            prop_assert_eq!(
                sorted(fast.tuples(p).to_vec()),
                sorted(slow.tuples(p).to_vec()),
                "predicate {:?} differs on seed {}", p, seed
            );
        }
        // Delta-schedule shape invariants: one entry per round, summing to
        // the number of derived facts, ending on the barren fixpoint round.
        prop_assert_eq!(fast_stats.delta_sizes.len(), fast_stats.rounds);
        prop_assert_eq!(
            fast_stats.delta_sizes.iter().sum::<usize>(),
            fast_stats.derived
        );
        if fast_stats.rounds > 1 {
            prop_assert_eq!(*fast_stats.delta_sizes.last().unwrap(), 0);
        }
    }

    /// Monotonicity: adding EDB facts never removes IDB facts.
    #[test]
    fn evaluation_is_monotone(seed in 0u64..50_000) {
        let (program, e, preds) = random_program(seed);
        let edb_small = random_edb(seed, e);
        let mut edb_big = edb_small.clone();
        edb_big.insert(e, Tuple::new(vec![Value::from(0), Value::from(1)]));
        edb_big.insert(e, Tuple::new(vec![Value::from(1), Value::from(2)]));
        let (small, _) = evaluate(&program, &edb_small);
        let (big, _) = evaluate(&program, &edb_big);
        for &p in &preds {
            for t in small.tuples(p) {
                prop_assert!(big.contains(p, t), "lost fact {} on seed {}", t, seed);
            }
        }
    }

    /// The magic-sets rewrite is answer-preserving on every random program:
    /// demand-driven evaluation of a bound query returns exactly the facts
    /// of the full fixpoint that match the bindings, never deriving more
    /// facts than the unrestricted run.
    #[test]
    fn demand_evaluation_equals_filtered_fixpoint(seed in 0u64..50_000) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (program, e, preds) = random_program(seed);
        let edb = random_edb(seed, e);
        let (full, full_stats) = evaluate(&program, &edb);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4D41_4749);
        let query = preds[rng.gen_range(0..preds.len())];
        let bound = Value::from(rng.gen_range(0..6i64));
        let bindings = [Some(bound), None];
        let (demand, stats) = evaluate_demand(&program, &edb, query, &bindings)
            .expect("random linear programs admit a magic rewrite");
        let expected: Vec<Tuple> = full
            .tuples(query)
            .iter()
            .filter(|t| t.values()[0] == bound)
            .cloned()
            .collect();
        prop_assert_eq!(
            sorted(demand.tuples(query).to_vec()),
            sorted(expected),
            "demanded answers diverge from the filtered fixpoint on seed {}",
            seed
        );
        prop_assert!(
            stats.derived <= full_stats.derived,
            "demand derived more facts ({} > {}) on seed {}",
            stats.derived, full_stats.derived, seed
        );
    }

    /// Every derived fact is supported by some rule body over the final
    /// state (soundness of derivation).
    #[test]
    fn derived_facts_are_supported(seed in 0u64..50_000) {
        let (program, e, preds) = random_program(seed);
        let edb = random_edb(seed, e);
        let (idb, _) = evaluate(&program, &edb);
        let mut everything = edb.clone();
        everything.absorb(&idb);
        for &p in &preds {
            for fact in idb.tuples(p) {
                let supported = program.rules_for(p).any(|rule| {
                    rule_head_instances(rule, &everything).contains(fact)
                });
                prop_assert!(supported, "unsupported fact {} on seed {}", fact, seed);
            }
        }
    }
}
