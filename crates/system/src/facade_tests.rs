//! Unit tests of the facade's statement lifecycle.

use std::sync::Arc;

use toorjah_cache::SharedAccessCache;
use toorjah_catalog::{tuple, Instance, Schema};
use toorjah_core::CoreError;
use toorjah_engine::{DispatchOptions, InstanceSource, NegationError, SourceProvider};

use crate::{ExecMode, Statement, StatementKind, StreamEvent, Toorjah, ToorjahError};

fn example_system() -> Toorjah {
    let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
    let db = Instance::with_data(
        &schema,
        [
            ("r1", vec![tuple!["a", "b1"]]),
            ("r2", vec![tuple!["b1", "c1"]]),
            ("r3", vec![tuple!["c1", "a"]]),
        ],
    )
    .unwrap();
    Toorjah::new(InstanceSource::new(schema, db))
}

#[test]
fn ask_end_to_end() {
    let system = example_system();
    let response = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
    assert_eq!(response.answers, vec![tuple!["c1"]]);
    assert_eq!(response.profile.stats.total_accesses, 2);
    assert_eq!(response.profile.accesses_performed, 2);
    assert_eq!(response.profile.statement, StatementKind::Cq);
    assert_eq!(response.profile.mode, ExecMode::Sequential);
    // One-shot calls report all three lifecycle phases.
    assert!(response.profile.timings.parse.is_some());
    assert!(response.profile.timings.plan.is_some());
    assert!(response.profile.timings.total >= response.profile.timings.execute);
}

#[test]
fn prepare_execute_skips_parse_and_plan() {
    let system = example_system();
    let statement = Statement::parse("q(C) <- r1('a', B), r2(B, C)", system.schema()).unwrap();
    let prepared = system.prepare(&statement).unwrap();
    assert!(prepared.planned().unwrap().minimality.forall_minimal);
    for i in 1..=3 {
        let response = prepared.execute(ExecMode::Sequential).unwrap();
        assert_eq!(response.answers, vec![tuple!["c1"]]);
        assert!(response.profile.timings.parse.is_none());
        assert!(response.profile.timings.plan.is_none());
        assert_eq!(response.profile.execution, i);
    }
    assert_eq!(prepared.executions(), 3);
}

#[test]
fn parse_errors_are_surfaced() {
    let system = example_system();
    assert!(matches!(
        system.ask("q(C) <- nope(C)"),
        Err(ToorjahError::Query(_))
    ));
}

#[test]
fn non_answerable_queries_fail_at_planning() {
    let schema = Schema::parse("r1^io(A, C) r2^io(B, C)").unwrap();
    let system = Toorjah::new(InstanceSource::new(schema.clone(), Instance::new(&schema)));
    assert!(matches!(
        system.ask("q(C) <- r1(X, C)"),
        Err(ToorjahError::Planning(CoreError::NotAnswerable { .. }))
    ));
}

#[test]
fn explain_mentions_program_and_relevance() {
    let system = example_system();
    let text = system.explain("q(C) <- r1('a', B), r2(B, C)").unwrap();
    assert!(text.contains("datalog program"));
    assert!(text.contains("r1_hat1"));
    assert!(
        !text.contains("r3_hat"),
        "irrelevant r3 must not be cached:\n{text}"
    );
    assert!(text.contains("forall-minimal: yes"));
    // The dependency-graph program is recursive: explain reports how many
    // delta-join passes each semi-naive round will run.
    assert!(text.contains("semi-naive: "), "{text}");
    assert!(text.contains("delta-join pass(es) per round"), "{text}");
}

#[test]
fn explain_renders_union_and_negated_statements() {
    let schema = Schema::parse("r^io(A, B) s^io(A, B) f^o(A) banned^io(A, B)").unwrap();
    let db = Instance::with_data(&schema, [("f", vec![tuple!["a"]])]).unwrap();
    let system = Toorjah::new(InstanceSource::new(schema, db));
    let text = system
        .explain("q(B) <- f(X), r(X, B); q(B) <- f(X), s(X, B)")
        .unwrap();
    assert!(text.contains("== disjunct 0 =="), "{text}");
    assert!(text.contains("== disjunct 1 =="), "{text}");
    let text = system
        .explain("q(B) <- f(X), r(X, B), !banned(X, B)")
        .unwrap();
    assert!(text.contains("negation checks"), "{text}");
    assert!(text.contains("not banned/2"), "{text}");
}

#[test]
fn schema_accessor() {
    let system = example_system();
    assert_eq!(system.schema().relation_count(), 3);
}

#[test]
fn parallel_mode_is_answer_invariant_and_reported() {
    let sequential = example_system()
        .ask_with("q(C) <- r1('a', B), r2(B, C)", ExecMode::Sequential)
        .unwrap();
    let parallel = example_system()
        .ask_with(
            "q(C) <- r1('a', B), r2(B, C)",
            ExecMode::Parallel(DispatchOptions::parallel(4).with_batch_size(2)),
        )
        .unwrap();
    assert_eq!(parallel.answers, sequential.answers);
    assert_eq!(parallel.profile.stats, sequential.profile.stats);
    assert_eq!(
        parallel.profile.dispatch.frontier_sizes, sequential.profile.dispatch.frontier_sizes,
        "the frontiers themselves are dispatch-invariant"
    );
    assert!(parallel.profile.dispatch.frontiers() > 0);
    assert!(
        parallel.profile.dispatch.batches <= sequential.profile.dispatch.batches,
        "batching can only reduce round trips"
    );
}

#[test]
fn configured_dispatch_sets_the_default_mode() {
    let system = example_system();
    assert_eq!(system.default_mode(), ExecMode::Sequential);
    let system = system.with_dispatch(DispatchOptions::parallel(8));
    assert_eq!(
        system.default_mode(),
        ExecMode::Parallel(DispatchOptions::parallel(8))
    );
    let text = system.explain("q(C) <- r1('a', B), r2(B, C)").unwrap();
    assert!(text.contains("parallelism=8"), "{text}");
    assert!(text.contains("batch_size=1"), "{text}");
}

#[test]
fn session_cache_makes_repeat_queries_free() {
    let system = example_system().with_cache(SharedAccessCache::unbounded());
    let cold = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
    assert_eq!(cold.profile.stats.total_accesses, 2);
    assert_eq!(cold.profile.accesses_performed, 2);
    let warm = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
    assert_eq!(warm.answers, cold.answers);
    assert_eq!(
        warm.profile.stats.total_accesses, 0,
        "warm query pays nothing"
    );
    assert_eq!(warm.profile.accesses_served_by_cache, 2);
    assert_eq!(warm.profile.accesses_performed, 0);
    let stats = system.cache_stats().unwrap();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.misses, 2);
}

#[test]
fn without_session_cache_queries_stay_independent() {
    let system = example_system();
    assert!(system.cache_stats().is_none());
    assert!(system.session_cache().is_none());
    let first = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
    let second = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
    // No sharing: both runs pay the full access count.
    assert_eq!(first.profile.stats.total_accesses, 2);
    assert_eq!(second.profile.stats.total_accesses, 2);
    assert_eq!(second.profile.accesses_performed, 2);
}

#[test]
fn two_sessions_share_one_cache_handle() {
    let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
    let db = Instance::with_data(
        &schema,
        [
            ("r1", vec![tuple!["a", "b1"]]),
            ("r2", vec![tuple!["b1", "c1"]]),
            ("r3", vec![tuple!["c1", "a"]]),
        ],
    )
    .unwrap();
    let provider: Arc<dyn SourceProvider> = Arc::new(InstanceSource::new(schema, db));
    let cache = SharedAccessCache::unbounded();
    let one = Toorjah::from_arc(Arc::clone(&provider)).with_cache(cache.clone());
    let two = Toorjah::builder_from_arc(provider).cache(cache).build();
    one.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
    let warm = two.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
    assert_eq!(
        warm.profile.stats.total_accesses, 0,
        "cross-session sharing"
    );
}

#[test]
fn explain_surfaces_session_cache_stats() {
    let system = example_system().with_cache(SharedAccessCache::unbounded());
    system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
    let text = system.explain("q(C) <- r1('a', B), r2(B, C)").unwrap();
    assert!(text.contains("session cache: 2 entries"), "{text}");
    // Without a session cache the line is absent.
    let text = example_system()
        .explain("q(C) <- r1('a', B), r2(B, C)")
        .unwrap();
    assert!(!text.contains("session cache"), "{text}");
}

#[test]
fn builder_consolidates_configuration() {
    let schema = Schema::parse("r^oo(A, B)").unwrap();
    let db = Instance::with_data(&schema, [("r", vec![tuple!["a", "b"]])]).unwrap();
    let system = Toorjah::builder(InstanceSource::new(schema, db))
        .dispatch(DispatchOptions::parallel(4))
        .cache(SharedAccessCache::unbounded())
        .build();
    assert!(system.session_cache().is_some());
    assert_eq!(
        system.default_mode(),
        ExecMode::Parallel(DispatchOptions::parallel(4))
    );
    let response = system.ask("q(A) <- r(A, B)").unwrap();
    assert_eq!(response.answers, vec![tuple!["a"]]);
}

#[test]
fn negation_error_converts_via_from() {
    let planning: ToorjahError =
        NegationError::Planning(CoreError::Internal("x".to_string())).into();
    assert!(matches!(planning, ToorjahError::Planning(_)));
    let internal: ToorjahError = NegationError::Internal("y".to_string()).into();
    assert!(matches!(
        internal,
        ToorjahError::Planning(CoreError::Internal(_))
    ));
}

mod union_statements {
    use super::*;

    fn union_system() -> Toorjah {
        let schema = Schema::parse("r^io(A, B) s^io(A, B) f^o(A) dead^io(Z, B)").unwrap();
        let db = Instance::with_data(
            &schema,
            [
                ("r", vec![tuple!["a", "rb"]]),
                ("s", vec![tuple!["a", "sb"]]),
                ("f", vec![tuple!["a"]]),
            ],
        )
        .unwrap();
        Toorjah::new(InstanceSource::new(schema, db))
    }

    #[test]
    fn union_statement_merges_and_skips() {
        let system = union_system();
        let response = system
            .ask(
                "q(B) <- f(X), r(X, B); \
                 q(B) <- f(X), s(X, B); \
                 q(B) <- dead(Z, B)",
            )
            .unwrap();
        let mut answers = response.answers.clone();
        answers.sort();
        assert_eq!(answers, vec![tuple!["rb"], tuple!["sb"]]);
        // The third disjunct is not answerable: skipped, not fatal.
        assert_eq!(response.skipped_disjuncts, vec![2]);
        assert_eq!(response.profile.statement, StatementKind::Union);
        // f accessed once for both disjuncts.
        let f = system.schema().relation_id("f").unwrap();
        assert_eq!(response.profile.stats.accesses_to(f), 1);
    }

    #[test]
    fn union_statement_rejects_mixed_arity() {
        let system = union_system();
        assert!(system.ask("q(X) <- r(X, Y); q(X, Y) <- s(X, Y)").is_err());
    }
}

mod negated_statements {
    use super::*;

    fn negated_system() -> Toorjah {
        let schema = Schema::parse("works^oo(Person, City) banned^io(Person, City)").unwrap();
        let db = Instance::with_data(
            &schema,
            [
                (
                    "works",
                    vec![
                        tuple!["ann", "rome"],
                        tuple!["bob", "milan"],
                        tuple!["cal", "rome"],
                    ],
                ),
                (
                    "banned",
                    vec![tuple!["bob", "milan"], tuple!["cal", "paris"]],
                ),
            ],
        )
        .unwrap();
        Toorjah::new(InstanceSource::new(schema, db))
    }

    #[test]
    fn negated_statement_filters_witnessed_candidates() {
        let system = negated_system();
        let response = system.ask("q(P) <- works(P, C), !banned(P, C)").unwrap();
        let mut answers = response.answers.clone();
        answers.sort();
        assert_eq!(answers, vec![tuple!["ann"], tuple!["cal"]]);
        assert_eq!(response.rejected, 1);
        assert_eq!(response.profile.statement, StatementKind::Negated);
    }

    #[test]
    fn prepared_negated_statement_is_reusable() {
        let system = negated_system();
        let statement =
            Statement::parse("q(P) <- works(P, C), !banned(P, C)", system.schema()).unwrap();
        let prepared = system.prepare(&statement).unwrap();
        let first = prepared.execute(ExecMode::Sequential).unwrap();
        let second = prepared.execute(ExecMode::Sequential).unwrap();
        assert_eq!(first.answers, second.answers);
        assert_eq!(first.profile.stats, second.profile.stats);
        assert_eq!(second.profile.execution, 2);
    }
}

mod streaming {
    use super::*;

    fn system() -> Toorjah {
        let schema = Schema::parse("f^oo(A, B) g^io(B, C)").unwrap();
        let db = Instance::with_data(
            &schema,
            [
                ("f", vec![tuple!["a1", "b1"], tuple!["a2", "b2"]]),
                ("g", vec![tuple!["b1", "c1"], tuple!["b2", "c2"]]),
            ],
        )
        .unwrap();
        Toorjah::new(InstanceSource::new(schema, db))
    }

    fn prepared(system: &Toorjah) -> crate::Prepared {
        let statement = Statement::parse("q(C) <- f(A, B), g(B, C)", system.schema()).unwrap();
        system.prepare(&statement).unwrap()
    }

    #[test]
    fn streaming_answers_iterator() {
        let system = system();
        let stream = prepared(&system).stream().unwrap();
        let mut answers: Vec<_> = stream.answers().collect();
        answers.sort();
        assert_eq!(answers, vec![tuple!["c1"], tuple!["c2"]]);
    }

    #[test]
    fn streaming_events_are_timestamped_and_terminated() {
        let system = system();
        let stream = prepared(&system).stream().unwrap();
        let mut saw_done = false;
        while let Some(event) = stream.next_event() {
            match event {
                StreamEvent::Answer { at, .. } => assert!(at.as_nanos() > 0),
                StreamEvent::Done(report) => {
                    saw_done = true;
                    assert_eq!(report.answers.len(), 2);
                }
                StreamEvent::Failed(e) => panic!("unexpected failure: {e}"),
            }
        }
        assert!(saw_done);
    }

    #[test]
    fn streaming_mode_collects_the_same_answers() {
        let system = system();
        let sequential = system.ask("q(C) <- f(A, B), g(B, C)").unwrap();
        let streamed = system
            .ask_with("q(C) <- f(A, B), g(B, C)", ExecMode::Streaming)
            .unwrap();
        let mut a = streamed.answers.clone();
        let mut b = sequential.answers.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(
            streamed.profile.stats.total_accesses,
            sequential.profile.stats.total_accesses
        );
        assert!(streamed.time_to_first_answer.is_some());
        assert_eq!(streamed.profile.mode, ExecMode::Streaming);
    }

    #[test]
    fn incremental_streaming_is_cq_only() {
        let schema = Schema::parse("r^oo(A, B) banned^io(A, B)").unwrap();
        let db = Instance::with_data(&schema, [("r", vec![tuple!["a", "b"]])]).unwrap();
        let system = Toorjah::new(InstanceSource::new(schema, db));
        let union = Statement::parse("q(A) <- r(A, B); q(B) <- r(A, B)", system.schema()).unwrap();
        assert!(matches!(
            system.prepare(&union).unwrap().stream(),
            Err(ToorjahError::Unsupported(_))
        ));
        let negated = Statement::parse("q(A) <- r(A, B), !banned(A, B)", system.schema()).unwrap();
        assert!(matches!(
            system.prepare(&negated).unwrap().stream(),
            Err(ToorjahError::Unsupported(_))
        ));
        // But collected streaming executions work for both.
        let response = system
            .prepare(&union)
            .unwrap()
            .execute(ExecMode::Streaming)
            .unwrap();
        assert_eq!(response.answer_count(), 2);
        let response = system
            .prepare(&negated)
            .unwrap()
            .execute(ExecMode::Streaming)
            .unwrap();
        assert_eq!(response.answers, vec![tuple!["a"]]);
    }
}
