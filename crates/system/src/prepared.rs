//! Prepared statements: plan once, execute many times.
//!
//! The paper's plans depend only on the query and the schema — nothing
//! about an execution changes them. [`crate::Toorjah::prepare`] therefore
//! splits the lifecycle: it parses nothing (it takes a
//! [`Statement`]) and plans exactly once; the returned [`Prepared`] is
//! `Send + Sync` and re-executable from any number of threads, each call
//! paying only the execution phase. Combined with a session cache, a
//! serving deployment prepares its query set once and answers repeated
//! traffic at cache speed.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use toorjah_cache::SharedAccessCache;
use toorjah_core::Planned;
use toorjah_engine::{
    execute_plan_cached, execute_union_cached, negation_checks, AccessLog, DispatchOptions,
    DispatchReport, NegatedPlan, PruningLevel, SourceProvider,
};
use toorjah_obs::EventKind;
use toorjah_query::Statement;

use crate::facade::{Toorjah, ToorjahConfig, ToorjahError};
use crate::response::{ExecMode, ExecutionProfile, PhaseTimings, Response};
use crate::{run_distillation_cached, AnswerStream, MetricsReport};

/// The planned form of one statement kind (large payloads boxed: a
/// `Prepared` is built once and moved around rarely).
#[derive(Clone, Debug)]
pub(crate) enum PreparedKind {
    Cq(Box<Planned>),
    Union {
        planned: Vec<Planned>,
        /// Disjunct indexes skipped as not answerable.
        skipped: Vec<usize>,
    },
    Negated(Box<NegatedPlan>),
}

/// A statement planned against a [`Toorjah`] instance, cheaply
/// re-executable — and shareable across threads (`Prepared: Send + Sync`)
/// — any number of times.
///
/// Re-executions skip the parse and plan phases entirely; the
/// [`ExecutionProfile`] of every [`Prepared::execute`] response shows
/// `timings.parse == None`, `timings.plan == None` and the 1-based
/// execution sequence number.
///
/// ```
/// use toorjah_catalog::{tuple, Instance, Schema};
/// use toorjah_engine::InstanceSource;
/// use toorjah_system::{ExecMode, Statement, Toorjah};
///
/// let schema = Schema::parse("r1^io(A, B) r2^io(B, C)").unwrap();
/// let db = Instance::with_data(&schema, [
///     ("r1", vec![tuple!["a", "b1"]]),
///     ("r2", vec![tuple!["b1", "c1"]]),
/// ]).unwrap();
/// let system = Toorjah::new(InstanceSource::new(schema, db));
///
/// let statement = Statement::parse("q(C) <- r1('a', B), r2(B, C)", system.schema()).unwrap();
/// let prepared = system.prepare(&statement).unwrap();
/// for i in 1..=3 {
///     let response = prepared.execute(ExecMode::Sequential).unwrap();
///     assert_eq!(response.answers, vec![tuple!["c1"]]);
///     // No parse, no plan — only execution:
///     assert!(response.profile.timings.parse.is_none());
///     assert!(response.profile.timings.plan.is_none());
///     assert_eq!(response.profile.execution, i);
/// }
/// ```
pub struct Prepared {
    pub(crate) provider: Arc<dyn SourceProvider>,
    pub(crate) config: ToorjahConfig,
    pub(crate) session_cache: Option<SharedAccessCache>,
    pub(crate) statement: Statement,
    pub(crate) kind: PreparedKind,
    pub(crate) executions: AtomicU64,
    /// Execute-phase nanoseconds accumulated across successful executions,
    /// surfaced as `PhaseTimings::cumulative_execute`.
    pub(crate) cumulative_execute_ns: AtomicU64,
}

impl Prepared {
    /// The statement this plan was prepared from.
    pub fn statement(&self) -> &Statement {
        &self.statement
    }

    /// Everything the planner produced: the plan of a CQ statement, or the
    /// extended positive part of a negated statement. `None` for unions —
    /// see [`Prepared::disjunct_plans`].
    pub fn planned(&self) -> Option<&Planned> {
        match &self.kind {
            PreparedKind::Cq(p) => Some(p),
            PreparedKind::Union { .. } => None,
            PreparedKind::Negated(n) => Some(n.planned()),
        }
    }

    /// The per-disjunct plans of a union statement (empty otherwise).
    pub fn disjunct_plans(&self) -> &[Planned] {
        match &self.kind {
            PreparedKind::Union { planned, .. } => planned,
            _ => &[],
        }
    }

    /// Union disjuncts skipped at prepare time as not answerable (empty
    /// for other statement kinds).
    pub fn skipped_disjuncts(&self) -> &[usize] {
        match &self.kind {
            PreparedKind::Union { skipped, .. } => skipped,
            _ => &[],
        }
    }

    /// How many times this plan has been executed to completion so far
    /// (failed executions are not counted).
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// Executes the plan with the instance's configured dispatch settings
    /// (`execute(mode)` with the mode [`Toorjah::default_mode`] reports).
    pub fn run(&self) -> Result<Response, ToorjahError> {
        self.execute(Toorjah::mode_for(&self.config))
    }

    /// Executes the plan under `mode`, returning the unified [`Response`].
    /// Answers and access counts are mode-invariant; only scheduling (and
    /// therefore wall-clock) differs. Takes `&self`: any number of threads
    /// may execute one `Prepared` concurrently, sharing the session cache
    /// it was prepared with.
    pub fn execute(&self, mode: ExecMode) -> Result<Response, ToorjahError> {
        self.execute_capped(mode, None)
    }

    /// [`Prepared::execute`] under a per-execution access cap: at most
    /// `max_accesses` of `Some(n)` distinct source accesses may be
    /// performed (cache-served lookups stay free). When the cap binds, the
    /// whole execution fails with
    /// [`toorjah_engine::EngineError::AccessBudgetExceeded`] — no partial
    /// answer is ever returned. This is the enforcement point for the query
    /// service's per-tenant access budgets: the remaining budget rides in
    /// as the cap, so a session can never overdraw mid-execution. `None`
    /// keeps the instance's configured limit. The cap governs the kernel
    /// executors (`Sequential`/`Parallel`, plus a negated statement's
    /// checks under `Streaming`); the distillation phase itself keeps its
    /// own [`crate::DistillationOptions`] budget.
    pub fn execute_capped(
        &self,
        mode: ExecMode,
        max_accesses: Option<usize>,
    ) -> Result<Response, ToorjahError> {
        let started = Instant::now();
        let cache = self.execution_cache();
        let mut exec = self.exec_options(mode);
        if let Some(cap) = max_accesses {
            exec.max_accesses = cap.min(exec.max_accesses);
        }

        let mut log = AccessLog::new();
        let mut dispatch = DispatchReport::default();
        let mut rejected = 0usize;
        let mut skipped_disjuncts = Vec::new();
        let mut time_to_first_answer = None;

        let answers = match (&self.kind, mode) {
            (PreparedKind::Cq(planned), ExecMode::Sequential | ExecMode::Parallel(_)) => {
                let report = execute_plan_cached(
                    &planned.plan,
                    self.provider.as_ref(),
                    exec,
                    &cache,
                    &mut log,
                )?;
                dispatch = report.dispatch;
                report.answers
            }
            (PreparedKind::Cq(planned), ExecMode::Streaming) => {
                let report = run_distillation_cached(
                    planned.plan.clone(),
                    Arc::clone(&self.provider),
                    self.config.distillation,
                    cache.clone(),
                )
                .wait()
                .map_err(ToorjahError::Execution)?;
                log = report.log;
                time_to_first_answer = report.time_to_first_answer;
                report.answers
            }
            (
                PreparedKind::Union { planned, skipped },
                ExecMode::Sequential | ExecMode::Parallel(_),
            ) => {
                skipped_disjuncts = skipped.clone();
                let plans: Vec<&toorjah_core::QueryPlan> =
                    planned.iter().map(|p| &p.plan).collect();
                let report =
                    execute_union_cached(&plans, self.provider.as_ref(), exec, &cache, &mut log)?;
                dispatch = report.dispatch;
                report.answers
            }
            (PreparedKind::Union { planned, skipped }, ExecMode::Streaming) => {
                // One distillation run per disjunct over the shared cache:
                // a later disjunct never repeats an earlier one's accesses,
                // exactly like the sequential union.
                skipped_disjuncts = skipped.clone();
                let mut answers = Vec::new();
                let mut seen: HashSet<toorjah_catalog::Tuple> = HashSet::new();
                for p in planned {
                    // Rebase the disjunct-relative first-answer stamp onto
                    // this execution's clock before comparing/recording.
                    let disjunct_started = started.elapsed();
                    let report = run_distillation_cached(
                        p.plan.clone(),
                        Arc::clone(&self.provider),
                        self.config.distillation,
                        cache.clone(),
                    )
                    .wait()
                    .map_err(ToorjahError::Execution)?;
                    if time_to_first_answer.is_none() {
                        time_to_first_answer =
                            report.time_to_first_answer.map(|t| disjunct_started + t);
                    }
                    for t in report.answers {
                        if seen.insert(t.clone()) {
                            answers.push(t);
                        }
                    }
                    log.merge(&report.log);
                }
                answers
            }
            (PreparedKind::Negated(plan), ExecMode::Sequential | ExecMode::Parallel(_)) => {
                let report = toorjah_engine::execute_negated_plan(
                    plan,
                    self.provider.as_ref(),
                    exec,
                    &cache,
                    &mut log,
                )?;
                dispatch = report.dispatch;
                rejected = report.rejected;
                report.answers
            }
            (PreparedKind::Negated(plan), ExecMode::Streaming) => {
                // Stream the positive part, then decide the negated atoms
                // exactly. Candidates are only *certain* answers after the
                // checks, so no time-to-first-answer is reported.
                let report = run_distillation_cached(
                    plan.planned().plan.clone(),
                    Arc::clone(&self.provider),
                    self.config.distillation,
                    cache.clone(),
                )
                .wait()
                .map_err(ToorjahError::Execution)?;
                log = report.log;
                let checks = negation_checks(
                    plan,
                    &report.answers,
                    self.provider.as_ref(),
                    exec,
                    &cache,
                    &mut log,
                    &mut dispatch,
                )?;
                rejected = checks.rejected;
                checks.answers
            }
        };

        // Counted on completion only: a failed execution does not consume a
        // sequence number, so `profile.execution` tracks successful runs.
        let execution = self.executions.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed = started.elapsed();
        let elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let cumulative_ns = self
            .cumulative_execute_ns
            .fetch_add(elapsed_ns, Ordering::Relaxed)
            .saturating_add(elapsed_ns);
        // Metrics are captured against the cache this execution actually
        // used — the session cache, or the private per-execution one.
        let metrics = self
            .config
            .exec
            .obs
            .snapshot()
            .map(|snapshot| MetricsReport {
                snapshot,
                interner: toorjah_catalog::Interner::global().stats(),
                cache: cache.stats(),
                shards: cache.shard_counters(),
            });
        Ok(Response {
            answers,
            rejected,
            skipped_disjuncts,
            time_to_first_answer,
            profile: ExecutionProfile {
                statement: self.statement.kind(),
                mode,
                prune_level: exec.prune_level,
                stats: log.stats(),
                accesses_served_by_cache: log.cache_served() as u64,
                accesses_performed: log.total() as u64,
                dispatch,
                timings: PhaseTimings {
                    parse: None,
                    plan: None,
                    execute: elapsed,
                    total: elapsed,
                    cumulative_execute: Duration::from_nanos(cumulative_ns),
                },
                execution,
            },
            metrics,
        })
    }

    /// Starts a streaming execution and hands back the live
    /// [`AnswerStream`] for incremental consumption (`execute(Streaming)`
    /// collects the same stream into a [`Response`] instead). Only CQ
    /// statements stream incrementally; unions and negated statements
    /// return [`ToorjahError::Unsupported`].
    pub fn stream(&self) -> Result<AnswerStream, ToorjahError> {
        match &self.kind {
            PreparedKind::Cq(planned) => Ok(run_distillation_cached(
                planned.plan.clone(),
                Arc::clone(&self.provider),
                self.config.distillation,
                self.execution_cache(),
            )),
            PreparedKind::Union { .. } => Err(ToorjahError::Unsupported(
                "incremental streaming of a union statement (use execute(ExecMode::Streaming))"
                    .to_string(),
            )),
            PreparedKind::Negated(_) => Err(ToorjahError::Unsupported(
                "incremental streaming of a negated statement (answers are certain only after \
                 the negation checks; use execute(ExecMode::Streaming))"
                    .to_string(),
            )),
        }
    }

    /// The cache an execution uses: the session cache the plan was
    /// prepared with, or a fresh private one (the paper's per-query
    /// meta-cache semantics).
    fn execution_cache(&self) -> SharedAccessCache {
        self.session_cache.clone().unwrap_or_else(|| {
            SharedAccessCache::with_obs(
                toorjah_cache::CacheConfig::unbounded(),
                self.config.exec.obs,
            )
        })
    }

    /// The executor options for one mode: `Sequential` forces the
    /// one-access-per-round-trip dispatch, `Parallel` substitutes its own,
    /// `Streaming` leaves the configured dispatch for any frontier work
    /// outside the distillation executor (negation checks).
    ///
    /// Negated statements refuse [`PruningLevel::Magic`]: the demand
    /// filter reasons over a *positive* answer rule, and recursion through
    /// negation is exactly the case magic-sets rewriting is unsound for —
    /// so the execution falls back to [`PruningLevel::Runtime`] and says
    /// so with a `rewrite_fallback` trace event rather than silently
    /// mis-evaluating. The response profile reports the effective level.
    fn exec_options(&self, mode: ExecMode) -> toorjah_engine::ExecOptions {
        let mut exec = self.config.exec;
        if exec.prune_level == PruningLevel::Magic && matches!(self.kind, PreparedKind::Negated(_))
        {
            exec.prune_level = PruningLevel::Runtime;
            exec.obs.trace(0, || EventKind::RewriteFallback {
                level: toorjah_catalog::Symbol::intern(PruningLevel::Runtime.name()),
            });
        }
        exec.dispatch = match mode {
            ExecMode::Sequential => DispatchOptions::sequential(),
            ExecMode::Parallel(d) => d,
            ExecMode::Streaming => self.config.exec.dispatch,
        };
        exec
    }
}
