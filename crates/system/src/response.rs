//! The unified response type of the prepare/execute lifecycle.
//!
//! Every execution — any statement kind, any [`ExecMode`] — returns one
//! [`Response`]: the answers plus an [`ExecutionProfile`] with access
//! statistics, cache attribution, the dispatcher's frontier/batch account
//! and per-phase wall-clock timings. The profile is the API's first timing
//! surface: `timings.parse`/`timings.plan` are `Some` exactly when this
//! call did that work, so a prepared statement's re-executions are
//! observably parse- and plan-free.

use std::time::Duration;

use toorjah_catalog::Tuple;
use toorjah_engine::{AccessStats, DispatchOptions, DispatchReport};
use toorjah_query::StatementKind;

use crate::MetricsReport;

/// How a prepared statement is executed.
///
/// Answers and access counts are invariant across modes (the paper's §IV
/// guarantee — the access *set* determines the answer); the modes differ
/// only in scheduling:
///
/// * [`ExecMode::Sequential`] — the paper's synchronous path, one access
///   per round trip on the calling thread;
/// * [`ExecMode::Parallel`] — the same evaluator with each round's access
///   frontier fanned out over worker threads / batched round trips;
/// * [`ExecMode::Streaming`] — the §V distillation executor: wrapper
///   threads access the sources concurrently and answers surface as soon
///   as they are computed ([`Response::time_to_first_answer`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecMode {
    /// Synchronous one-access-per-round-trip execution (the default).
    #[default]
    Sequential,
    /// Frontier-parallel execution with the given dispatch settings.
    Parallel(DispatchOptions),
    /// The §V distillation executor (streamed answers, collected here).
    Streaming,
}

impl ExecMode {
    /// Stable lowercase name (used by machine-readable reports).
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Sequential => "sequential",
            ExecMode::Parallel(_) => "parallel",
            ExecMode::Streaming => "streaming",
        }
    }
}

/// Wall-clock spent in each phase of the statement lifecycle.
///
/// `parse` and `plan` are `Some` only when the work happened *in this
/// call*: a one-shot [`crate::Toorjah::ask`] reports all three phases,
/// while [`crate::Prepared::execute`] reports `None` for both — the
/// prepared statement's whole point is that those phases already happened.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Time spent parsing the statement text (`None`: no parse happened in
    /// this call).
    pub parse: Option<Duration>,
    /// Time spent planning (`None`: executed from an existing
    /// [`crate::Prepared`]).
    pub plan: Option<Duration>,
    /// Time spent executing against the sources.
    pub execute: Duration,
    /// Total lifecycle time of this call.
    pub total: Duration,
    /// Execute time summed over every successful execution of the
    /// [`crate::Prepared`] this response came from, **including this one**
    /// — so re-executions accumulate instead of silently resetting.
    /// Equals `execute` on the first execution (and on every one-shot
    /// call, which prepares privately).
    pub cumulative_execute: Duration,
}

/// How an execution went: access statistics, cache attribution, dispatch
/// accounting and phase timings.
#[derive(Clone, Debug)]
pub struct ExecutionProfile {
    /// The statement class that was executed.
    pub statement: StatementKind,
    /// The execution mode.
    pub mode: ExecMode,
    /// The pruning level the execution effectively ran at. Usually the
    /// configured [`toorjah_engine::PruningLevel`]; a negated statement
    /// configured at `Magic` reports the `Runtime` level it fell back to.
    pub prune_level: toorjah_engine::PruningLevel,
    /// Access counters — the paper's cost metric (accesses actually
    /// performed against the sources, per relation).
    pub stats: AccessStats,
    /// Requested accesses served by a cache at zero cost: the per-query
    /// meta-cache discipline (an access repeated within the statement) plus
    /// warm session-cache entries.
    pub accesses_served_by_cache: u64,
    /// Distinct accesses this execution performed against the sources
    /// (equals `stats.total_accesses`). In the non-streaming modes, every
    /// requested access is performed, cache-served, or dropped by the
    /// kernel's runtime relevance pruner:
    /// `accesses_performed + accesses_served_by_cache +
    /// dispatch.accesses_pruned == dispatch.total_requested()` (pinned by
    /// `tests/prepared.rs` and `tests/relevance.rs`).
    pub accesses_performed: u64,
    /// Frontier/batch accounting of the dispatcher. Under
    /// [`ExecMode::Streaming`] the distillation executor schedules accesses
    /// through wrapper queues, not frontiers, so only frontier work outside
    /// it is counted here (the negation checks of a negated statement;
    /// empty otherwise) — `total_requested()` is **not** the execution's
    /// full request count in that mode.
    pub dispatch: DispatchReport,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// 1-based execution sequence number of the [`crate::Prepared`] this
    /// response came from (one-shot calls prepare privately, so theirs is
    /// always 1). Together with `timings`, this makes plan reuse
    /// observable.
    pub execution: u64,
}

/// The unified outcome of executing any [`toorjah_query::Statement`].
///
/// ```
/// use toorjah_catalog::{tuple, Instance, Schema};
/// use toorjah_engine::InstanceSource;
/// use toorjah_system::Toorjah;
///
/// let schema = Schema::parse("r1^io(A, B) r2^io(B, C)").unwrap();
/// let db = Instance::with_data(&schema, [
///     ("r1", vec![tuple!["a", "b1"]]),
///     ("r2", vec![tuple!["b1", "c1"]]),
/// ]).unwrap();
/// let system = Toorjah::new(InstanceSource::new(schema, db));
///
/// let response = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
/// assert_eq!(response.answers, vec![tuple!["c1"]]);
/// assert_eq!(response.profile.accesses_performed, 2);
/// // One-shot calls parse and plan, and the profile shows it:
/// assert!(response.profile.timings.parse.is_some());
/// assert!(response.profile.timings.plan.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Response {
    /// The distinct answers, in production order.
    pub answers: Vec<Tuple>,
    /// Candidates the negation checks rejected (0 for non-negated
    /// statements).
    pub rejected: usize,
    /// Indexes of union disjuncts skipped as not answerable (empty for
    /// non-union statements).
    pub skipped_disjuncts: Vec<usize>,
    /// Time until the first answer surfaced — populated by
    /// [`ExecMode::Streaming`], `None` otherwise (and when the answer set
    /// is empty).
    pub time_to_first_answer: Option<Duration>,
    /// How the execution went.
    pub profile: ExecutionProfile,
    /// Point-in-time metrics captured when the execution finished, against
    /// the cache it actually used. `Some` exactly when the instance's
    /// observability handle is enabled (the builder's default); `None`
    /// under a disabled handle, whose probes cost nothing.
    pub metrics: Option<MetricsReport>,
}

impl Response {
    /// Number of distinct answers.
    pub fn answer_count(&self) -> usize {
        self.answers.len()
    }

    /// Shorthand for the profile's access counters.
    pub fn stats(&self) -> &AccessStats {
        &self.profile.stats
    }
}
