//! Machine-readable rendering of a [`Response`] (used by the CLI's
//! `--json` flag).
//!
//! Hand-rolled emission — the workspace stays dependency-free — producing a
//! stable shape:
//!
//! ```json
//! {
//!   "statement": "cq",
//!   "mode": "sequential",
//!   "answers": [["italy"]],
//!   "answer_count": 1,
//!   "rejected": 0,
//!   "skipped_disjuncts": [],
//!   "time_to_first_answer_us": null,
//!   "profile": {
//!     "prune_level": "static",
//!     "accesses_performed": 2,
//!     "accesses_served_by_cache": 0,
//!     "total_accesses": 2,
//!     "per_relation": {"r1": {"accesses": 1, "extracted": 1}},
//!     "dispatch": {"frontiers": 2, "largest_frontier": 1,
//!                  "batches": 2, "total_requested": 2,
//!                  "accesses_pruned": 0, "derivations_suppressed": 0,
//!                  "pruned_per_frontier": [0, 0],
//!                  "delta_schedule": [1, 1]},
//!     "timings_us": {"parse": 10, "plan": 120, "execute": 80,
//!                    "cumulative_execute": 80, "total": 210},
//!     "execution": 1
//!   },
//!   "metrics": {"interner": {...}, "counters": {...}, "gauges": {...},
//!               "histograms": {...}, "cache": {..., "shards": [...]}}
//! }
//! ```
//!
//! `metrics` is `null` when the instance's observability handle is
//! disabled; the builder's default enables it (see
//! [`crate::MetricsReport`] for the block's exact shape).

use std::fmt::Write as _;
use std::time::Duration;

use toorjah_catalog::{Schema, Tuple, Value};

use crate::Response;

impl Response {
    /// Renders the response as a single-line JSON object. Relation names
    /// come from `schema` (relations never accessed are omitted from
    /// `per_relation`); durations are integral microseconds.
    pub fn to_json(&self, schema: &Schema) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"statement\":");
        push_str_json(&mut out, self.profile.statement.name());
        out.push_str(",\"mode\":");
        push_str_json(&mut out, self.profile.mode.name());
        out.push_str(",\"answers\":[");
        for (i, answer) in self.answers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_tuple_json(&mut out, answer);
        }
        out.push(']');
        let _ = write!(out, ",\"answer_count\":{}", self.answers.len());
        let _ = write!(out, ",\"rejected\":{}", self.rejected);
        out.push_str(",\"skipped_disjuncts\":[");
        for (i, idx) in self.skipped_disjuncts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{idx}");
        }
        out.push(']');
        out.push_str(",\"time_to_first_answer_us\":");
        push_duration_json(&mut out, self.time_to_first_answer);

        let p = &self.profile;
        out.push_str(",\"profile\":{");
        out.push_str("\"prune_level\":");
        push_str_json(&mut out, p.prune_level.name());
        let _ = write!(out, ",\"accesses_performed\":{}", p.accesses_performed);
        let _ = write!(
            out,
            ",\"accesses_served_by_cache\":{}",
            p.accesses_served_by_cache
        );
        let _ = write!(out, ",\"total_accesses\":{}", p.stats.total_accesses);
        out.push_str(",\"per_relation\":{");
        let mut first = true;
        for (id, rel) in schema.iter() {
            let accesses = p.stats.accesses_to(id);
            let extracted = p.stats.extracted_from(id);
            if accesses == 0 && extracted == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            push_str_json(&mut out, rel.name());
            let _ = write!(
                out,
                ":{{\"accesses\":{accesses},\"extracted\":{extracted}}}"
            );
        }
        out.push('}');
        let _ = write!(
            out,
            ",\"dispatch\":{{\"frontiers\":{},\"largest_frontier\":{},\
             \"batches\":{},\"total_requested\":{},\"accesses_pruned\":{},\
             \"derivations_suppressed\":{}",
            p.dispatch.frontiers(),
            p.dispatch.largest_frontier(),
            p.dispatch.batches,
            p.dispatch.total_requested(),
            p.dispatch.accesses_pruned,
            p.dispatch.derivations_suppressed,
        );
        out.push_str(",\"pruned_per_frontier\":[");
        for (i, pruned) in p.dispatch.pruned_per_frontier.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{pruned}");
        }
        out.push(']');
        out.push_str(",\"delta_schedule\":[");
        for (i, delta) in p.dispatch.delta_schedule.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{delta}");
        }
        out.push_str("]}");
        out.push_str(",\"timings_us\":{\"parse\":");
        push_duration_json(&mut out, p.timings.parse);
        out.push_str(",\"plan\":");
        push_duration_json(&mut out, p.timings.plan);
        let _ = write!(
            out,
            ",\"execute\":{},\"cumulative_execute\":{},\"total\":{}}}",
            p.timings.execute.as_micros(),
            p.timings.cumulative_execute.as_micros(),
            p.timings.total.as_micros()
        );
        let _ = write!(out, ",\"execution\":{}", p.execution);
        out.push('}');
        out.push_str(",\"metrics\":");
        match &self.metrics {
            Some(m) => m.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

fn push_tuple_json(out: &mut String, tuple: &Tuple) {
    out.push('[');
    for (i, value) in tuple.values().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match value {
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => push_str_json(out, s),
        }
    }
    out.push(']');
}

fn push_duration_json(out: &mut String, duration: Option<Duration>) {
    match duration {
        Some(d) => {
            let _ = write!(out, "{}", d.as_micros());
        }
        None => out.push_str("null"),
    }
}

/// JSON string escaping for the characters that can occur in relation
/// names, constants and answer values.
fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Toorjah;
    use toorjah_catalog::{tuple, Instance};
    use toorjah_engine::InstanceSource;

    #[test]
    fn json_shape_is_stable() {
        let schema = Schema::parse("r1^io(A, B) r2^io(B, C)").unwrap();
        let db = Instance::with_data(
            &schema,
            [
                ("r1", vec![tuple!["a", "b1"]]),
                ("r2", vec![tuple!["b1", "c1"]]),
            ],
        )
        .unwrap();
        let system = Toorjah::new(InstanceSource::new(schema.clone(), db));
        let response = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
        let json = response.to_json(&schema);
        assert!(json.starts_with("{\"statement\":\"cq\""), "{json}");
        assert!(json.contains("\"mode\":\"sequential\""), "{json}");
        assert!(json.contains("\"answers\":[[\"c1\"]]"), "{json}");
        assert!(json.contains("\"prune_level\":\"static\""), "{json}");
        assert!(json.contains("\"accesses_performed\":2"), "{json}");
        assert!(json.contains("\"accesses_pruned\":0"), "{json}");
        assert!(json.contains("\"derivations_suppressed\":0"), "{json}");
        assert!(json.contains("\"pruned_per_frontier\":["), "{json}");
        // One delta entry per fixpoint step: positions with no caches flush
        // a bare 0, each populated cache contributes its dispatch step (1
        // new access) plus the barren confirmation step (0). Their sum is
        // total_requested.
        assert!(json.contains("\"delta_schedule\":[0,0,1,0,1,0]"), "{json}");
        assert!(
            json.contains("\"r1\":{\"accesses\":1,\"extracted\":1}"),
            "{json}"
        );
        assert!(json.contains("\"time_to_first_answer_us\":null"), "{json}");
        assert!(json.contains("\"execution\":1"), "{json}");
        assert!(json.contains("\"cumulative_execute\":"), "{json}");
        // `Toorjah::new` leaves observability disabled: no metrics block.
        assert!(json.ends_with("\"metrics\":null}"), "{json}");
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn builder_instances_emit_the_metrics_block() {
        let schema = Schema::parse("r1^io(A, B)").unwrap();
        let db = Instance::with_data(&schema, [("r1", vec![tuple!["a", "b1"]])]).unwrap();
        let system = Toorjah::builder(InstanceSource::new(schema.clone(), db)).build();
        let response = system.ask("q(B) <- r1('a', B)").unwrap();
        let json = response.to_json(&schema);
        assert!(json.contains("\"metrics\":{\"interner\":{"), "{json}");
        assert!(json.contains("\"kernel.rounds\":"), "{json}");
        assert!(json.contains("\"dispatch.latency_us.r1\":"), "{json}");
        assert!(json.contains("\"shards\":["), "{json}");
        assert!(json.ends_with("}}"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escaping_and_integers() {
        let mut s = String::new();
        push_str_json(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let mut t = String::new();
        push_tuple_json(&mut t, &tuple![2008, "x"]);
        assert_eq!(t, "[2008,\"x\"]");
    }
}
