//! The distillation executor (§V, Fig. 5).
//!
//! Architecture, mirroring the paper:
//!
//! * the **cache database** (a [`FactStore`]) collects extracted tuples;
//! * **access tables** hold the access tuples generated from the caches
//!   according to the minimal plan;
//! * one **wrapper** thread per source relation owns a *bounded queue* of
//!   access tuples and performs the (slow) remote accesses;
//! * the coordinator **distills** access tuples to wrappers as soon as they
//!   can be generated from the cache database, inserts extraction results,
//!   and emits answers incrementally via delta evaluation of the rewritten
//!   query.
//!
//! Every access tuple is sent at most once per relation (the meta-cache
//! discipline), so the access set equals the sequential executor's — only
//! the schedule differs. Answers therefore coincide with
//! [`toorjah_engine::execute_plan`]; the integration tests assert this.
//!
//! The wrappers route their accesses through a [`SharedAccessCache`]
//! ([`run_distillation_cached`]): a warm session cache turns remote accesses
//! into local reads, and concurrent distillations over one handle coalesce
//! identical in-flight accesses instead of duplicating them. The per-run
//! [`AccessLog`] records only the accesses this run actually performed.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;
use toorjah_cache::SharedAccessCache;
use toorjah_catalog::{RelationId, Tuple, Value};
use toorjah_core::{DomainMode, QueryPlan};
use toorjah_datalog::{rule_head_instances_pinned, FactStore};
use toorjah_engine::{AccessLog, EngineError, SourceProvider};

use crate::{AnswerStream, StreamEvent, StreamReport};

/// Options for the distillation executor.
#[derive(Clone, Copy, Debug)]
pub struct DistillationOptions {
    /// Capacity of each wrapper's queue of pending access tuples.
    pub queue_capacity: usize,
    /// Hard cap on distinct accesses.
    pub max_accesses: usize,
}

impl Default for DistillationOptions {
    fn default() -> Self {
        DistillationOptions {
            queue_capacity: 64,
            max_accesses: toorjah_engine::DEFAULT_ACCESS_BUDGET,
        }
    }
}

struct WorkItem {
    cache_idx: usize,
    relation: RelationId,
    binding: Tuple,
}

struct WorkResult {
    cache_idx: usize,
    relation: RelationId,
    binding: Tuple,
    /// The extraction plus whether this run actually performed the access
    /// (`false`: served or coalesced by the shared cache at zero cost).
    outcome: Result<(Arc<[Tuple]>, bool), EngineError>,
}

/// Starts a distillation execution of `plan` on a background coordinator
/// thread; answers stream through the returned [`AnswerStream`]. Each run
/// gets a private access cache — use [`run_distillation_cached`] to share
/// one across runs and sessions.
pub fn run_distillation(
    plan: QueryPlan,
    provider: Arc<dyn SourceProvider>,
    options: DistillationOptions,
) -> AnswerStream {
    run_distillation_cached(plan, provider, options, SharedAccessCache::unbounded())
}

/// [`run_distillation`] over a caller-provided [`SharedAccessCache`]:
/// retained accesses are applied directly by the coordinator (never
/// dispatched to a wrapper), and wrapper accesses are performed *through*
/// the cache, so identical accesses of concurrent runs coalesce.
pub fn run_distillation_cached(
    plan: QueryPlan,
    provider: Arc<dyn SourceProvider>,
    options: DistillationOptions,
    cache: SharedAccessCache,
) -> AnswerStream {
    let (event_tx, event_rx) = unbounded::<StreamEvent>();
    let handle = std::thread::spawn(move || {
        coordinate(plan, provider, options, &cache, &event_tx);
    });
    AnswerStream {
        receiver: event_rx,
        handle,
    }
}

fn coordinate(
    plan: QueryPlan,
    provider: Arc<dyn SourceProvider>,
    options: DistillationOptions,
    access_cache: &SharedAccessCache,
    events: &Sender<StreamEvent>,
) {
    let started = Instant::now();

    // Resolve provider relations by name.
    let mut provider_rel: Vec<Option<RelationId>> = Vec::with_capacity(plan.caches.len());
    for cache in &plan.caches {
        if cache.is_constant_source {
            provider_rel.push(None);
            continue;
        }
        let name = plan.schema.relation(cache.relation).name();
        match provider.schema().relation_id(name) {
            Some(id) => provider_rel.push(Some(id)),
            None => {
                let _ = events.send(StreamEvent::Failed(EngineError::PlanMismatch(format!(
                    "provider lacks relation {name}"
                ))));
                return;
            }
        }
    }

    let Some(answer_rule) = plan.program.rules_for(plan.answer_pred).next().cloned() else {
        let _ = events.send(StreamEvent::Failed(EngineError::PlanMismatch(
            "plan has no answer rule".to_string(),
        )));
        return;
    };

    // One wrapper per distinct provider relation.
    let mut wrapper_tx: HashMap<RelationId, Sender<WorkItem>> = HashMap::new();
    let (result_tx, result_rx) = unbounded::<WorkResult>();
    let mut wrapper_handles = Vec::new();
    for rel in provider_rel.iter().flatten().copied() {
        if wrapper_tx.contains_key(&rel) {
            continue;
        }
        let (tx, rx) = bounded::<WorkItem>(options.queue_capacity);
        wrapper_tx.insert(rel, tx);
        let provider = Arc::clone(&provider);
        let result_tx = result_tx.clone();
        let shared = access_cache.clone();
        wrapper_handles.push(std::thread::spawn(move || {
            while let Ok(item) = rx.recv() {
                // The access goes through the shared cache: a concurrent
                // identical access (another run, another session) is
                // coalesced rather than duplicated, and the result is
                // retained for everyone.
                let outcome = shared
                    .get_or_load(item.relation, &item.binding, || {
                        provider.access(item.relation, &item.binding)
                    })
                    .map(|lookup| (lookup.tuples, lookup.outcome.loaded()));
                let sent = result_tx.send(WorkResult {
                    cache_idx: item.cache_idx,
                    relation: item.relation,
                    binding: item.binding,
                    outcome,
                });
                if sent.is_err() {
                    break;
                }
            }
        }));
    }
    drop(result_tx);

    // Shared state (single coordinator thread; the mutex documents the
    // hand-off discipline and keeps the borrow checker happy across the
    // closure boundaries below).
    let facts = Mutex::new(FactStore::new());
    let mut log = AccessLog::new();
    // Extractions available to this run: (relation, binding) → tuples.
    // Results are *pinned* here for the run's lifetime, so an eviction from
    // the shared cache mid-run can never starve a sibling cache of data it
    // still needs.
    let mut extractions: HashMap<(RelationId, Tuple), Arc<[Tuple]>> = HashMap::new();
    // Bindings already dispatched per relation (the meta-cache discipline).
    let mut requested: HashSet<(RelationId, Tuple)> = HashSet::new();
    // Bindings already applied per cache.
    let mut served: Vec<HashSet<Tuple>> = vec![HashSet::new(); plan.caches.len()];
    let mut answers_seen: HashSet<Tuple> = HashSet::new();
    let mut answers: Vec<Tuple> = Vec::new();
    let mut first_answer_at = None;
    let mut in_flight = 0usize;

    // Seed the constant caches.
    {
        let mut facts = facts.lock();
        for (cache_idx, cache) in plan.caches.iter().enumerate() {
            if !cache.is_constant_source {
                continue;
            }
            let mut delta = FactStore::new();
            for (rel, _pred, value) in &plan.constant_facts {
                if *rel == cache.relation {
                    let t = Tuple::new(vec![*value]);
                    if facts.insert(cache.cache_pred, t.clone()) {
                        delta.insert(cache.cache_pred, t);
                    }
                }
            }
            emit_delta_answers(
                &plan,
                &answer_rule,
                &facts,
                cache_idx,
                &delta,
                &mut answers_seen,
                &mut answers,
                &mut first_answer_at,
                started,
                events,
            );
        }
    }

    loop {
        // Distillation pass: generate every access tuple currently derivable.
        let mut dispatched_or_applied = false;
        for (cache_idx, cache) in plan.caches.iter().enumerate() {
            let Some(relation) = provider_rel[cache_idx] else {
                continue;
            };
            let pools: Vec<Vec<Value>> = {
                let facts = facts.lock();
                cache
                    .input_domains
                    .iter()
                    .map(|dp| domain_values(&plan, dp, &facts))
                    .collect()
            };
            if pools.iter().any(Vec::is_empty) && !pools.is_empty() {
                continue;
            }
            for binding in CartesianProduct::new(&pools) {
                if served[cache_idx].contains(&binding) {
                    continue;
                }
                let key = (relation, binding.clone());
                if let Some(tuples) = extractions.get(&key) {
                    // Already available to this run: applied at zero cost
                    // (the meta-cache discipline — counted as cache-served,
                    // like a repeated frontier request in the sequential
                    // path).
                    log.record_cache_served();
                    apply_extraction(
                        &plan,
                        &answer_rule,
                        &facts,
                        cache_idx,
                        tuples,
                        &mut answers_seen,
                        &mut answers,
                        &mut first_answer_at,
                        started,
                        events,
                    );
                    served[cache_idx].insert(binding);
                    dispatched_or_applied = true;
                } else if !requested.contains(&key) {
                    if let Some(tuples) = access_cache.try_get(relation, &binding) {
                        // Retained by the shared cache (a previous query or
                        // a warm-started snapshot): no wrapper involved.
                        log.record_cache_served();
                        apply_extraction(
                            &plan,
                            &answer_rule,
                            &facts,
                            cache_idx,
                            &tuples,
                            &mut answers_seen,
                            &mut answers,
                            &mut first_answer_at,
                            started,
                            events,
                        );
                        served[cache_idx].insert(binding);
                        extractions.insert(key, tuples);
                        dispatched_or_applied = true;
                        continue;
                    }
                    // Budget: count performed plus in-flight accesses, since
                    // dispatched work is only logged on completion.
                    if log.total() + in_flight >= options.max_accesses {
                        let _ =
                            events.send(StreamEvent::Failed(EngineError::AccessBudgetExceeded {
                                limit: options.max_accesses,
                            }));
                        return;
                    }
                    requested.insert(key);
                    in_flight += 1;
                    dispatched_or_applied = true;
                    let item = WorkItem {
                        cache_idx,
                        relation,
                        binding,
                    };
                    if wrapper_tx[&relation].send(item).is_err() {
                        let _ = events.send(StreamEvent::Failed(EngineError::SourceFailure {
                            relation: plan.schema.relation(cache.relation).name().to_string(),
                            detail: "wrapper terminated".to_string(),
                        }));
                        return;
                    }
                }
            }
        }

        if in_flight == 0 {
            if dispatched_or_applied {
                continue; // meta-cache applications may enable more work
            }
            break; // quiescent: nothing in flight, nothing derivable
        }

        // Apply one extraction result (blocking).
        match result_rx.recv() {
            Ok(result) => {
                in_flight -= 1;
                match result.outcome {
                    Ok((tuples, performed)) => {
                        if performed {
                            // This run paid for the access; coalesced and
                            // cache-served wrapper results are free.
                            log.record(result.relation, result.binding.clone());
                            log.record_extracted(result.relation, tuples.iter());
                        } else {
                            log.record_cache_served();
                        }
                        apply_extraction(
                            &plan,
                            &answer_rule,
                            &facts,
                            result.cache_idx,
                            &tuples,
                            &mut answers_seen,
                            &mut answers,
                            &mut first_answer_at,
                            started,
                            events,
                        );
                        served[result.cache_idx].insert(result.binding.clone());
                        extractions.insert((result.relation, result.binding), tuples);
                    }
                    Err(e) => {
                        let _ = events.send(StreamEvent::Failed(e));
                        return;
                    }
                }
            }
            Err(_) => break,
        }
    }

    // Shut the wrappers down and finish.
    drop(wrapper_tx);
    for h in wrapper_handles {
        let _ = h.join();
    }
    let report = StreamReport {
        answers,
        stats: log.stats(),
        log,
        time_to_first_answer: first_answer_at,
        total_time: started.elapsed(),
    };
    let _ = events.send(StreamEvent::Done(Box::new(report)));
}

/// Inserts an extraction into a cache and streams the answers newly
/// derivable through the inserted tuples.
#[allow(clippy::too_many_arguments)]
fn apply_extraction(
    plan: &QueryPlan,
    answer_rule: &toorjah_datalog::Rule,
    facts: &Mutex<FactStore>,
    cache_idx: usize,
    tuples: &[Tuple],
    answers_seen: &mut HashSet<Tuple>,
    answers: &mut Vec<Tuple>,
    first_answer_at: &mut Option<std::time::Duration>,
    started: Instant,
    events: &Sender<StreamEvent>,
) {
    let cache_pred = plan.caches[cache_idx].cache_pred;
    let mut facts = facts.lock();
    let mut delta = FactStore::new();
    for t in tuples {
        if facts.insert(cache_pred, t.clone()) {
            delta.insert(cache_pred, t.clone());
        }
    }
    emit_delta_answers(
        plan,
        answer_rule,
        &facts,
        cache_idx,
        &delta,
        answers_seen,
        answers,
        first_answer_at,
        started,
        events,
    );
}

/// Delta evaluation of the answer rule: pin, in turn, every body literal
/// over the updated cache to the freshly inserted tuples.
#[allow(clippy::too_many_arguments)]
fn emit_delta_answers(
    plan: &QueryPlan,
    answer_rule: &toorjah_datalog::Rule,
    facts: &FactStore,
    cache_idx: usize,
    delta: &FactStore,
    answers_seen: &mut HashSet<Tuple>,
    answers: &mut Vec<Tuple>,
    first_answer_at: &mut Option<std::time::Duration>,
    started: Instant,
    events: &Sender<StreamEvent>,
) {
    let cache_pred = plan.caches[cache_idx].cache_pred;
    if delta.is_empty(cache_pred) {
        return;
    }
    for (idx, lit) in answer_rule.body.iter().enumerate() {
        if lit.pred != cache_pred {
            continue;
        }
        for answer in rule_head_instances_pinned(answer_rule, facts, idx, delta) {
            if answers_seen.insert(answer.clone()) {
                let at = started.elapsed();
                answers.push(answer.clone());
                if first_answer_at.is_none() {
                    *first_answer_at = Some(at);
                }
                let _ = events.send(StreamEvent::Answer { tuple: answer, at });
            }
        }
    }
}

/// The union/intersection of provider-column projections (same semantics as
/// the sequential executor).
fn domain_values(
    plan: &QueryPlan,
    dp: &toorjah_core::DomainPredInfo,
    facts: &FactStore,
) -> Vec<Value> {
    let project = |provider: &toorjah_core::Provider| -> Vec<Value> {
        let cache = &plan.caches[provider.cache];
        let mut seen = HashSet::new();
        facts
            .tuples(cache.cache_pred)
            .iter()
            .map(|t| t[provider.column])
            .filter(|v| seen.insert(*v))
            .collect()
    };
    match dp.mode {
        DomainMode::Union => {
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            for p in &dp.providers {
                for v in project(p) {
                    if seen.insert(v) {
                        out.push(v);
                    }
                }
            }
            out
        }
        DomainMode::Join => {
            let mut iter = dp.providers.iter();
            let Some(first) = iter.next() else {
                return Vec::new();
            };
            let mut out = project(first);
            for p in iter {
                let other: HashSet<Value> = project(p).into_iter().collect();
                out.retain(|v| other.contains(v));
            }
            out
        }
    }
}

/// Odometer-style cartesian product over value pools; an empty pool list
/// yields exactly the empty binding (free relations).
struct CartesianProduct<'a> {
    pools: &'a [Vec<Value>],
    odometer: Vec<usize>,
    done: bool,
}

impl<'a> CartesianProduct<'a> {
    fn new(pools: &'a [Vec<Value>]) -> Self {
        let done = pools.iter().any(Vec::is_empty) && !pools.is_empty();
        CartesianProduct {
            pools,
            odometer: vec![0; pools.len()],
            done,
        }
    }
}

impl Iterator for CartesianProduct<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.done {
            return None;
        }
        let binding: Tuple = self
            .odometer
            .iter()
            .zip(self.pools)
            .map(|(&i, p)| p[i])
            .collect();
        // Advance.
        let mut pos = 0;
        loop {
            if pos == self.odometer.len() {
                self.done = true;
                break;
            }
            self.odometer[pos] += 1;
            if self.odometer[pos] < self.pools[pos].len() {
                break;
            }
            self.odometer[pos] = 0;
            pos += 1;
        }
        Some(binding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_catalog::{tuple, Instance, Schema};
    use toorjah_core::plan_query;
    use toorjah_engine::{execute_plan, ExecOptions, InstanceSource, LatencySource};
    use toorjah_query::parse_query;

    fn example_plan_and_source() -> (QueryPlan, Arc<dyn SourceProvider>) {
        let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
        let db = Instance::with_data(
            &schema,
            [
                ("r1", vec![tuple!["a", "b1"], tuple!["a", "b2"]]),
                ("r2", vec![tuple!["b1", "c1"], tuple!["b2", "c2"]]),
                ("r3", vec![tuple!["c1", "a"]]),
            ],
        )
        .unwrap();
        let q = parse_query("q(C) <- r1('a', B), r2(B, C)", &schema).unwrap();
        let planned = plan_query(&q, &schema).unwrap();
        (planned.plan, Arc::new(InstanceSource::new(schema, db)))
    }

    #[test]
    fn distillation_matches_sequential_execution() {
        let (plan, provider) = example_plan_and_source();
        let sequential = execute_plan(&plan, provider.as_ref(), ExecOptions::default()).unwrap();
        let stream = run_distillation(
            plan.clone(),
            Arc::clone(&provider),
            DistillationOptions::default(),
        );
        let report = stream.wait().unwrap();
        let mut a = report.answers.clone();
        let mut b = sequential.answers.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(report.stats.total_accesses, sequential.stats.total_accesses);
        assert!(report.time_to_first_answer.is_some());
        assert!(report.time_to_first_answer.unwrap() <= report.total_time);
    }

    #[test]
    fn answers_stream_incrementally() {
        let (plan, provider) = example_plan_and_source();
        let stream = run_distillation(plan, provider, DistillationOptions::default());
        let mut events = Vec::new();
        while let Some(e) = stream.next_event() {
            events.push(e);
        }
        let answer_count = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Answer { .. }))
            .count();
        assert_eq!(answer_count, 2); // c1 and c2
        assert!(matches!(events.last(), Some(StreamEvent::Done(_))));
    }

    #[test]
    fn latency_source_shows_first_answer_before_total() {
        let schema = Schema::parse("f^oo(A, B) g^io(B, C)").unwrap();
        let mut db = Instance::new(&schema);
        for i in 0..20 {
            db.insert("f", tuple![format!("a{i}"), format!("b{i}")])
                .unwrap();
            db.insert("g", tuple![format!("b{i}"), format!("c{i}")])
                .unwrap();
        }
        let src = LatencySource::new(
            InstanceSource::new(schema.clone(), db),
            std::time::Duration::from_millis(2),
        )
        .with_real_sleep();
        let q = parse_query("q(C) <- f(A, B), g(B, C)", &schema).unwrap();
        let planned = plan_query(&q, &schema).unwrap();
        let stream = run_distillation(planned.plan, Arc::new(src), DistillationOptions::default());
        let report = stream.wait().unwrap();
        assert_eq!(report.answers.len(), 20);
        // 21 accesses of ≥2 ms each happen on the wrapper threads; the first
        // answer requires only 2 of them.
        let first = report.time_to_first_answer.unwrap();
        assert!(
            first < report.total_time,
            "first answer should arrive before the run completes ({first:?} vs {:?})",
            report.total_time
        );
    }

    #[test]
    fn warm_cache_distillation_performs_no_accesses() {
        let (plan, provider) = example_plan_and_source();
        let cache = SharedAccessCache::unbounded();
        let cold = run_distillation_cached(
            plan.clone(),
            Arc::clone(&provider),
            DistillationOptions::default(),
            cache.clone(),
        )
        .wait()
        .unwrap();
        assert!(cold.stats.total_accesses > 0);
        let warm = run_distillation_cached(
            plan,
            provider,
            DistillationOptions::default(),
            cache.clone(),
        )
        .wait()
        .unwrap();
        let mut a = warm.answers.clone();
        let mut b = cold.answers.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "answers invariant under cache reuse");
        assert_eq!(warm.stats.total_accesses, 0, "warm run pays nothing");
        assert_eq!(cache.stats().misses as usize, cold.stats.total_accesses);
    }

    #[test]
    fn failure_is_reported() {
        let (plan, _) = example_plan_and_source();
        let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
        let db = Instance::with_data(&schema, [("r1", vec![tuple!["a", "b1"]])]).unwrap();
        let flaky = toorjah_engine::FlakySource::new(
            InstanceSource::new(schema, db),
            1, // every access fails
        );
        let stream = run_distillation(plan, Arc::new(flaky), DistillationOptions::default());
        assert!(stream.wait().is_err());
    }

    #[test]
    fn budget_failure() {
        let (plan, provider) = example_plan_and_source();
        let stream = run_distillation(
            plan,
            provider,
            DistillationOptions {
                max_accesses: 1,
                ..DistillationOptions::default()
            },
        );
        assert!(matches!(
            stream.wait(),
            Err(EngineError::AccessBudgetExceeded { limit: 1 })
        ));
    }

    #[test]
    fn cartesian_product_shapes() {
        let pools = vec![vec![Value::from(1), Value::from(2)], vec![Value::from(10)]];
        let all: Vec<Tuple> = CartesianProduct::new(&pools).collect();
        assert_eq!(all.len(), 2);
        // Empty pool list → single empty binding.
        let empty: Vec<Tuple> = CartesianProduct::new(&[]).collect();
        assert_eq!(empty, vec![Tuple::empty()]);
        // A pool with an empty list → nothing.
        let none: Vec<Tuple> = CartesianProduct::new(&[vec![]]).collect();
        assert!(none.is_empty());
    }
}
