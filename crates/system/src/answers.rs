//! Incremental answer delivery.
//!
//! §V: *"Toorjah presents the result tuples incrementally, as soon as they
//! are generated; this is particularly suitable when the results are
//! paginated. Therefore, the user can interactively stop the lengthy
//! answering process, once (s)he is satisfied with the answers."*

use std::time::Duration;

use crossbeam::channel::Receiver;
use toorjah_catalog::Tuple;
use toorjah_engine::{AccessLog, AccessStats, EngineError};

/// An event on the answer stream.
#[derive(Clone, Debug)]
pub enum StreamEvent {
    /// A new answer tuple, stamped with the elapsed time since execution
    /// started.
    Answer {
        /// The answer.
        tuple: Tuple,
        /// Elapsed time when it was produced.
        at: Duration,
    },
    /// Execution finished; no more events follow. Boxed: the report
    /// (answers + full access log) dwarfs the per-answer events.
    Done(Box<StreamReport>),
    /// Execution failed; no more events follow.
    Failed(EngineError),
}

/// Final statistics of a streaming execution.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// All distinct answers, in production order.
    pub answers: Vec<Tuple>,
    /// Access counters (a snapshot of `log`).
    pub stats: AccessStats,
    /// The run's full access log: exactly the accesses this run performed
    /// (plus its cache-served counter), so composite executions — e.g. one
    /// streaming run per union disjunct — can merge per-run accounts under
    /// the set semantics ([`AccessLog::merge`]).
    pub log: AccessLog,
    /// Time until the first answer was produced (`None` when the answer set
    /// is empty).
    pub time_to_first_answer: Option<Duration>,
    /// Total execution time.
    pub total_time: Duration,
}

/// A handle to a running distillation execution: iterate [`StreamEvent`]s or
/// block for the final report.
pub struct AnswerStream {
    pub(crate) receiver: Receiver<StreamEvent>,
    pub(crate) handle: std::thread::JoinHandle<()>,
}

impl AnswerStream {
    /// Receives the next event, blocking until one is available. Returns
    /// `None` after the terminal event has been consumed.
    pub fn next_event(&self) -> Option<StreamEvent> {
        self.receiver.recv().ok()
    }

    /// Iterates answers only (silently dropping the terminal event), in
    /// production order. The iterator ends when execution completes.
    pub fn answers(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.receiver.iter().filter_map(|e| match e {
            StreamEvent::Answer { tuple, .. } => Some(tuple),
            _ => None,
        })
    }

    /// Drains the stream and returns the final report.
    pub fn wait(self) -> Result<StreamReport, EngineError> {
        let mut report = None;
        for event in self.receiver.iter() {
            match event {
                StreamEvent::Answer { .. } => {}
                StreamEvent::Done(r) => report = Some(Ok(*r)),
                StreamEvent::Failed(e) => report = Some(Err(e)),
            }
        }
        let _ = self.handle.join();
        report.unwrap_or_else(|| {
            Err(EngineError::PlanMismatch(
                "distillation terminated without a final event".to_string(),
            ))
        })
    }
}
