//! The `Toorjah` facade: parse → prepare → execute.
//!
//! The lifecycle has three phases, each its own API step:
//!
//! 1. **parse** — [`Statement::parse`] turns text into a [`Statement`]
//!    (plain CQ, `;`-separated union, or `!`-negated query);
//! 2. **prepare** — [`Toorjah::prepare`] plans the statement once,
//!    returning a [`crate::Prepared`] that is `Send + Sync` and cheaply
//!    re-executable;
//! 3. **execute** — [`crate::Prepared::execute`] runs the plan under an
//!    [`ExecMode`] and returns the unified [`Response`].
//!
//! [`Toorjah::ask`] remains as the one-shot convenience: it chains the
//! three phases and stitches the parse/plan timings into the response's
//! [`crate::ExecutionProfile`].

use std::error::Error;
use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

use toorjah_cache::{CacheConfig, CacheStats, SharedAccessCache};
use toorjah_catalog::Schema;
use toorjah_core::{plan_query, CoreError, Planned, Planner};
use toorjah_engine::{
    plan_negated, DispatchOptions, EngineError, ExecOptions, NegationError, PruningLevel,
    SourceProvider,
};
use toorjah_obs::{Obs, TraceSink};
use toorjah_query::{ConjunctiveQuery, QueryError, Statement};

use crate::prepared::PreparedKind;
use crate::{DistillationOptions, ExecMode, MetricsReport, Prepared, Response};

/// Configuration of a [`Toorjah`] instance.
#[derive(Clone, Debug, Default)]
pub struct ToorjahConfig {
    /// Planner settings (CQ minimization, ordering heuristic).
    pub planner: Planner,
    /// Sequential execution settings.
    pub exec: ExecOptions,
    /// Distillation (streaming) settings.
    pub distillation: DistillationOptions,
}

/// Errors surfaced by the facade.
#[derive(Clone, Debug)]
pub enum ToorjahError {
    /// Statement parsing/validation failed.
    Query(QueryError),
    /// Planning failed (e.g. the query is not answerable).
    Planning(CoreError),
    /// Execution failed.
    Execution(EngineError),
    /// The requested operation is not supported for this statement kind.
    Unsupported(String),
}

impl fmt::Display for ToorjahError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToorjahError::Query(e) => write!(f, "query error: {e}"),
            ToorjahError::Planning(e) => write!(f, "planning error: {e}"),
            ToorjahError::Execution(e) => write!(f, "execution error: {e}"),
            ToorjahError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl Error for ToorjahError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ToorjahError::Query(e) => Some(e),
            ToorjahError::Planning(e) => Some(e),
            ToorjahError::Execution(e) => Some(e),
            ToorjahError::Unsupported(_) => None,
        }
    }
}

impl From<QueryError> for ToorjahError {
    fn from(e: QueryError) -> Self {
        ToorjahError::Query(e)
    }
}

impl From<CoreError> for ToorjahError {
    fn from(e: CoreError) -> Self {
        ToorjahError::Planning(e)
    }
}

impl From<EngineError> for ToorjahError {
    fn from(e: EngineError) -> Self {
        ToorjahError::Execution(e)
    }
}

impl From<NegationError> for ToorjahError {
    fn from(e: NegationError) -> Self {
        match e {
            NegationError::Planning(e) => ToorjahError::Planning(e),
            NegationError::Execution(e) => ToorjahError::Execution(e),
            NegationError::Internal(msg) => ToorjahError::Planning(CoreError::Internal(msg)),
        }
    }
}

/// Builds a [`Toorjah`] instance: provider, planner/executor configuration,
/// dispatch settings and an optional session cache in one fluent chain.
///
/// ```
/// use toorjah_catalog::{Instance, Schema};
/// use toorjah_engine::{DispatchOptions, InstanceSource};
/// use toorjah_system::Toorjah;
/// use toorjah_cache::SharedAccessCache;
///
/// let schema = Schema::parse("r^oo(A, B)").unwrap();
/// let provider = InstanceSource::new(schema.clone(), Instance::new(&schema));
/// let system = Toorjah::builder(provider)
///     .dispatch(DispatchOptions::parallel(4).with_batch_size(8))
///     .cache(SharedAccessCache::unbounded())
///     .build();
/// assert!(system.session_cache().is_some());
/// ```
pub struct ToorjahBuilder {
    provider: Arc<dyn SourceProvider>,
    config: ToorjahConfig,
    session_cache: Option<SharedAccessCache>,
    /// Cache configuration for a session cache built at [`ToorjahBuilder::build`]
    /// time, wired to the instance's observability handle.
    session_cache_config: Option<CacheConfig>,
    /// `None` means "default": a metrics-only [`Obs::enabled`] handle.
    obs: Option<Obs>,
}

impl ToorjahBuilder {
    /// Replaces the whole configuration at once.
    pub fn config(mut self, config: ToorjahConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the planner settings.
    pub fn planner(mut self, planner: Planner) -> Self {
        self.config.planner = planner;
        self
    }

    /// Replaces the executor settings.
    pub fn exec(mut self, exec: ExecOptions) -> Self {
        self.config.exec = exec;
        self
    }

    /// Replaces the distillation (streaming) settings.
    pub fn distillation(mut self, distillation: DistillationOptions) -> Self {
        self.config.distillation = distillation;
        self
    }

    /// Configures how each round's access frontier is dispatched (worker
    /// threads, batched round trips). Answers and access counts are
    /// invariant in these settings; only wall-clock changes.
    pub fn dispatch(mut self, dispatch: DispatchOptions) -> Self {
        self.config.exec.dispatch = dispatch;
        self
    }

    /// Selects the tiered pruning configuration (see
    /// [`PruningLevel`](toorjah_engine::PruningLevel)):
    ///
    /// | level     | adds                                               |
    /// |-----------|----------------------------------------------------|
    /// | `off`     | nothing — plans with strong-arc analysis disabled  |
    /// | `static`  | plan-time relevance (the default)                  |
    /// | `runtime` | kernel access-relevance pruning before dispatch    |
    /// | `magic`   | demand-driven derivation suppression at the fold   |
    ///
    /// Answers are invariant across every level; `accesses_performed`
    /// drops from `runtime` up (surfaced as
    /// `profile.dispatch.accesses_pruned`) and derived-tuple counts drop
    /// at `magic` (surfaced as `profile.dispatch.derivations_suppressed`).
    /// Ignored by the streaming executor.
    pub fn prune_level(mut self, level: PruningLevel) -> Self {
        self.config.exec.prune_level = level;
        self
    }

    /// Deprecated boolean alias for [`ToorjahBuilder::prune_level`]:
    /// `true` ≙ [`PruningLevel::Runtime`], `false` ≙
    /// [`PruningLevel::Static`] (the default).
    #[deprecated(note = "use prune_level(PruningLevel::…) instead")]
    pub fn pruning(self, enabled: bool) -> Self {
        self.prune_level(if enabled {
            PruningLevel::Runtime
        } else {
            PruningLevel::Static
        })
    }

    /// Opt-in first-k early termination: executions stop as soon as `k`
    /// answers are certain and return exactly the first `k`. Unions stop
    /// between disjuncts; negated statements apply the cap after the
    /// negation checks; the streaming executor ignores it.
    pub fn first_k(mut self, k: usize) -> Self {
        self.config.exec.first_k = Some(k);
        self
    }

    /// Installs a session cache shared by every statement this instance
    /// (and any other holder of the handle) executes. The cache keeps its
    /// own per-shard counters regardless; to additionally have it *trace*
    /// evictions and coalesces, build it from a config with
    /// [`ToorjahBuilder::cache_config`] instead (or construct it yourself
    /// with [`SharedAccessCache::with_obs`]).
    pub fn cache(mut self, cache: SharedAccessCache) -> Self {
        self.session_cache = Some(cache);
        self
    }

    /// Builds the session cache from `config` at [`ToorjahBuilder::build`]
    /// time, wired to the instance's observability handle — evictions and
    /// single-flight coalesces then emit trace events when a sink is
    /// installed. Overrides [`ToorjahBuilder::cache`].
    pub fn cache_config(mut self, config: CacheConfig) -> Self {
        self.session_cache_config = Some(config);
        self
    }

    /// Replaces the observability handle. The default is a metrics-only
    /// [`Obs::enabled`] handle — counters, gauges and latency histograms
    /// are collected (lock-free atomic bumps) and surfaced through
    /// [`Toorjah::metrics`] / [`Response::metrics`]. Pass
    /// [`Obs::disabled`] to opt out entirely (every probe then costs one
    /// branch and allocates nothing), or a tracing handle from
    /// [`Obs::with_sink`] — which [`ToorjahBuilder::trace_sink`]
    /// abbreviates — for the full structured event stream.
    pub fn observability(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Enables structured execution tracing into `sink`: every kernel
    /// round, access, cache eviction and coalesce is exported as a typed
    /// [`toorjah_obs::TraceEvent`] (metrics stay on too). Shorthand for
    /// `observability(Obs::with_sink(sink))`.
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.obs = Some(Obs::with_sink(sink));
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Toorjah {
        let obs = self.obs.unwrap_or_else(Obs::enabled);
        let mut config = self.config;
        config.exec.obs = obs;
        let session_cache = self
            .session_cache_config
            .map(|c| SharedAccessCache::with_obs(c, obs))
            .or(self.session_cache);
        Toorjah {
            provider: self.provider,
            config,
            session_cache,
        }
    }
}

/// The Toorjah system: a source provider plus the planner/executor pipeline.
///
/// By default each statement evaluates against a private, unbounded access
/// cache (the paper's one-shot semantics). Install a session cache with
/// [`Toorjah::builder`] (or [`Toorjah::with_cache`]) to share extractions
/// across statements — and, since [`SharedAccessCache`] handles are cheaply
/// cloneable, across any number of `Toorjah` instances and threads serving
/// the same provider.
pub struct Toorjah {
    pub(crate) provider: Arc<dyn SourceProvider>,
    pub(crate) config: ToorjahConfig,
    pub(crate) session_cache: Option<SharedAccessCache>,
}

impl Toorjah {
    /// Wraps a source provider with the default configuration.
    pub fn new(provider: impl SourceProvider + 'static) -> Self {
        Toorjah {
            provider: Arc::new(provider),
            config: ToorjahConfig::default(),
            session_cache: None,
        }
    }

    /// Wraps an already-shared provider.
    pub fn from_arc(provider: Arc<dyn SourceProvider>) -> Self {
        Toorjah {
            provider,
            config: ToorjahConfig::default(),
            session_cache: None,
        }
    }

    /// Starts a [`ToorjahBuilder`] over a provider — the one-stop
    /// configuration surface consolidating [`Toorjah::with_config`],
    /// [`Toorjah::with_cache`] and [`Toorjah::with_dispatch`].
    pub fn builder(provider: impl SourceProvider + 'static) -> ToorjahBuilder {
        Self::builder_from_arc(Arc::new(provider))
    }

    /// [`Toorjah::builder`] over an already-shared provider.
    pub fn builder_from_arc(provider: Arc<dyn SourceProvider>) -> ToorjahBuilder {
        ToorjahBuilder {
            provider,
            config: ToorjahConfig::default(),
            session_cache: None,
            session_cache_config: None,
            obs: None,
        }
    }

    /// Replaces the configuration (shorthand for the builder's
    /// [`ToorjahBuilder::config`]).
    pub fn with_config(mut self, config: ToorjahConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a session cache: consecutive statements (and any other
    /// session holding a clone of the handle) skip accesses that are
    /// already retained. Answers are invariant under cache reuse; only the
    /// access counts drop (see DESIGN.md).
    pub fn with_cache(mut self, cache: SharedAccessCache) -> Self {
        self.session_cache = Some(cache);
        self
    }

    /// Configures how each round's access frontier is dispatched: worker
    /// threads and batched round trips. Answers, access counts and cache
    /// hit/miss totals are invariant in these settings (see DESIGN.md,
    /// "Frontier batching & the access cost model"); only wall-clock
    /// changes.
    pub fn with_dispatch(mut self, dispatch: DispatchOptions) -> Self {
        self.config.exec.dispatch = dispatch;
        self
    }

    /// The session cache, when one is installed.
    pub fn session_cache(&self) -> Option<&SharedAccessCache> {
        self.session_cache.as_ref()
    }

    /// Statistics of the session cache, when one is installed.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.session_cache.as_ref().map(SharedAccessCache::stats)
    }

    /// The observability handle this instance threads through every
    /// execution. [`Toorjah::new`] leaves it disabled; the builder enables
    /// metrics by default (see [`ToorjahBuilder::observability`]).
    pub fn obs(&self) -> Obs {
        self.config.exec.obs
    }

    /// A point-in-time [`MetricsReport`]: the registry's instruments plus
    /// interner occupancy and the session cache's totals + per-shard
    /// counters (defaults when no session cache is installed). `None`
    /// under a disabled observability handle. For per-execution metrics —
    /// including executions without a session cache — read
    /// [`Response::metrics`] instead.
    pub fn metrics(&self) -> Option<MetricsReport> {
        self.config
            .exec
            .obs
            .snapshot()
            .map(|snapshot| MetricsReport {
                snapshot,
                interner: self.interner().stats(),
                cache: self.cache_stats().unwrap_or_default(),
                shards: self
                    .session_cache
                    .as_ref()
                    .map(SharedAccessCache::shard_counters)
                    .unwrap_or_default(),
            })
    }

    /// The string interner this session's values resolve against.
    ///
    /// The interner is process-wide — cache keys built by one session must
    /// hash and compare identically in every other session sharing a
    /// [`SharedAccessCache`] — but it is surfaced here as session-level
    /// observability: [`Interner::stats`](toorjah_catalog::Interner::stats)
    /// reports the distinct-symbol count and the payload bytes accounted
    /// once at the interner instead of per retained value.
    pub fn interner(&self) -> &'static toorjah_catalog::Interner {
        toorjah_catalog::Interner::global()
    }

    /// The schema of the underlying sources.
    pub fn schema(&self) -> &Schema {
        self.provider.schema()
    }

    /// The [`ExecMode`] one-shot calls use: [`ExecMode::Sequential`], or
    /// [`ExecMode::Parallel`] when dispatch settings were configured.
    pub fn default_mode(&self) -> ExecMode {
        Self::mode_for(&self.config)
    }

    pub(crate) fn mode_for(config: &ToorjahConfig) -> ExecMode {
        if config.exec.dispatch == DispatchOptions::sequential() {
            ExecMode::Sequential
        } else {
            ExecMode::Parallel(config.exec.dispatch)
        }
    }

    /// Plans a statement once, returning a [`Prepared`] that executes any
    /// number of times — from any thread — without re-planning. The plan
    /// depends only on statement and schema, never on data seen during an
    /// execution.
    ///
    /// Non-answerable statements fail here for CQs and negated queries;
    /// non-answerable *union disjuncts* are skipped (their indexes are
    /// reported by [`Prepared::skipped_disjuncts`] and every
    /// [`Response::skipped_disjuncts`]), mirroring the union semantics of
    /// §II: a disjunct with no obtainable answers contributes nothing.
    pub fn prepare(&self, statement: &Statement) -> Result<Prepared, ToorjahError> {
        let schema = self.provider.schema();
        let planner = self.effective_planner();
        let kind = match statement {
            Statement::Cq(q) => PreparedKind::Cq(Box::new(planner.plan(q, schema)?)),
            Statement::Union(u) => {
                let mut planned = Vec::new();
                let mut skipped = Vec::new();
                for (i, cq) in u.cqs().iter().enumerate() {
                    match planner.plan(cq, schema) {
                        Ok(p) => planned.push(p),
                        Err(CoreError::NotAnswerable { .. }) => skipped.push(i),
                        Err(e) => return Err(e.into()),
                    }
                }
                PreparedKind::Union { planned, skipped }
            }
            Statement::Negated(nq) => {
                PreparedKind::Negated(Box::new(plan_negated(nq, schema, &planner)?))
            }
        };
        Ok(Prepared {
            provider: Arc::clone(&self.provider),
            config: self.config.clone(),
            session_cache: self.session_cache.clone(),
            statement: statement.clone(),
            kind,
            executions: AtomicU64::new(0),
            cumulative_execute_ns: AtomicU64::new(0),
        })
    }

    /// The planner [`Toorjah::prepare`] actually uses: at
    /// [`PruningLevel::Off`] the strong-arc machinery is disabled —
    /// reproducing the [`toorjah_core::gfp_relevance_only`] ablation, so
    /// `off` really means *no* relevance reasoning at any layer. Every
    /// other level plans with the configured settings.
    fn effective_planner(&self) -> Planner {
        if self.config.exec.prune_level == PruningLevel::Off {
            Planner {
                strong_arcs: false,
                ..self.config.planner
            }
        } else {
            self.config.planner
        }
    }

    /// One-shot convenience: parse → prepare → execute under the
    /// configured [`Toorjah::default_mode`], with all three phase timings
    /// stitched into the response profile. Handles every statement kind —
    /// plain CQs, `;`-separated unions, `!`-negated queries.
    pub fn ask(&self, text: &str) -> Result<Response, ToorjahError> {
        self.ask_with(text, self.default_mode())
    }

    /// [`Toorjah::ask`] under an explicit [`ExecMode`].
    pub fn ask_with(&self, text: &str, mode: ExecMode) -> Result<Response, ToorjahError> {
        self.ask_capped(text, mode, None)
    }

    /// [`Toorjah::ask_with`] under a per-execution access cap (see
    /// [`crate::Prepared::execute_capped`]): at most `max_accesses` of
    /// `Some(n)` distinct source accesses, or a typed
    /// [`EngineError::AccessBudgetExceeded`] failure with no partial
    /// answer. The query service threads each tenant's remaining budget
    /// through here.
    pub fn ask_capped(
        &self,
        text: &str,
        mode: ExecMode,
        max_accesses: Option<usize>,
    ) -> Result<Response, ToorjahError> {
        let parse_started = Instant::now();
        let statement = Statement::parse(text, self.provider.schema())?;
        let parse = parse_started.elapsed();
        let plan_started = Instant::now();
        let prepared = self.prepare(&statement)?;
        let plan = plan_started.elapsed();
        let mut response = prepared.execute_capped(mode, max_accesses)?;
        response.profile.timings.parse = Some(parse);
        response.profile.timings.plan = Some(plan);
        response.profile.timings.total += parse + plan;
        Ok(response)
    }

    /// [`Toorjah::ask`] for an already parsed conjunctive query (no parse
    /// phase; the plan timing is still reported).
    pub fn ask_query(&self, query: &ConjunctiveQuery) -> Result<Response, ToorjahError> {
        let plan_started = Instant::now();
        let prepared = self.prepare(&Statement::Cq(query.clone()))?;
        let plan = plan_started.elapsed();
        let mut response = prepared.execute(self.default_mode())?;
        response.profile.timings.plan = Some(plan);
        response.profile.timings.total += plan;
        Ok(response)
    }

    /// Plans a query without executing it.
    pub fn plan(&self, query_text: &str) -> Result<Planned, ToorjahError> {
        let query = toorjah_query::parse_query(query_text, self.provider.schema())?;
        Ok(plan_query(&query, self.provider.schema())?)
    }

    /// A human-readable explanation of a statement's plan(s): the minimized
    /// quer(ies), the relevant sources with their ordering positions,
    /// ∀-minimality, and the generated Datalog program — per disjunct for
    /// unions, plus the negated atoms for negated statements.
    pub fn explain(&self, text: &str) -> Result<String, ToorjahError> {
        let statement = Statement::parse(text, self.provider.schema())?;
        let prepared = self.prepare(&statement)?;
        let mut out = String::new();
        match &statement {
            Statement::Cq(_) => {
                let planned = prepared.planned().expect("CQ statements are planned");
                out.push_str(&self.explain_planned(planned));
            }
            Statement::Union(_) => {
                for (i, planned) in prepared.disjunct_plans().iter().enumerate() {
                    out.push_str(&format!("== disjunct {i} ==\n"));
                    out.push_str(&self.explain_planned(planned));
                }
                for &i in prepared.skipped_disjuncts() {
                    out.push_str(&format!("== disjunct {i}: not answerable (skipped) ==\n"));
                }
            }
            Statement::Negated(nq) => {
                let planned = prepared.planned().expect("negated statements are planned");
                out.push_str(&self.explain_planned(planned));
                out.push_str("negation checks (decided exactly, per candidate):\n");
                for atom in nq.negated() {
                    out.push_str(&format!(
                        "  not {}/{}\n",
                        self.provider.schema().relation(atom.relation()).name(),
                        atom.arity(),
                    ));
                }
            }
        }
        let dispatch = self.config.exec.dispatch;
        out.push_str(&format!(
            "dispatch: parallelism={}, batch_size={}\n",
            dispatch.parallelism, dispatch.batch_size
        ));
        out.push_str(&format!(
            "pruning level: {}\n",
            self.config.exec.prune_level
        ));
        out.push_str(&format!(
            "runtime pruning: {}\n",
            if self.config.exec.prune_level >= PruningLevel::Runtime {
                "enabled"
            } else {
                "disabled"
            }
        ));
        if let Some(k) = self.config.exec.first_k {
            out.push_str(&format!("first-k: stop after {k} certain answer(s)\n"));
        }
        if let Some(stats) = self.cache_stats() {
            out.push_str(&format!("session cache: {stats}\n"));
        }
        let interner = self.interner().stats();
        out.push_str(&format!(
            "interner: {} symbol(s), {} payload byte(s)\n",
            interner.symbols, interner.bytes
        ));
        let obs = self.config.exec.obs;
        out.push_str(&format!(
            "observability: {}\n",
            if obs.is_tracing() {
                "metrics + tracing"
            } else if obs.is_enabled() {
                "metrics (tracing off)"
            } else {
                "disabled"
            }
        ));
        Ok(out)
    }

    fn explain_planned(&self, planned: &Planned) -> String {
        let schema = &planned.plan.schema;
        let mut out = String::new();
        out.push_str(&format!(
            "query (minimized): {}\n",
            planned.minimized.display(self.provider.schema())
        ));
        out.push_str(&format!(
            "d-graph: {} sources, {} arcs ({} strong, {} weak, {} deleted after GFP)\n",
            planned.optimized.graph().sources().len(),
            planned.optimized.graph().arcs().len(),
            planned.optimized.strong_count(),
            planned.optimized.weak_count(),
            planned.optimized.deleted_count(),
        ));
        out.push_str("relevant sources (by position, with adornment):\n");
        for cache in &planned.plan.caches {
            out.push_str(&format!(
                "  {}. {} over {} [{}]\n",
                cache.position,
                cache.label,
                schema.relation(cache.relation).name(),
                cache.adornment,
            ));
        }
        out.push_str(&format!(
            "forall-minimal: {}\n",
            if planned.minimality.forall_minimal {
                "yes"
            } else {
                "no"
            }
        ));
        let prunable = planned.plan.relevance.prunable_caches();
        if prunable.is_empty() {
            out.push_str("runtime-prunable caches: none\n");
        } else {
            let labels: Vec<&str> = prunable
                .iter()
                .map(|&i| planned.plan.caches[i].label.as_str())
                .collect();
            out.push_str(&format!("runtime-prunable caches: {}\n", labels.join(", ")));
        }
        out.push_str("datalog program:\n");
        for rule in planned.plan.program.rules() {
            out.push_str(&format!("  {}\n", planned.plan.program.render_rule(rule)));
        }
        // The static delta schedule: each round of semi-naive evaluation runs
        // one delta-join pass per (recursive rule, IDB body literal) pair,
        // joining that literal's delta against the totals of the rest.
        let program = &planned.plan.program;
        let idb = program.idb_predicates();
        let mut recursive_rules = 0usize;
        let mut delta_passes = 0usize;
        for rule in program.rules() {
            let pivots = rule.body.iter().filter(|l| idb.contains(&l.pred)).count();
            if pivots > 0 {
                recursive_rules += 1;
                delta_passes += pivots;
            }
        }
        if delta_passes == 0 {
            out.push_str("semi-naive: no recursive rules, single-round evaluation\n");
        } else {
            out.push_str(&format!(
                "semi-naive: {recursive_rules} recursive rule(s), \
                 {delta_passes} delta-join pass(es) per round\n"
            ));
        }
        out
    }
}
