//! The `Toorjah` facade: parse → plan → execute.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use toorjah_cache::{CacheStats, SharedAccessCache};
use toorjah_catalog::{Schema, Tuple};
use toorjah_core::{plan_query, CoreError, Planned, Planner};
use toorjah_engine::{
    execute_plan_cached, AccessLog, AccessStats, DispatchOptions, DispatchReport, EngineError,
    ExecOptions, ExecutionReport, SourceProvider,
};
use toorjah_query::{parse_query, ConjunctiveQuery, QueryError};

use crate::{run_distillation_cached, AnswerStream, DistillationOptions};

/// Configuration of a [`Toorjah`] instance.
#[derive(Clone, Debug, Default)]
pub struct ToorjahConfig {
    /// Planner settings (CQ minimization, ordering heuristic).
    pub planner: Planner,
    /// Sequential execution settings.
    pub exec: ExecOptions,
    /// Distillation (parallel) settings.
    pub distillation: DistillationOptions,
}

/// Errors surfaced by the facade.
#[derive(Clone, Debug)]
pub enum ToorjahError {
    /// Query parsing/validation failed.
    Query(QueryError),
    /// Planning failed (e.g. the query is not answerable).
    Planning(CoreError),
    /// Execution failed.
    Execution(EngineError),
}

impl fmt::Display for ToorjahError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToorjahError::Query(e) => write!(f, "query error: {e}"),
            ToorjahError::Planning(e) => write!(f, "planning error: {e}"),
            ToorjahError::Execution(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl Error for ToorjahError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ToorjahError::Query(e) => Some(e),
            ToorjahError::Planning(e) => Some(e),
            ToorjahError::Execution(e) => Some(e),
        }
    }
}

impl From<QueryError> for ToorjahError {
    fn from(e: QueryError) -> Self {
        ToorjahError::Query(e)
    }
}

impl From<CoreError> for ToorjahError {
    fn from(e: CoreError) -> Self {
        ToorjahError::Planning(e)
    }
}

impl From<EngineError> for ToorjahError {
    fn from(e: EngineError) -> Self {
        ToorjahError::Execution(e)
    }
}

/// The outcome of [`Toorjah::ask`].
#[derive(Clone, Debug)]
pub struct AskResult {
    /// The distinct answers.
    pub answers: Vec<Tuple>,
    /// Access counters.
    pub stats: AccessStats,
    /// Accesses this query drew from the cache (meta-cache dedup within the
    /// query, plus warm entries when a session cache is configured).
    pub cache_hits: u64,
    /// Accesses this query actually performed against the sources.
    pub cache_misses: u64,
    /// Frontier/batch accounting of the dispatcher (per-round frontier
    /// sizes, batch counts).
    pub dispatch: DispatchReport,
    /// The full execution report.
    pub report: ExecutionReport,
    /// Everything the planner produced (d-graph, ordering, program, …).
    pub planned: Planned,
}

/// The Toorjah system: a source provider plus the planner/executor pipeline.
///
/// By default each query evaluates against a private, unbounded access
/// cache (the paper's one-shot semantics). Install a session cache with
/// [`Toorjah::with_cache`] to share extractions across queries — and, since
/// [`SharedAccessCache`] handles are cheaply cloneable, across any number
/// of `Toorjah` instances and threads serving the same provider.
pub struct Toorjah {
    provider: Arc<dyn SourceProvider>,
    config: ToorjahConfig,
    session_cache: Option<SharedAccessCache>,
}

impl Toorjah {
    /// Wraps a source provider with the default configuration.
    pub fn new(provider: impl SourceProvider + 'static) -> Self {
        Toorjah {
            provider: Arc::new(provider),
            config: ToorjahConfig::default(),
            session_cache: None,
        }
    }

    /// Wraps an already-shared provider.
    pub fn from_arc(provider: Arc<dyn SourceProvider>) -> Self {
        Toorjah {
            provider,
            config: ToorjahConfig::default(),
            session_cache: None,
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: ToorjahConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a session cache: consecutive queries (and any other session
    /// holding a clone of the handle) skip accesses that are already
    /// retained. Answers are invariant under cache reuse; only the access
    /// counts drop (see DESIGN.md).
    pub fn with_cache(mut self, cache: SharedAccessCache) -> Self {
        self.session_cache = Some(cache);
        self
    }

    /// Configures how each round's access frontier is dispatched: worker
    /// threads and batched round trips. Answers, access counts and cache
    /// hit/miss totals are invariant in these settings (see DESIGN.md,
    /// "Frontier batching & the access cost model"); only wall-clock
    /// changes.
    pub fn with_dispatch(mut self, dispatch: DispatchOptions) -> Self {
        self.config.exec.dispatch = dispatch;
        self
    }

    /// The session cache, when one is installed.
    pub fn session_cache(&self) -> Option<&SharedAccessCache> {
        self.session_cache.as_ref()
    }

    /// Statistics of the session cache, when one is installed.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.session_cache.as_ref().map(SharedAccessCache::stats)
    }

    /// The cache a query execution should use: the session cache, or a
    /// fresh private one (the paper's per-query meta-cache semantics).
    fn execution_cache(&self) -> SharedAccessCache {
        self.session_cache
            .clone()
            .unwrap_or_else(SharedAccessCache::unbounded)
    }

    /// The schema of the underlying sources.
    pub fn schema(&self) -> &Schema {
        self.provider.schema()
    }

    /// Parses, plans and executes a query given in the paper's textual
    /// notation (e.g. `q(C) <- r1('a', B), r2(B, C)`), returning all
    /// obtainable answers with access statistics.
    pub fn ask(&self, query_text: &str) -> Result<AskResult, ToorjahError> {
        let query = parse_query(query_text, self.provider.schema())?;
        self.ask_query(&query)
    }

    /// [`Toorjah::ask`] for an already parsed query.
    pub fn ask_query(&self, query: &ConjunctiveQuery) -> Result<AskResult, ToorjahError> {
        let planned = self.config.planner.plan(query, self.provider.schema())?;
        let cache = self.execution_cache();
        let mut log = AccessLog::new();
        let report = execute_plan_cached(
            &planned.plan,
            self.provider.as_ref(),
            self.config.exec,
            &cache,
            &mut log,
        )?;
        // Attribution comes from this query's own log, so concurrent
        // sessions sharing the cache handle cannot contaminate each other's
        // numbers.
        Ok(AskResult {
            answers: report.answers.clone(),
            stats: report.stats.clone(),
            cache_hits: log.cache_served() as u64,
            cache_misses: log.total() as u64,
            dispatch: report.dispatch.clone(),
            report,
            planned,
        })
    }

    /// Plans a query without executing it.
    pub fn plan(&self, query_text: &str) -> Result<Planned, ToorjahError> {
        let query = parse_query(query_text, self.provider.schema())?;
        Ok(plan_query(&query, self.provider.schema())?)
    }

    /// Answers a union of conjunctive queries (§II): each disjunct gets its
    /// own ⊂-minimal plan, all disjuncts share one meta-cache (no access is
    /// repeated across them), and the answers are unioned. Non-answerable
    /// disjuncts contribute nothing and are skipped (their indexes are
    /// returned).
    pub fn ask_union(
        &self,
        query_texts: &[&str],
    ) -> Result<(toorjah_engine::UnionReport, Vec<usize>), ToorjahError> {
        let schema = self.provider.schema();
        let queries = query_texts
            .iter()
            .map(|t| parse_query(t, schema))
            .collect::<Result<Vec<_>, _>>()?;
        let union = toorjah_query::UnionQuery::new(queries)?;
        let mut planned = Vec::new();
        let mut skipped = Vec::new();
        for (i, cq) in union.cqs().iter().enumerate() {
            match self.config.planner.plan(cq, schema) {
                Ok(p) => planned.push(p),
                Err(CoreError::NotAnswerable { .. }) => skipped.push(i),
                Err(e) => return Err(e.into()),
            }
        }
        let plans: Vec<&toorjah_core::QueryPlan> = planned.iter().map(|p| &p.plan).collect();
        let mut log = AccessLog::new();
        let report = toorjah_engine::execute_union_cached(
            &plans,
            self.provider.as_ref(),
            self.config.exec,
            &self.execution_cache(),
            &mut log,
        )?;
        Ok((report, skipped))
    }

    /// Answers a conjunctive query with safe negation (§VII / reference
    /// \[18\]): the
    /// positive part runs through the optimized plan, and each negated atom
    /// is decided exactly by accessing its relation with the candidate's
    /// bound input values (meta-cached, so repeats are free).
    pub fn ask_negated(
        &self,
        query: &toorjah_query::NegatedQuery,
    ) -> Result<toorjah_engine::NegationReport, ToorjahError> {
        toorjah_engine::execute_negated_cached(
            query,
            self.provider.schema(),
            self.provider.as_ref(),
            self.config.exec,
            &self.execution_cache(),
        )
        .map_err(|e| match e {
            toorjah_engine::NegationError::Planning(e) => ToorjahError::Planning(e),
            toorjah_engine::NegationError::Execution(e) => ToorjahError::Execution(e),
            toorjah_engine::NegationError::Internal(msg) => {
                ToorjahError::Planning(CoreError::Internal(msg))
            }
        })
    }

    /// Parses, plans and executes a query with the §V distillation strategy:
    /// wrapper threads access the sources in parallel and answers stream out
    /// as soon as they are computed.
    pub fn ask_streaming(&self, query_text: &str) -> Result<AnswerStream, ToorjahError> {
        let query = parse_query(query_text, self.provider.schema())?;
        let planned = self.config.planner.plan(&query, self.provider.schema())?;
        Ok(run_distillation_cached(
            planned.plan.clone(),
            Arc::clone(&self.provider),
            self.config.distillation,
            self.execution_cache(),
        ))
    }

    /// A human-readable explanation of the plan: the minimized query, the
    /// relevant sources with their ordering positions, ∀-minimality, and the
    /// generated Datalog program.
    pub fn explain(&self, query_text: &str) -> Result<String, ToorjahError> {
        let planned = self.plan(query_text)?;
        let schema = &planned.plan.schema;
        let mut out = String::new();
        out.push_str(&format!(
            "query (minimized): {}\n",
            planned.minimized.display(self.provider.schema())
        ));
        out.push_str(&format!(
            "d-graph: {} sources, {} arcs ({} strong, {} weak, {} deleted after GFP)\n",
            planned.optimized.graph().sources().len(),
            planned.optimized.graph().arcs().len(),
            planned.optimized.strong_count(),
            planned.optimized.weak_count(),
            planned.optimized.deleted_count(),
        ));
        out.push_str("relevant sources (by position):\n");
        for cache in &planned.plan.caches {
            out.push_str(&format!(
                "  {}. {} over {}\n",
                cache.position,
                cache.label,
                schema.relation(cache.relation).name(),
            ));
        }
        out.push_str(&format!(
            "forall-minimal: {}\n",
            if planned.minimality.forall_minimal {
                "yes"
            } else {
                "no"
            }
        ));
        out.push_str("datalog program:\n");
        for rule in planned.plan.program.rules() {
            out.push_str(&format!("  {}\n", planned.plan.program.render_rule(rule)));
        }
        let dispatch = self.config.exec.dispatch;
        out.push_str(&format!(
            "dispatch: parallelism={}, batch_size={}\n",
            dispatch.parallelism, dispatch.batch_size
        ));
        if let Some(stats) = self.cache_stats() {
            out.push_str(&format!("session cache: {stats}\n"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_catalog::{tuple, Instance};
    use toorjah_engine::InstanceSource;

    fn example_system() -> Toorjah {
        let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
        let db = Instance::with_data(
            &schema,
            [
                ("r1", vec![tuple!["a", "b1"]]),
                ("r2", vec![tuple!["b1", "c1"]]),
                ("r3", vec![tuple!["c1", "a"]]),
            ],
        )
        .unwrap();
        Toorjah::new(InstanceSource::new(schema, db))
    }

    #[test]
    fn ask_end_to_end() {
        let system = example_system();
        let result = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
        assert_eq!(result.answers, vec![tuple!["c1"]]);
        assert_eq!(result.stats.total_accesses, 2);
        assert!(result.planned.minimality.forall_minimal);
    }

    #[test]
    fn parse_errors_are_surfaced() {
        let system = example_system();
        assert!(matches!(
            system.ask("q(C) <- nope(C)"),
            Err(ToorjahError::Query(_))
        ));
    }

    #[test]
    fn non_answerable_queries_fail_at_planning() {
        let schema = Schema::parse("r1^io(A, C) r2^io(B, C)").unwrap();
        let system = Toorjah::new(InstanceSource::new(schema.clone(), Instance::new(&schema)));
        assert!(matches!(
            system.ask("q(C) <- r1(X, C)"),
            Err(ToorjahError::Planning(CoreError::NotAnswerable { .. }))
        ));
    }

    #[test]
    fn explain_mentions_program_and_relevance() {
        let system = example_system();
        let text = system.explain("q(C) <- r1('a', B), r2(B, C)").unwrap();
        assert!(text.contains("datalog program"));
        assert!(text.contains("r1_hat1"));
        assert!(
            !text.contains("r3_hat"),
            "irrelevant r3 must not be cached:\n{text}"
        );
        assert!(text.contains("forall-minimal: yes"));
    }

    #[test]
    fn schema_accessor() {
        let system = example_system();
        assert_eq!(system.schema().relation_count(), 3);
    }

    #[test]
    fn parallel_dispatch_is_answer_invariant_and_reported() {
        let sequential = example_system()
            .ask("q(C) <- r1('a', B), r2(B, C)")
            .unwrap();
        let parallel = example_system()
            .with_dispatch(DispatchOptions::parallel(4).with_batch_size(2))
            .ask("q(C) <- r1('a', B), r2(B, C)")
            .unwrap();
        assert_eq!(parallel.answers, sequential.answers);
        assert_eq!(parallel.stats, sequential.stats);
        assert_eq!(
            parallel.dispatch.frontier_sizes, sequential.dispatch.frontier_sizes,
            "the frontiers themselves are dispatch-invariant"
        );
        assert!(parallel.dispatch.frontiers() > 0);
        assert!(
            parallel.dispatch.batches <= sequential.dispatch.batches,
            "batching can only reduce round trips"
        );
    }

    #[test]
    fn explain_mentions_dispatch_configuration() {
        let system = example_system().with_dispatch(DispatchOptions::parallel(8));
        let text = system.explain("q(C) <- r1('a', B), r2(B, C)").unwrap();
        assert!(text.contains("parallelism=8"), "{text}");
        assert!(text.contains("batch_size=1"), "{text}");
    }

    #[test]
    fn session_cache_makes_repeat_queries_free() {
        let system = example_system().with_cache(SharedAccessCache::unbounded());
        let cold = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
        assert_eq!(cold.stats.total_accesses, 2);
        assert_eq!(cold.cache_misses, 2);
        let warm = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
        assert_eq!(warm.answers, cold.answers);
        assert_eq!(warm.stats.total_accesses, 0, "warm query pays nothing");
        assert_eq!(warm.cache_hits, 2);
        assert_eq!(warm.cache_misses, 0);
        let stats = system.cache_stats().unwrap();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn without_session_cache_queries_stay_independent() {
        let system = example_system();
        assert!(system.cache_stats().is_none());
        assert!(system.session_cache().is_none());
        let first = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
        let second = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
        // No sharing: both runs pay the full access count.
        assert_eq!(first.stats.total_accesses, 2);
        assert_eq!(second.stats.total_accesses, 2);
        assert_eq!(second.cache_misses, 2);
    }

    #[test]
    fn two_sessions_share_one_cache_handle() {
        let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
        let db = Instance::with_data(
            &schema,
            [
                ("r1", vec![tuple!["a", "b1"]]),
                ("r2", vec![tuple!["b1", "c1"]]),
                ("r3", vec![tuple!["c1", "a"]]),
            ],
        )
        .unwrap();
        let provider: Arc<dyn SourceProvider> = Arc::new(InstanceSource::new(schema, db));
        let cache = SharedAccessCache::unbounded();
        let one = Toorjah::from_arc(Arc::clone(&provider)).with_cache(cache.clone());
        let two = Toorjah::from_arc(provider).with_cache(cache);
        one.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
        let warm = two.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
        assert_eq!(warm.stats.total_accesses, 0, "cross-session sharing");
    }

    #[test]
    fn explain_surfaces_session_cache_stats() {
        let system = example_system().with_cache(SharedAccessCache::unbounded());
        system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
        let text = system.explain("q(C) <- r1('a', B), r2(B, C)").unwrap();
        assert!(text.contains("session cache: 2 entries"), "{text}");
        // Without a session cache the line is absent.
        let text = example_system()
            .explain("q(C) <- r1('a', B), r2(B, C)")
            .unwrap();
        assert!(!text.contains("session cache"), "{text}");
    }
}

#[cfg(test)]
mod union_tests {
    use super::*;
    use toorjah_catalog::{tuple, Instance};
    use toorjah_engine::InstanceSource;

    #[test]
    fn ask_union_merges_and_skips() {
        let schema = Schema::parse("r^io(A, B) s^io(A, B) f^o(A) dead^io(Z, B)").unwrap();
        let db = Instance::with_data(
            &schema,
            [
                ("r", vec![tuple!["a", "rb"]]),
                ("s", vec![tuple!["a", "sb"]]),
                ("f", vec![tuple!["a"]]),
            ],
        )
        .unwrap();
        let system = Toorjah::new(InstanceSource::new(schema, db));
        let (report, skipped) = system
            .ask_union(&[
                "q(B) <- f(X), r(X, B)",
                "q(B) <- f(X), s(X, B)",
                // Not answerable: `dead` needs domain Z that nothing yields.
                "q(B) <- dead(Z, B)",
            ])
            .unwrap();
        let mut answers = report.answers.clone();
        answers.sort();
        assert_eq!(answers, vec![tuple!["rb"], tuple!["sb"]]);
        assert_eq!(skipped, vec![2]);
        // f accessed once for both disjuncts.
        let f = system.schema().relation_id("f").unwrap();
        assert_eq!(report.stats.accesses_to(f), 1);
    }

    #[test]
    fn ask_union_rejects_mixed_arity() {
        let schema = Schema::parse("r^oo(A, B)").unwrap();
        let db = Instance::new(&schema);
        let system = Toorjah::new(InstanceSource::new(schema, db));
        assert!(system
            .ask_union(&["q(X) <- r(X, Y)", "q(X, Y) <- r(X, Y)"])
            .is_err());
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use crate::StreamEvent;
    use toorjah_catalog::{tuple, Instance};
    use toorjah_engine::InstanceSource;

    fn system() -> Toorjah {
        let schema = Schema::parse("f^oo(A, B) g^io(B, C)").unwrap();
        let db = Instance::with_data(
            &schema,
            [
                ("f", vec![tuple!["a1", "b1"], tuple!["a2", "b2"]]),
                ("g", vec![tuple!["b1", "c1"], tuple!["b2", "c2"]]),
            ],
        )
        .unwrap();
        Toorjah::new(InstanceSource::new(schema, db))
    }

    #[test]
    fn streaming_answers_iterator() {
        let stream = system().ask_streaming("q(C) <- f(A, B), g(B, C)").unwrap();
        let mut answers: Vec<_> = stream.answers().collect();
        answers.sort();
        assert_eq!(answers, vec![tuple!["c1"], tuple!["c2"]]);
    }

    #[test]
    fn streaming_events_are_timestamped_and_terminated() {
        let stream = system().ask_streaming("q(C) <- f(A, B), g(B, C)").unwrap();
        let mut saw_done = false;
        while let Some(event) = stream.next_event() {
            match event {
                StreamEvent::Answer { at, .. } => assert!(at.as_nanos() > 0),
                StreamEvent::Done(report) => {
                    saw_done = true;
                    assert_eq!(report.answers.len(), 2);
                }
                StreamEvent::Failed(e) => panic!("unexpected failure: {e}"),
            }
        }
        assert!(saw_done);
    }
}
