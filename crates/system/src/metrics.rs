//! The system-level metrics surface: one [`MetricsReport`] combining the
//! observability registry's instruments with the interner and cache
//! accounting the engine keeps anyway.
//!
//! The report is a point-in-time snapshot, available from two places:
//!
//! * [`crate::Toorjah::metrics`] — the instance-level view (session cache,
//!   when installed);
//! * [`crate::Response::metrics`] — captured at the end of every execution
//!   against the cache that execution actually used, so per-query metrics
//!   work even without a session cache.
//!
//! Serialization is hand-rolled JSON with a stable key order
//! (`interner`, `counters`, `gauges`, `histograms`, `cache`), pinned by
//! `tests/cli.rs`. The shard-wise cache counters sum exactly to the
//! `cache` totals — the cache keeps its counters per shard by
//! construction (see `toorjah-cache`).

use std::fmt::Write as _;

use toorjah_cache::{CacheStats, ShardCounters};
use toorjah_catalog::InternerStats;
use toorjah_obs::MetricsSnapshot;

/// A point-in-time snapshot of everything the system measures: registry
/// instruments (kernel, dispatcher, relevance pruner), interner occupancy,
/// and the totals + per-shard breakdown of one access cache.
#[derive(Clone, Debug, Default)]
pub struct MetricsReport {
    /// The observability registry's counters, gauges and histograms —
    /// including the per-source `dispatch.latency_us.<relation>`
    /// histograms.
    pub snapshot: MetricsSnapshot,
    /// Process-wide interner occupancy (distinct symbols, payload bytes).
    pub interner: InternerStats,
    /// Cache totals (counters summed across shards, plus occupancy).
    pub cache: CacheStats,
    /// Per-shard cache counters; sums to the `cache` totals field-wise.
    pub shards: Vec<ShardCounters>,
}

impl MetricsReport {
    /// Renders the report as one JSON object with the stable key order
    /// `interner`, `counters`, `gauges`, `histograms`, `cache` (shards
    /// nested last inside `cache`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        self.write_json(&mut out);
        out
    }

    /// [`MetricsReport::to_json`], appending to an existing buffer.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"interner\":{{\"symbols\":{},\"bytes\":{}}}",
            self.interner.symbols, self.interner.bytes
        );
        // Splice the snapshot's `"counters":…,"gauges":…,"histograms":…`
        // body in between the interner and cache sections.
        let mut snapshot = String::new();
        self.snapshot.write_json(&mut snapshot);
        out.push(',');
        out.push_str(&snapshot[1..snapshot.len() - 1]);
        let c = &self.cache;
        let _ = write!(
            out,
            ",\"cache\":{{\"hits\":{},\"coalesced_hits\":{},\"misses\":{},\
             \"load_failures\":{},\"insertions\":{},\"evictions\":{},\
             \"oversized\":{},\"entries\":{},\"bytes\":{},\"shards\":[",
            c.hits,
            c.coalesced_hits,
            c.misses,
            c.load_failures,
            c.insertions,
            c.evictions,
            c.oversized,
            c.entries,
            c.bytes,
        );
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"hits\":{},\"coalesced_hits\":{},\"misses\":{},\
                 \"load_failures\":{},\"insertions\":{},\"evictions\":{},\
                 \"oversized\":{}}}",
                s.hits,
                s.coalesced_hits,
                s.misses,
                s.load_failures,
                s.insertions,
                s.evictions,
                s.oversized,
            );
        }
        out.push_str("]}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_key_order_is_stable() {
        let report = MetricsReport {
            shards: vec![ShardCounters::default(), ShardCounters::default()],
            ..MetricsReport::default()
        };
        let json = report.to_json();
        let order = [
            "\"interner\"",
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"cache\"",
            "\"shards\"",
        ];
        let positions: Vec<usize> = order
            .iter()
            .map(|k| {
                json.find(k)
                    .unwrap_or_else(|| panic!("{k} missing in {json}"))
            })
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The cache totals object plus one object per shard.
        assert_eq!(json.matches("{\"hits\"").count(), 3);
    }
}
