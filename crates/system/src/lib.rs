//! # toorjah-system
//!
//! The **Toorjah** system facade (§V of *"Querying Data under Access
//! Limitations"*, Calì & Martinenghi, ICDE 2008): a prototype that answers
//! conjunctive queries over sources with access limitations by means of
//! access-minimal query plans.
//!
//! ```
//! use toorjah_catalog::{Instance, Schema, tuple};
//! use toorjah_engine::InstanceSource;
//! use toorjah_system::Toorjah;
//!
//! let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
//! let db = Instance::with_data(&schema, [
//!     ("r1", vec![tuple!["a", "b1"]]),
//!     ("r2", vec![tuple!["b1", "c1"]]),
//!     ("r3", vec![tuple!["c1", "a"]]),
//! ]).unwrap();
//! let system = Toorjah::new(InstanceSource::new(schema, db));
//!
//! let result = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
//! assert_eq!(result.answers, vec![tuple!["c1"]]);
//! // r3 is irrelevant: the optimized plan never touches it.
//! assert_eq!(result.stats.total_accesses, 2);
//! ```
//!
//! Besides the sequential fast-failing execution ([`Toorjah::ask`]), the
//! facade offers the paper's **distillation** strategy
//! ([`Toorjah::ask_streaming`]): per-relation wrapper threads with bounded
//! queues receive access tuples as soon as they can be generated from the
//! cache database, and answers are delivered incrementally as they are
//! computed — "the system retrieves tuples that are significant for the
//! answer in a time that is usually very short, compared to the total
//! execution time".
//!
//! For serving workloads, [`Toorjah::with_cache`] installs a session-level
//! [`toorjah_cache::SharedAccessCache`]: consecutive (and concurrent)
//! queries over the same provider skip accesses that are already retained,
//! with per-query effectiveness surfaced through [`AskResult`]'s
//! `cache_hits`/`cache_misses` and [`Toorjah::cache_stats`].

#![warn(missing_docs)]

mod answers;
mod facade;
mod parallel;

pub use answers::{AnswerStream, StreamEvent, StreamReport};
pub use facade::{AskResult, Toorjah, ToorjahConfig, ToorjahError};
pub use parallel::{run_distillation, run_distillation_cached, DistillationOptions};
