//! # toorjah-system
//!
//! The **Toorjah** system facade (§V of *"Querying Data under Access
//! Limitations"*, Calì & Martinenghi, ICDE 2008): a prototype that answers
//! conjunctive queries over sources with access limitations by means of
//! access-minimal query plans.
//!
//! The API is a **statement lifecycle** — parse → prepare → execute — with
//! one request type ([`Statement`]) and one response type ([`Response`]):
//!
//! ```
//! use toorjah_catalog::{Instance, Schema, tuple};
//! use toorjah_engine::InstanceSource;
//! use toorjah_system::{ExecMode, Statement, Toorjah};
//!
//! let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
//! let db = Instance::with_data(&schema, [
//!     ("r1", vec![tuple!["a", "b1"]]),
//!     ("r2", vec![tuple!["b1", "c1"]]),
//!     ("r3", vec![tuple!["c1", "a"]]),
//! ]).unwrap();
//! let system = Toorjah::new(InstanceSource::new(schema, db));
//!
//! // Parse once, plan once, execute as often as you like:
//! let statement = Statement::parse("q(C) <- r1('a', B), r2(B, C)", system.schema()).unwrap();
//! let prepared = system.prepare(&statement).unwrap();
//! let response = prepared.execute(ExecMode::Sequential).unwrap();
//! assert_eq!(response.answers, vec![tuple!["c1"]]);
//! // r3 is irrelevant: the optimized plan never touches it.
//! assert_eq!(response.profile.stats.total_accesses, 2);
//!
//! // Or one-shot, any statement kind (CQ, `;`-union, `!`-negation):
//! let response = system.ask("q(C) <- r1('a', B), r2(B, C)").unwrap();
//! assert_eq!(response.answers, vec![tuple!["c1"]]);
//! ```
//!
//! Execution modes ([`ExecMode`]) cover the paper's strategies without
//! separate entry points: `Sequential` (the §IV fast-failing executor),
//! `Parallel` (frontier-batched dispatch over worker threads), and
//! `Streaming` (the §V distillation executor; use [`Prepared::stream`] for
//! incremental answers). Answers and access counts are mode-invariant.
//!
//! For serving workloads, [`Toorjah::builder`] installs a session-level
//! [`toorjah_cache::SharedAccessCache`]: consecutive (and concurrent)
//! statements over the same provider skip accesses that are already
//! retained, with per-execution effectiveness surfaced through the
//! [`ExecutionProfile`]'s `accesses_served_by_cache` /
//! `accesses_performed` counters.

#![warn(missing_docs)]

mod answers;
mod facade;
mod json;
mod metrics;
mod parallel;
mod prepared;
mod response;

pub use answers::{AnswerStream, StreamEvent, StreamReport};
pub use facade::{Toorjah, ToorjahBuilder, ToorjahConfig, ToorjahError};
pub use metrics::MetricsReport;
pub use parallel::{run_distillation, run_distillation_cached, DistillationOptions};
pub use prepared::Prepared;
pub use response::{ExecMode, ExecutionProfile, PhaseTimings, Response};
// The statement types, re-exported so facade users need no direct
// `toorjah-query` dependency.
pub use toorjah_query::{Statement, StatementKind};

#[cfg(test)]
mod facade_tests;
