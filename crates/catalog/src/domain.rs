//! Abstract domains (§II of the paper).
//!
//! An abstract domain has an underlying concrete domain but represents
//! information at a higher level of abstraction: it distinguishes, e.g.,
//! strings representing person names from strings representing song titles.
//! Dependency arcs in the d-graph (and value flow in the naive algorithm)
//! connect only positions with the *same* abstract domain.

use std::collections::HashMap;
use std::fmt;

use crate::CatalogError;

/// Identifier of an abstract domain inside a [`DomainRegistry`].
///
/// Ids are dense indexes assigned in registration order, which lets graph
/// algorithms use them directly as vector indexes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "δ{}", self.0)
    }
}

/// A named abstract domain, e.g. `Artist`, `Year`, `Paper`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Domain {
    name: String,
}

impl Domain {
    /// The name of the domain.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// An interning registry of abstract domains.
///
/// Domain names are case-sensitive and must be non-empty. Registration is
/// idempotent: registering an existing name returns its existing id.
///
/// ```
/// use toorjah_catalog::DomainRegistry;
///
/// let mut reg = DomainRegistry::new();
/// let artist = reg.intern("Artist");
/// assert_eq!(reg.intern("Artist"), artist);
/// assert_eq!(reg.name(artist), "Artist");
/// assert_eq!(reg.len(), 1);
/// ```
#[derive(Clone, Default, Debug)]
pub struct DomainRegistry {
    domains: Vec<Domain>,
    by_name: HashMap<String, DomainId>,
}

impl DomainRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, registering the domain if new.
    pub fn intern(&mut self, name: impl AsRef<str>) -> DomainId {
        let name = name.as_ref();
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(Domain {
            name: name.to_string(),
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up a domain id by name without registering.
    pub fn lookup(&self, name: &str) -> Option<DomainId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a domain id by name, reporting an error when unknown.
    pub fn require(&self, name: &str) -> Result<DomainId, CatalogError> {
        self.lookup(name)
            .ok_or_else(|| CatalogError::UnknownDomain(name.to_string()))
    }

    /// The name of a registered domain.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this registry.
    pub fn name(&self, id: DomainId) -> &str {
        self.domains[id.index()].name()
    }

    /// The domain for an id, if valid.
    pub fn get(&self, id: DomainId) -> Option<&Domain> {
        self.domains.get(id.index())
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether no domain has been registered.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Iterates over `(id, domain)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &Domain)> {
        self.domains
            .iter()
            .enumerate()
            .map(|(i, d)| (DomainId(i as u32), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut reg = DomainRegistry::new();
        let a = reg.intern("A");
        let b = reg.intern("B");
        assert_ne!(a, b);
        assert_eq!(reg.intern("A"), a);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn lookup_miss_and_require_error() {
        let reg = DomainRegistry::new();
        assert!(reg.lookup("nope").is_none());
        let err = reg.require("nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn names_round_trip() {
        let mut reg = DomainRegistry::new();
        let id = reg.intern("Artist");
        assert_eq!(reg.name(id), "Artist");
        assert_eq!(reg.get(id).unwrap().to_string(), "Artist");
        assert!(reg.get(DomainId(99)).is_none());
    }

    #[test]
    fn iter_in_registration_order() {
        let mut reg = DomainRegistry::new();
        reg.intern("X");
        reg.intern("Y");
        let names: Vec<_> = reg.iter().map(|(_, d)| d.name().to_string()).collect();
        assert_eq!(names, ["X", "Y"]);
    }

    #[test]
    fn case_sensitive() {
        let mut reg = DomainRegistry::new();
        let a = reg.intern("artist");
        let b = reg.intern("Artist");
        assert_ne!(a, b);
    }
}
