//! String interning: the compact symbol data plane.
//!
//! Every string constant that enters the system — from the parser, a source
//! extraction, a workload generator or a snapshot — is *interned*: stored
//! once in the process-wide [`Interner`] and represented everywhere else by
//! a [`Symbol`], a `Copy`-able `u32` id. Tuples, binding pools, fact-store
//! indexes and cache keys all carry symbols, so the hot loops of the
//! evaluation kernel hash and compare fixed-size integers instead of
//! heap-backed strings, and cloning a value is a register copy.
//!
//! The interner is deliberately **process-wide** rather than per-session:
//! the [`SharedAccessCache`] shares extractions across sessions and threads,
//! so two sessions must agree on the id of `"volare"` for a cache key built
//! by one to hit for the other. Sessions hold a handle to the interner (see
//! `Toorjah::interner` in the facade) for observability — symbol counts and
//! the payload bytes accounted here instead of per-holder.
//!
//! Interned strings are retained for the lifetime of the process (the set
//! of distinct constants a deployment sees is bounded, and retention is
//! what makes [`Symbol::as_str`] a borrow instead of a lock-and-clone).
//!
//! [`SharedAccessCache`]: https://docs.rs/toorjah-cache

use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::OnceLock;

use parking_lot::RwLock;

/// An interned string: a `u32` id into the process-wide [`Interner`].
///
/// Symbols are `Copy`, hash as their id, and compare equal exactly when the
/// strings they denote are equal (the interner guarantees one id per
/// distinct string). [`Symbol::as_str`] resolves back to the string; the
/// symbol also derefs to `str`, so string methods work directly:
///
/// ```
/// use toorjah_catalog::Symbol;
///
/// let s = Symbol::intern("volare");
/// assert_eq!(s.as_str(), "volare");
/// assert!(s.starts_with("vol"));
/// assert_eq!(s, Symbol::intern("volare"), "same string, same symbol");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns `s` in the process-wide interner and returns its symbol.
    pub fn intern(s: impl AsRef<str>) -> Symbol {
        Interner::global().intern(s.as_ref())
    }

    /// The interned string. A borrow, not a clone: interned payloads live
    /// for the process lifetime.
    pub fn as_str(self) -> &'static str {
        Interner::global().resolve(self)
    }

    /// The raw `u32` id (stable within one process only — ids are assigned
    /// in interning order and must never be persisted).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl Deref for Symbol {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    /// Symbols order by their *string* content, not their id, so sorted
    /// answers are byte-identical to the pre-interning data plane.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// The compact internal value representation: what every store, index and
/// cache key of the data plane actually carries.
///
/// `IVal` is the `Copy` mirror of [`Value`](crate::Value) — an integer or an
/// interned symbol id — with lossless conversion in both directions. The
/// public `Value` is itself backed by this representation, so the
/// conversions are free; `IVal` exists as the explicit type for layers that
/// want to state "I hash u32s, not strings" in their signatures (the
/// fact-store indexes) and for size assertions.
///
/// ```
/// use toorjah_catalog::{IVal, Value};
///
/// let v = Value::from("volare");
/// let c = IVal::from(v);
/// assert_eq!(Value::from(c), v, "round-trip is lossless");
/// assert!(matches!(c, IVal::Sym(_)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum IVal {
    /// An integer constant.
    Int(i64),
    /// An interned string constant, by symbol id.
    Sym(u32),
}

impl From<crate::Value> for IVal {
    fn from(v: crate::Value) -> IVal {
        match v {
            crate::Value::Int(i) => IVal::Int(i),
            crate::Value::Str(s) => IVal::Sym(s.id()),
        }
    }
}

impl From<IVal> for crate::Value {
    fn from(c: IVal) -> crate::Value {
        match c {
            IVal::Int(i) => crate::Value::Int(i),
            IVal::Sym(id) => crate::Value::Str(Symbol(id)),
        }
    }
}

/// Point-in-time interner statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct InternerStats {
    /// Number of distinct interned strings.
    pub symbols: usize,
    /// Total payload bytes retained by the interner. This is where string
    /// payloads are accounted — byte-budgeted caches charge fixed-size
    /// entries and never count a shared payload once per holder.
    pub bytes: usize,
}

#[derive(Default)]
struct InternerState {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
    bytes: usize,
}

/// The concurrent string ↔ `u32` table behind [`Symbol`].
///
/// Reads (resolution, already-interned lookups) take a shared lock; only the
/// first interning of a new string takes the exclusive lock. The table is
/// append-only — symbols are never invalidated.
pub struct Interner {
    state: RwLock<InternerState>,
}

impl Interner {
    /// The process-wide interner every [`Symbol`] resolves against.
    pub fn global() -> &'static Interner {
        static GLOBAL: OnceLock<Interner> = OnceLock::new();
        GLOBAL.get_or_init(|| Interner {
            state: RwLock::new(InternerState::default()),
        })
    }

    /// Interns `s`, returning the existing symbol if the string was seen
    /// before and a fresh one otherwise.
    pub fn intern(&self, s: &str) -> Symbol {
        if let Some(&id) = self.state.read().by_name.get(s) {
            return Symbol(id);
        }
        let mut state = self.state.write();
        // Double-check: another thread may have interned `s` between the
        // read unlock and the write lock.
        if let Some(&id) = state.by_name.get(s) {
            return Symbol(id);
        }
        let payload: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(state.names.len()).expect("fewer than 2^32 distinct strings");
        state.names.push(payload);
        state.by_name.insert(payload, id);
        state.bytes += payload.len();
        Symbol(id)
    }

    /// The string a symbol denotes.
    ///
    /// # Panics
    /// Panics if the symbol did not come from this interner (impossible via
    /// the public API — symbols are only minted by [`Interner::intern`]).
    pub fn resolve(&self, sym: Symbol) -> &'static str {
        self.state.read().names[sym.0 as usize]
    }

    /// The symbol for `s`, if it was interned before.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.state.read().by_name.get(s).copied().map(Symbol)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.state.read().names.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current statistics: symbol count and retained payload bytes.
    pub fn stats(&self) -> InternerStats {
        let state = self.state.read();
        InternerStats {
            symbols: state.names.len(),
            bytes: state.bytes,
        }
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Interner")
            .field("symbols", &stats.symbols)
            .field("bytes", &stats.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_distinct() {
        let a = Symbol::intern("intern-test-a");
        let b = Symbol::intern("intern-test-b");
        assert_ne!(a, b);
        assert_eq!(a, Symbol::intern("intern-test-a"));
        assert_eq!(a.as_str(), "intern-test-a");
        assert_eq!(b.as_str(), "intern-test-b");
    }

    #[test]
    fn symbols_order_by_string_content() {
        // Intern in reverse lexicographic order so id order disagrees with
        // string order; the Ord impl must follow the strings.
        let z = Symbol::intern("zz-ordering-test");
        let a = Symbol::intern("aa-ordering-test");
        assert!(a < z);
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn deref_exposes_str_methods() {
        let s = Symbol::intern("deref-test");
        assert!(s.starts_with("deref"));
        assert_eq!(s.len(), "deref-test".len());
        assert_eq!(format!("{s}"), "deref-test");
        assert_eq!(format!("{s:?}"), "\"deref-test\"");
    }

    #[test]
    fn ival_round_trips() {
        let v = crate::Value::from("ival-round-trip");
        assert_eq!(crate::Value::from(IVal::from(v)), v);
        let i = crate::Value::from(42);
        assert_eq!(crate::Value::from(IVal::from(i)), i);
        assert_eq!(IVal::from(i), IVal::Int(42));
    }

    #[test]
    fn ival_is_compact_and_copy() {
        // The whole point: a value is two words, not a heap handle.
        assert!(std::mem::size_of::<IVal>() <= 16);
        assert!(std::mem::size_of::<Symbol>() == 4);
        fn assert_copy<T: Copy>() {}
        assert_copy::<IVal>();
        assert_copy::<Symbol>();
    }

    #[test]
    fn stats_account_payload_bytes() {
        let interner = Interner::global();
        let before = interner.stats();
        let marker = "stats-account-payload-bytes-unique-marker";
        Symbol::intern(marker);
        let after = interner.stats();
        assert_eq!(after.symbols, before.symbols + 1);
        assert_eq!(after.bytes, before.bytes + marker.len());
        // Re-interning accounts nothing new.
        Symbol::intern(marker);
        assert_eq!(interner.stats(), after);
    }

    #[test]
    fn lookup_finds_only_interned_strings() {
        let interner = Interner::global();
        assert!(interner.lookup("never-interned-lookup-test").is_none());
        let s = Symbol::intern("interned-lookup-test");
        assert_eq!(interner.lookup("interned-lookup-test"), Some(s));
    }
}
