//! Error type for catalog operations.

use std::error::Error;
use std::fmt;

/// Errors raised while building or using schemas and instances.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CatalogError {
    /// An access pattern string contained a character other than `i`/`o`.
    BadAccessPattern {
        /// The offending pattern string.
        pattern: String,
        /// The first invalid character.
        offending: char,
    },
    /// A relation declaration's domain list and pattern have different lengths.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Number of declared domains.
        domains: usize,
        /// Length of the access pattern.
        pattern: usize,
    },
    /// Two relations with the same name were declared.
    DuplicateRelation(String),
    /// A relation name was not found in the schema.
    UnknownRelation(String),
    /// A domain name was not found in the registry.
    UnknownDomain(String),
    /// A tuple's arity does not match its relation's arity.
    TupleArity {
        /// Relation name.
        relation: String,
        /// Expected arity.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// An access binding's arity does not match the relation's input count.
    BindingArity {
        /// Relation name.
        relation: String,
        /// Number of input positions.
        expected: usize,
        /// Arity of the offending binding.
        got: usize,
    },
    /// A schema text declaration could not be parsed.
    Parse {
        /// The offending fragment.
        fragment: String,
        /// Why it failed.
        reason: String,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::BadAccessPattern { pattern, offending } => write!(
                f,
                "invalid access pattern {pattern:?}: unexpected character {offending:?} (only 'i' and 'o' are allowed)"
            ),
            CatalogError::ArityMismatch { relation, domains, pattern } => write!(
                f,
                "relation {relation}: {domains} domain(s) declared but access pattern has length {pattern}"
            ),
            CatalogError::DuplicateRelation(name) => {
                write!(f, "relation {name} declared more than once")
            }
            CatalogError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            CatalogError::UnknownDomain(name) => write!(f, "unknown abstract domain {name}"),
            CatalogError::TupleArity { relation, expected, got } => write!(
                f,
                "tuple of arity {got} inserted into relation {relation} of arity {expected}"
            ),
            CatalogError::BindingArity { relation, expected, got } => write!(
                f,
                "access binding of arity {got} for relation {relation} with {expected} input position(s)"
            ),
            CatalogError::Parse { fragment, reason } => {
                write!(f, "cannot parse schema fragment {fragment:?}: {reason}")
            }
        }
    }
}

impl Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CatalogError::ArityMismatch {
            relation: "r".into(),
            domains: 2,
            pattern: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('r') && msg.contains('2') && msg.contains('3'));

        let e = CatalogError::TupleArity {
            relation: "s".into(),
            expected: 1,
            got: 4,
        };
        assert!(e.to_string().contains("arity 4"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error>(_: &E) {}
        assert_err(&CatalogError::UnknownRelation("x".into()));
    }
}
