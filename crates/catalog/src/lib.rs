//! # toorjah-catalog
//!
//! Schema substrate for the Toorjah reproduction of *"Querying Data under
//! Access Limitations"* (Calì & Martinenghi, ICDE 2008).
//!
//! This crate models the paper's preliminaries (§II):
//!
//! * **Abstract domains** ([`Domain`], [`DomainId`]): named domains such as
//!   `Artist` or `Year` that sit above concrete domains and distinguish, e.g.,
//!   strings denoting person names from strings denoting song titles.
//! * **Access patterns** ([`AccessPattern`], [`Mode`]): per-position `i`/`o`
//!   annotations stating which arguments must be bound to query a relation.
//! * **Relation schemas** ([`RelationSchema`]) and **database schemas**
//!   ([`Schema`]): signatures `r^α(A1,…,An)` in the paper's positional
//!   notation.
//! * **Values, tuples and instances** ([`Value`], [`Tuple`], [`Instance`]):
//!   in-memory extensions with hash indexes on the input positions, so that an
//!   *access* (a single-atom CQ with all input attributes selected) is a
//!   constant-time lookup.
//!
//! The textual format used throughout the workspace mirrors the paper:
//! `pub1^io(Paper, Person)` declares relation `pub1` with access pattern `io`
//! over abstract domains `Paper` and `Person`. [`Schema::parse`] accepts a
//! whitespace/semicolon-separated list of such declarations.

#![warn(missing_docs)]

mod domain;
mod error;
mod hash;
mod instance;
mod intern;
mod pattern;
mod relation;
mod schema;
mod tuple;
mod value;

pub use domain::{Domain, DomainId, DomainRegistry};
pub use error::CatalogError;
pub use hash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use instance::{Instance, RelationData};
pub use intern::{IVal, Interner, InternerStats, Symbol};
pub use pattern::{AccessPattern, Mode};
pub use relation::{AccessKey, RelationId, RelationSchema};
pub use schema::{Schema, SchemaBuilder};
pub use tuple::Tuple;
pub use value::Value;
