//! Constants that populate relations.
//!
//! The paper treats values as members of abstract domains with an underlying
//! concrete domain. We support the two concrete domains that cover the
//! paper's examples and experiments: integers (years, synthetic ids) and
//! strings (names, titles). A value does not carry its abstract domain; the
//! domain is always implied by the schema position a value was read from or
//! bound to, exactly as in the paper's positional notation.

use std::fmt;
use std::sync::Arc;

/// A constant of one of the supported concrete domains.
///
/// `Value` is cheap to clone: string payloads are reference counted, so
/// values can be freely shared between the binding set, caches and answers.
///
/// ```
/// use toorjah_catalog::Value;
///
/// let v = Value::from("volare");
/// assert_eq!(v.to_string(), "'volare'");
/// assert_eq!(Value::from(2008).to_string(), "2008");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer constant, e.g. a year such as `2008`.
    Int(i64),
    /// A string constant, e.g. `'volare'`.
    Str(Arc<str>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Creates an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// Estimated memory footprint in bytes: the inline enum size plus any
    /// heap payload (string bytes and the `Arc` reference counts). Used by
    /// byte-budgeted caches; shared `Arc<str>` payloads are counted once per
    /// holder, which over-approximates but keeps the accounting local.
    pub fn estimated_bytes(&self) -> usize {
        let heap = match self {
            Value::Int(_) => 0,
            // String payload plus the Arc's strong/weak counters.
            Value::Str(s) => s.len() + 2 * std::mem::size_of::<usize>(),
        };
        std::mem::size_of::<Value>() + heap
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn int_and_str_are_distinct() {
        assert_ne!(Value::from(1), Value::from("1"));
    }

    #[test]
    fn display_quotes_strings_only() {
        assert_eq!(Value::from("a").to_string(), "'a'");
        assert_eq!(Value::from(42).to_string(), "42");
    }

    #[test]
    fn clone_is_equal_and_hashes_identically() {
        let v = Value::from("an artist name");
        let w = v.clone();
        assert_eq!(v, w);
        let mut set = HashSet::new();
        set.insert(v);
        assert!(set.contains(&w));
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [
            Value::from("b"),
            Value::from(2),
            Value::from("a"),
            Value::from(1),
        ];
        vals.sort();
        // Ints sort before strings under the derived ordering.
        assert_eq!(vals[0], Value::from(1));
        assert_eq!(vals[1], Value::from(2));
        assert_eq!(vals[2], Value::from("a"));
        assert_eq!(vals[3], Value::from("b"));
    }

    #[test]
    fn byte_estimates_track_payload() {
        let int = Value::from(2008);
        let short = Value::from("ab");
        let long = Value::from("a much longer artist name than the short one");
        assert_eq!(int.estimated_bytes(), std::mem::size_of::<Value>());
        assert!(short.estimated_bytes() > int.estimated_bytes());
        assert!(long.estimated_bytes() > short.estimated_bytes());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::from(7).as_int(), Some(7));
        assert_eq!(Value::from(7).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").as_int(), None);
    }
}
