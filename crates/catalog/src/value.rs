//! Constants that populate relations.
//!
//! The paper treats values as members of abstract domains with an underlying
//! concrete domain. We support the two concrete domains that cover the
//! paper's examples and experiments: integers (years, synthetic ids) and
//! strings (names, titles). A value does not carry its abstract domain; the
//! domain is always implied by the schema position a value was read from or
//! bound to, exactly as in the paper's positional notation.

use std::fmt;

use crate::intern::Symbol;

/// A constant of one of the supported concrete domains.
///
/// `Value` is `Copy`: string payloads are interned into the process-wide
/// [`Interner`](crate::Interner) and carried as a [`Symbol`] (`u32`), so a
/// value is two machine words, cloning is a register copy, and hashing and
/// equality never touch the string payload. See [`IVal`](crate::IVal) for
/// the explicit compact mirror used in index signatures.
///
/// ```
/// use toorjah_catalog::Value;
///
/// let v = Value::from("volare");
/// assert_eq!(v.to_string(), "'volare'");
/// assert_eq!(Value::from(2008).to_string(), "2008");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer constant, e.g. a year such as `2008`.
    Int(i64),
    /// A string constant, e.g. `'volare'`, as an interned symbol.
    Str(Symbol),
}

impl Value {
    /// Creates a string value (interning the payload).
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Symbol::intern(s))
    }

    /// Creates an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s.as_str()),
        }
    }

    /// Estimated memory footprint in bytes. Values are fixed-size: string
    /// payloads are interned and accounted once at the
    /// [`Interner`](crate::Interner) (see [`InternerStats::bytes`]), not
    /// once per holder, so byte-budgeted caches charge every value the same
    /// two words.
    ///
    /// [`InternerStats::bytes`]: crate::InternerStats
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Value>()
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Str(s)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Integers order before strings; strings order by content (via
    /// [`Symbol::cmp`]), exactly as the pre-interning derived ordering did —
    /// sorted answer sets are byte-identical.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{}'", s.as_str()),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn int_and_str_are_distinct() {
        assert_ne!(Value::from(1), Value::from("1"));
    }

    #[test]
    fn display_quotes_strings_only() {
        assert_eq!(Value::from("a").to_string(), "'a'");
        assert_eq!(Value::from(42).to_string(), "42");
    }

    #[test]
    fn clone_is_equal_and_hashes_identically() {
        let v = Value::from("an artist name");
        let w = v;
        assert_eq!(v, w);
        let mut set = HashSet::new();
        set.insert(v);
        assert!(set.contains(&w));
    }

    #[test]
    fn interning_unifies_equal_strings() {
        // Two independently constructed equal strings share one symbol.
        let a = Value::from("same constant");
        let b = Value::from(String::from("same constant"));
        assert_eq!(a, b);
        match (a, b) {
            (Value::Str(x), Value::Str(y)) => assert_eq!(x.id(), y.id()),
            _ => panic!("both are strings"),
        }
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [
            Value::from("b"),
            Value::from(2),
            Value::from("a"),
            Value::from(1),
        ];
        vals.sort();
        // Ints sort before strings, strings by content — the pre-interning
        // ordering, independent of symbol-id assignment order.
        assert_eq!(vals[0], Value::from(1));
        assert_eq!(vals[1], Value::from(2));
        assert_eq!(vals[2], Value::from("a"));
        assert_eq!(vals[3], Value::from("b"));
    }

    #[test]
    fn values_are_fixed_size() {
        // Payloads are accounted at the interner, not per holder: a long
        // string costs its holder exactly what an int does.
        let int = Value::from(2008);
        let short = Value::from("ab");
        let long = Value::from("a much longer artist name than the short one");
        assert_eq!(int.estimated_bytes(), std::mem::size_of::<Value>());
        assert_eq!(short.estimated_bytes(), int.estimated_bytes());
        assert_eq!(long.estimated_bytes(), int.estimated_bytes());
        assert!(std::mem::size_of::<Value>() <= 16, "two words, Copy");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::from(7).as_int(), Some(7));
        assert_eq!(Value::from(7).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").as_int(), None);
    }
}
