//! Database schemas: sets of relation schemas over a shared domain registry.

use std::collections::HashMap;
use std::fmt;

use crate::{AccessPattern, CatalogError, DomainId, DomainRegistry, RelationId, RelationSchema};

/// A database schema `R`: relation schemas for distinct relation names plus
/// the registry of abstract domains they mention.
///
/// Schemas are immutable once built; use [`SchemaBuilder`] or [`Schema::parse`]
/// to construct them.
///
/// ```
/// use toorjah_catalog::Schema;
///
/// let schema = Schema::parse(
///     "r1^ioo(Artist, Nation, Year)
///      r2^oio(Title, Year, Artist)
///      r3^oo(Artist, Album)",
/// ).unwrap();
/// assert_eq!(schema.relation_count(), 3);
/// let r3 = schema.relation_by_name("r3").unwrap();
/// assert!(r3.is_free());
/// ```
#[derive(Clone, Debug)]
pub struct Schema {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, RelationId>,
    domains: DomainRegistry,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::new()
    }

    /// Parses a schema from the paper's textual notation.
    ///
    /// Declarations look like `rev^ooi(Person, ConfName, Year)` and are
    /// separated by whitespace, newlines, commas after the closing paren, or
    /// semicolons. A nullary relation is written `flag^()` or `flag()`.
    pub fn parse(text: &str) -> Result<Schema, CatalogError> {
        let mut builder = SchemaBuilder::new();
        for decl in split_declarations(text) {
            let (name, pattern, domains) = parse_declaration(&decl)?;
            builder = builder.relation_dyn(&name, &pattern, &domains)?;
        }
        builder.finish()
    }

    /// The registry of abstract domains.
    pub fn domains(&self) -> &DomainRegistry {
        &self.domains
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// The relation schema for an id.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this schema.
    pub fn relation(&self, id: RelationId) -> &RelationSchema {
        &self.relations[id.index()]
    }

    /// Looks up a relation id by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a relation id by name, reporting an error when unknown.
    pub fn require_relation(&self, name: &str) -> Result<RelationId, CatalogError> {
        self.relation_id(name)
            .ok_or_else(|| CatalogError::UnknownRelation(name.to_string()))
    }

    /// Looks up a relation schema by name.
    pub fn relation_by_name(&self, name: &str) -> Option<&RelationSchema> {
        self.relation_id(name).map(|id| self.relation(id))
    }

    /// Iterates over `(id, relation)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelationId, &RelationSchema)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelationId(i as u32), r))
    }

    /// Ids of all relations in declaration order.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelationId> {
        (0..self.relations.len() as u32).map(RelationId)
    }

    /// Derives a new schema extended with extra relations (used by query
    /// preprocessing to add artificial constant relations). Existing ids are
    /// preserved; the new relations receive the next ids in order.
    pub fn extend(
        &self,
        extra: impl IntoIterator<Item = (String, AccessPattern, Vec<DomainId>)>,
    ) -> Result<Schema, CatalogError> {
        let mut out = self.clone();
        for (name, pattern, domains) in extra {
            if out.by_name.contains_key(&name) {
                return Err(CatalogError::DuplicateRelation(name));
            }
            if pattern.arity() != domains.len() {
                return Err(CatalogError::ArityMismatch {
                    relation: name,
                    domains: domains.len(),
                    pattern: pattern.arity(),
                });
            }
            let id = RelationId(out.relations.len() as u32);
            out.by_name.insert(name.clone(), id);
            out.relations
                .push(RelationSchema::new(name, domains, pattern));
        }
        Ok(out)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{}", r.display(&self.domains))?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Schema`].
#[derive(Default, Debug)]
pub struct SchemaBuilder {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, RelationId>,
    domains: DomainRegistry,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation, interning its domains; chainable.
    ///
    /// ```
    /// use toorjah_catalog::SchemaBuilder;
    ///
    /// let schema = SchemaBuilder::new()
    ///     .relation("pub1", "io", &["Paper", "Person"]).unwrap()
    ///     .relation("conf", "ooo", &["Paper", "ConfName", "Year"]).unwrap()
    ///     .finish().unwrap();
    /// assert_eq!(schema.relation_count(), 2);
    /// ```
    pub fn relation(
        self,
        name: &str,
        pattern: &str,
        domains: &[&str],
    ) -> Result<Self, CatalogError> {
        let owned: Vec<String> = domains.iter().map(|s| s.to_string()).collect();
        self.relation_dyn(name, pattern, &owned)
    }

    fn relation_dyn(
        mut self,
        name: &str,
        pattern: &str,
        domains: &[String],
    ) -> Result<Self, CatalogError> {
        if self.by_name.contains_key(name) {
            return Err(CatalogError::DuplicateRelation(name.to_string()));
        }
        let pattern: AccessPattern = pattern.parse()?;
        if pattern.arity() != domains.len() {
            return Err(CatalogError::ArityMismatch {
                relation: name.to_string(),
                domains: domains.len(),
                pattern: pattern.arity(),
            });
        }
        let ids: Vec<DomainId> = domains.iter().map(|d| self.domains.intern(d)).collect();
        let id = RelationId(self.relations.len() as u32);
        self.by_name.insert(name.to_string(), id);
        self.relations
            .push(RelationSchema::new(name.to_string(), ids, pattern));
        Ok(self)
    }

    /// Finalizes the schema.
    pub fn finish(self) -> Result<Schema, CatalogError> {
        Ok(Schema {
            relations: self.relations,
            by_name: self.by_name,
            domains: self.domains,
        })
    }
}

/// Splits schema text into individual `name^pattern(...)` declarations.
fn split_declarations(text: &str) -> Vec<String> {
    let mut decls = Vec::new();
    let mut current = String::new();
    let mut depth = 0usize;
    for c in text.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
                if depth == 0 {
                    decls.push(current.trim().to_string());
                    current.clear();
                }
            }
            ';' | ',' if depth == 0 => {
                // separators between declarations
            }
            c if c.is_whitespace() && depth == 0 => {
                // whitespace between declarations
                if !current.trim().is_empty() {
                    // name fragment continues; keep accumulating
                    current.push(' ');
                }
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        decls.push(current.trim().to_string());
    }
    decls
}

/// Parses one `name^pattern(Dom1, …, DomN)` declaration.
fn parse_declaration(decl: &str) -> Result<(String, String, Vec<String>), CatalogError> {
    let err = |reason: &str| CatalogError::Parse {
        fragment: decl.to_string(),
        reason: reason.to_string(),
    };
    let open = decl.find('(').ok_or_else(|| err("missing '('"))?;
    if !decl.ends_with(')') {
        return Err(err("missing trailing ')'"));
    }
    let head = decl[..open].trim();
    let args = &decl[open + 1..decl.len() - 1];
    let (name, pattern) = match head.split_once('^') {
        Some((n, p)) => (n.trim(), p.trim().to_string()),
        None => (head, String::new()),
    };
    if name.is_empty() {
        return Err(err("empty relation name"));
    }
    if !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err("relation names must be alphanumeric/underscore"));
    }
    let domains: Vec<String> = if args.trim().is_empty() {
        Vec::new()
    } else {
        args.split(',').map(|a| a.trim().to_string()).collect()
    };
    if domains.iter().any(|d| d.is_empty()) {
        return Err(err("empty domain name"));
    }
    // A head without `^pattern` defaults to all-output (free) access.
    let pattern = if pattern.is_empty() {
        "o".repeat(domains.len())
    } else {
        pattern
    };
    Ok((name.to_string(), pattern, domains))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_example1_schema() {
        // Example 1 of the paper.
        let schema = Schema::parse(
            "r1^ioo(Artist, Nation, Year)
             r2^oio(Title, Year, Artist)
             r3^oo(Artist, Album)",
        )
        .unwrap();
        assert_eq!(schema.relation_count(), 3);
        assert_eq!(schema.domains().len(), 5);
        let r2 = schema.relation_by_name("r2").unwrap();
        assert_eq!(r2.pattern().to_string(), "oio");
        assert_eq!(schema.domains().name(r2.domain(2)), "Artist");
    }

    #[test]
    fn parse_with_semicolons_and_default_free_pattern() {
        let schema = Schema::parse("a^i(X); b(X, Y)").unwrap();
        assert!(schema.relation_by_name("b").unwrap().is_free());
        assert_eq!(
            schema.relation_by_name("b").unwrap().pattern().to_string(),
            "oo"
        );
    }

    #[test]
    fn parse_nullary() {
        let schema = Schema::parse("flag^()").unwrap();
        let f = schema.relation_by_name("flag").unwrap();
        assert_eq!(f.arity(), 0);
        assert!(f.is_free());
    }

    #[test]
    fn parse_rejects_arity_mismatch() {
        let err = Schema::parse("r^io(A)").unwrap_err();
        assert!(matches!(err, CatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn parse_rejects_duplicates() {
        let err = Schema::parse("r^o(A) r^o(B)").unwrap_err();
        assert!(matches!(err, CatalogError::DuplicateRelation(_)));
    }

    #[test]
    fn parse_rejects_missing_paren() {
        assert!(Schema::parse("r^o A").is_err());
    }

    #[test]
    fn shared_domains_get_one_id() {
        let schema = Schema::parse("r1^io(A, C) r2^io(B, C) r3^io(C, B)").unwrap();
        let r1 = schema.relation_by_name("r1").unwrap();
        let r3 = schema.relation_by_name("r3").unwrap();
        assert_eq!(r1.domain(1), r3.domain(0));
    }

    #[test]
    fn relation_ids_are_dense() {
        let schema = Schema::parse("a^o(X) b^o(X) c^o(X)").unwrap();
        let ids: Vec<u32> = schema.relation_ids().map(|r| r.0).collect();
        assert_eq!(ids, [0, 1, 2]);
        assert_eq!(schema.relation(RelationId(1)).name(), "b");
    }

    #[test]
    fn extend_preserves_ids() {
        let schema = Schema::parse("a^o(X)").unwrap();
        let x = schema.domains().lookup("X").unwrap();
        let extended = schema
            .extend([("c_a".to_string(), AccessPattern::all_output(1), vec![x])])
            .unwrap();
        assert_eq!(extended.relation_id("a"), Some(RelationId(0)));
        assert_eq!(extended.relation_id("c_a"), Some(RelationId(1)));
        // Original untouched.
        assert_eq!(schema.relation_count(), 1);
    }

    #[test]
    fn extend_rejects_duplicates() {
        let schema = Schema::parse("a^o(X)").unwrap();
        let x = schema.domains().lookup("X").unwrap();
        assert!(schema
            .extend([("a".to_string(), AccessPattern::all_output(1), vec![x])])
            .is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let schema =
            Schema::parse("pub1^io(Paper, Person) rev^ooi(Person, ConfName, Year)").unwrap();
        let text = schema.to_string();
        let again = Schema::parse(&text).unwrap();
        assert_eq!(again.relation_count(), 2);
        assert_eq!(
            text,
            "pub1^io(Paper, Person)\nrev^ooi(Person, ConfName, Year)"
        );
    }

    #[test]
    fn require_relation_errors() {
        let schema = Schema::parse("a^o(X)").unwrap();
        assert!(schema.require_relation("a").is_ok());
        assert!(schema.require_relation("zz").is_err());
    }
}
