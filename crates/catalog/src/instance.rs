//! Database instances: one extension per relation schema, indexed on the
//! input positions so that an access is a hash lookup.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::{CatalogError, RelationId, Schema, Tuple, Value};

/// The extension of one relation together with an index keyed on the values
/// of its input positions.
#[derive(Clone, Debug, Default)]
pub struct RelationData {
    tuples: Vec<Tuple>,
    /// Dedup set over all tuples (instances are sets of tuples, §II).
    seen: HashSet<Tuple>,
    /// Input positions this relation is indexed on (from the access pattern).
    input_positions: Vec<usize>,
    /// binding (projection on input positions) → tuple indexes.
    index: HashMap<Tuple, Vec<usize>>,
}

impl RelationData {
    fn new(input_positions: Vec<usize>) -> Self {
        RelationData {
            tuples: Vec::new(),
            seen: HashSet::new(),
            input_positions,
            index: HashMap::new(),
        }
    }

    /// All tuples, in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the extension is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was new.
    fn insert(&mut self, tuple: Tuple) -> bool {
        if !self.seen.insert(tuple.clone()) {
            return false;
        }
        let key = tuple.project(&self.input_positions);
        let idx = self.tuples.len();
        self.tuples.push(tuple);
        self.index.entry(key).or_default().push(idx);
        true
    }

    /// Tuples whose input positions equal `binding` (the result of an
    /// *access* with that binding).
    fn matching(&self, binding: &Tuple) -> Vec<Tuple> {
        match self.index.get(binding) {
            Some(rows) => rows.iter().map(|&i| self.tuples[i].clone()).collect(),
            None => Vec::new(),
        }
    }
}

/// A database instance `D` of a [`Schema`]: a set of relations, one over each
/// relation schema.
///
/// ```
/// use toorjah_catalog::{Instance, Schema, tuple};
///
/// let schema = Schema::parse("r1^io(A, C) r2^io(B, C)").unwrap();
/// let mut db = Instance::new(&schema);
/// db.insert("r1", tuple!["a1", "c1"]).unwrap();
/// db.insert("r1", tuple!["a1", "c3"]).unwrap();
///
/// // An access to r1 binding its input argument to 'a1':
/// let out = db.access_by_name("r1", &tuple!["a1"]).unwrap();
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Instance {
    /// Extension per relation id; indexes aligned with the schema.
    extents: Vec<RelationData>,
    /// Relation names (copied from the schema for error messages/Display).
    names: Vec<String>,
    /// Declared arity per relation (tuples are validated against it).
    arities: Vec<usize>,
}

impl Instance {
    /// Creates an empty instance of `schema`.
    pub fn new(schema: &Schema) -> Self {
        let mut extents = Vec::with_capacity(schema.relation_count());
        let mut names = Vec::with_capacity(schema.relation_count());
        let mut arities = Vec::with_capacity(schema.relation_count());
        for (_, rel) in schema.iter() {
            extents.push(RelationData::new(rel.pattern().input_positions().collect()));
            names.push(rel.name().to_string());
            arities.push(rel.arity());
        }
        Instance {
            extents,
            names,
            arities,
        }
    }

    /// Creates an instance and populates it from `(relation name, tuples)` pairs.
    pub fn with_data<'a>(
        schema: &Schema,
        data: impl IntoIterator<Item = (&'a str, Vec<Tuple>)>,
    ) -> Result<Self, CatalogError> {
        let mut db = Instance::new(schema);
        for (name, tuples) in data {
            let id = schema.require_relation(name)?;
            for t in tuples {
                db.insert_by_id(id, t)?;
            }
        }
        Ok(db)
    }

    /// Inserts a tuple into the named relation. The instance must have been
    /// created from a schema containing that relation.
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> Result<bool, CatalogError> {
        let id = self
            .names
            .iter()
            .position(|n| n == name)
            .map(|i| RelationId(i as u32))
            .ok_or_else(|| CatalogError::UnknownRelation(name.to_string()))?;
        self.insert_by_id(id, tuple)
    }

    /// Inserts a tuple by relation id; returns `true` if the tuple was new.
    pub fn insert_by_id(&mut self, id: RelationId, tuple: Tuple) -> Result<bool, CatalogError> {
        let arity = self.arities[id.index()];
        if tuple.len() != arity {
            return Err(CatalogError::TupleArity {
                relation: self.names[id.index()].clone(),
                expected: arity,
                got: tuple.len(),
            });
        }
        Ok(self.extents[id.index()].insert(tuple))
    }

    /// Performs an *access* (§II): evaluates the single-atom CQ selecting all
    /// input positions of relation `id` with the constants in `binding`.
    ///
    /// `binding` lists one value per input position, in positional order.
    pub fn access(&self, id: RelationId, binding: &Tuple) -> Result<Vec<Tuple>, CatalogError> {
        let data = &self.extents[id.index()];
        if binding.len() != data.input_positions.len() {
            return Err(CatalogError::BindingArity {
                relation: self.names[id.index()].clone(),
                expected: data.input_positions.len(),
                got: binding.len(),
            });
        }
        Ok(data.matching(binding))
    }

    /// [`Instance::access`] by relation name.
    pub fn access_by_name(&self, name: &str, binding: &Tuple) -> Result<Vec<Tuple>, CatalogError> {
        let id = self
            .names
            .iter()
            .position(|n| n == name)
            .map(|i| RelationId(i as u32))
            .ok_or_else(|| CatalogError::UnknownRelation(name.to_string()))?;
        self.access(id, binding)
    }

    /// The full extension of a relation (bypasses access limitations; used by
    /// tests and by the "complete answer" oracle).
    pub fn full_extension(&self, id: RelationId) -> &[Tuple] {
        self.extents[id.index()].tuples()
    }

    /// Extension size of a relation.
    pub fn relation_len(&self, id: RelationId) -> usize {
        self.extents[id.index()].len()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.extents.iter().map(|d| d.len()).sum()
    }

    /// Number of relations (same as the schema's).
    pub fn relation_count(&self) -> usize {
        self.extents.len()
    }

    /// Distinct values appearing at the given position of a relation.
    pub fn values_at(&self, id: RelationId, position: usize) -> HashSet<Value> {
        self.extents[id.index()]
            .tuples()
            .iter()
            .map(|t| t[position])
            .collect()
    }

    /// Merges another instance's tuples into this one (used to build cache
    /// databases from extraction results). Relations are matched by index.
    pub fn absorb(&mut self, other: &Instance) {
        for (i, data) in other.extents.iter().enumerate() {
            for t in data.tuples() {
                let _ = self.extents[i].insert(t.clone());
            }
        }
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, data) in self.extents.iter().enumerate() {
            writeln!(f, "{} ({} tuples)", self.names[i], data.len())?;
            for t in data.tuples() {
                writeln!(f, "  {t}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn example2_schema() -> Schema {
        Schema::parse("r1^io(A, C) r2^io(B, C) r3^io(C, B)").unwrap()
    }

    fn example2_instance(schema: &Schema) -> Instance {
        Instance::with_data(
            schema,
            [
                ("r1", vec![tuple!["a1", "c1"], tuple!["a1", "c3"]]),
                (
                    "r2",
                    vec![tuple!["b1", "c1"], tuple!["b2", "c2"], tuple!["b3", "c3"]],
                ),
                ("r3", vec![tuple!["c1", "b2"], tuple!["c2", "b1"]]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn access_selects_on_input_positions() {
        let schema = example2_schema();
        let db = example2_instance(&schema);
        let r1 = schema.relation_id("r1").unwrap();
        let out = db.access(r1, &tuple!["a1"]).unwrap();
        assert_eq!(out.len(), 2);
        let out = db.access(r1, &tuple!["a2"]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn access_wrong_binding_arity_is_an_error() {
        let schema = example2_schema();
        let db = example2_instance(&schema);
        let r1 = schema.relation_id("r1").unwrap();
        assert!(db.access(r1, &tuple!["a1", "zz"]).is_err());
        assert!(db.access(r1, &Tuple::empty()).is_err());
    }

    #[test]
    fn free_relation_access_with_empty_binding() {
        let schema = Schema::parse("r3^oo(Artist, Album)").unwrap();
        let mut db = Instance::new(&schema);
        db.insert("r3", tuple!["modugno", "nel blu"]).unwrap();
        let out = db.access_by_name("r3", &Tuple::empty()).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn duplicate_tuples_are_ignored() {
        let schema = example2_schema();
        let mut db = Instance::new(&schema);
        assert!(db.insert("r1", tuple!["a", "c"]).unwrap());
        assert!(!db.insert("r1", tuple!["a", "c"]).unwrap());
        assert_eq!(db.relation_len(schema.relation_id("r1").unwrap()), 1);
    }

    #[test]
    fn arity_is_validated() {
        let schema = example2_schema();
        let mut db = Instance::new(&schema);
        db.insert("r1", tuple!["a", "c"]).unwrap();
        assert!(db.insert("r1", tuple!["a", "c", "d"]).is_err());
        assert!(db.insert("r1", Tuple::empty()).is_err());
        // The declared arity binds even for the very first tuple.
        let mut empty = Instance::new(&schema);
        assert!(empty.insert("r1", tuple!["only-one"]).is_err());
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let schema = example2_schema();
        let mut db = Instance::new(&schema);
        assert!(db.insert("zz", tuple!["a"]).is_err());
        assert!(db.access_by_name("zz", &Tuple::empty()).is_err());
    }

    #[test]
    fn values_at_projects_distinct() {
        let schema = example2_schema();
        let db = example2_instance(&schema);
        let r2 = schema.relation_id("r2").unwrap();
        let vals = db.values_at(r2, 0);
        assert_eq!(vals.len(), 3);
        assert!(vals.contains(&Value::from("b2")));
    }

    #[test]
    fn totals() {
        let schema = example2_schema();
        let db = example2_instance(&schema);
        assert_eq!(db.total_tuples(), 7);
        assert_eq!(db.relation_count(), 3);
    }

    #[test]
    fn absorb_merges_and_dedups() {
        let schema = example2_schema();
        let mut a = example2_instance(&schema);
        let b = example2_instance(&schema);
        a.absorb(&b);
        assert_eq!(a.total_tuples(), 7);
    }

    #[test]
    fn nullary_relation_roundtrip() {
        let schema = Schema::parse("flag^()").unwrap();
        let mut db = Instance::new(&schema);
        assert!(db.insert("flag", Tuple::empty()).unwrap());
        assert!(!db.insert("flag", Tuple::empty()).unwrap());
        let out = db.access_by_name("flag", &Tuple::empty()).unwrap();
        assert_eq!(out, vec![Tuple::empty()]);
    }

    #[test]
    fn display_lists_relations() {
        let schema = example2_schema();
        let db = example2_instance(&schema);
        let s = db.to_string();
        assert!(s.contains("r1 (2 tuples)"));
        assert!(s.contains("⟨'c2', 'b1'⟩"));
    }
}
