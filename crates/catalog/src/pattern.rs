//! Access patterns (§II of the paper).
//!
//! An access pattern `α` for an n-ary relation is a sequence of `i`/`o`
//! symbols of length n. The k-th argument is an *input* argument when the
//! k-th symbol is `i`, an *output* argument otherwise. A relation whose
//! pattern contains no `i` is *free* and can be accessed with no bindings.

use std::fmt;
use std::str::FromStr;

use crate::CatalogError;

/// The access mode of a single argument position.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mode {
    /// The position must be bound by a constant to access the relation (`i`).
    Input,
    /// The position is returned by the access (`o`).
    Output,
}

impl Mode {
    /// `true` for [`Mode::Input`].
    pub fn is_input(self) -> bool {
        matches!(self, Mode::Input)
    }

    /// `true` for [`Mode::Output`].
    pub fn is_output(self) -> bool {
        matches!(self, Mode::Output)
    }

    /// The paper's one-letter rendering: `i` or `o`.
    pub fn letter(self) -> char {
        match self {
            Mode::Input => 'i',
            Mode::Output => 'o',
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// An access pattern: one [`Mode`] per argument position.
///
/// ```
/// use toorjah_catalog::{AccessPattern, Mode};
///
/// let p: AccessPattern = "ooi".parse().unwrap();
/// assert_eq!(p.arity(), 3);
/// assert!(!p.is_free());
/// assert_eq!(p.input_positions().collect::<Vec<_>>(), vec![2]);
/// assert_eq!(p.to_string(), "ooi");
/// assert!(AccessPattern::all_output(2).is_free());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AccessPattern {
    modes: Vec<Mode>,
}

impl AccessPattern {
    /// Builds a pattern from explicit modes.
    pub fn new(modes: Vec<Mode>) -> Self {
        AccessPattern { modes }
    }

    /// An all-output (free) pattern of the given arity.
    pub fn all_output(arity: usize) -> Self {
        AccessPattern {
            modes: vec![Mode::Output; arity],
        }
    }

    /// An all-input pattern of the given arity.
    pub fn all_input(arity: usize) -> Self {
        AccessPattern {
            modes: vec![Mode::Input; arity],
        }
    }

    /// The number of argument positions.
    pub fn arity(&self) -> usize {
        self.modes.len()
    }

    /// The mode of position `k` (0-based).
    ///
    /// # Panics
    /// Panics if `k >= self.arity()`.
    pub fn mode(&self, k: usize) -> Mode {
        self.modes[k]
    }

    /// All modes in positional order.
    pub fn modes(&self) -> &[Mode] {
        &self.modes
    }

    /// Whether the relation is free (no input arguments).
    pub fn is_free(&self) -> bool {
        self.modes.iter().all(|m| m.is_output())
    }

    /// 0-based positions that must be bound for an access.
    pub fn input_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.modes
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_input())
            .map(|(k, _)| k)
    }

    /// 0-based positions returned by an access.
    pub fn output_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.modes
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_output())
            .map(|(k, _)| k)
    }

    /// Number of input positions.
    pub fn input_count(&self) -> usize {
        self.modes.iter().filter(|m| m.is_input()).count()
    }

    /// Number of output positions.
    pub fn output_count(&self) -> usize {
        self.arity() - self.input_count()
    }

    /// The access binding for a fully instantiated atom: the values at the
    /// input positions, in pattern order — the tuple half of an
    /// [`crate::AccessKey`].
    ///
    /// # Panics
    /// Panics if `values` is shorter than the pattern's arity.
    pub fn binding_of(&self, values: &[crate::Value]) -> crate::Tuple {
        self.input_positions().map(|k| values[k]).collect()
    }
}

impl FromStr for AccessPattern {
    type Err = CatalogError;

    /// Parses the paper's `i`/`o` string notation, e.g. `"iio"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut modes = Vec::with_capacity(s.len());
        for c in s.chars() {
            match c {
                'i' | 'I' => modes.push(Mode::Input),
                'o' | 'O' => modes.push(Mode::Output),
                other => {
                    return Err(CatalogError::BadAccessPattern {
                        pattern: s.to_string(),
                        offending: other,
                    })
                }
            }
        }
        Ok(AccessPattern { modes })
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.modes {
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        for s in ["", "o", "i", "io", "ooi", "iio", "ooo"] {
            let p: AccessPattern = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = "ixo".parse::<AccessPattern>().unwrap_err();
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn parse_accepts_uppercase() {
        let p: AccessPattern = "IO".parse().unwrap();
        assert_eq!(p.to_string(), "io");
    }

    #[test]
    fn free_detection() {
        assert!("ooo".parse::<AccessPattern>().unwrap().is_free());
        assert!("".parse::<AccessPattern>().unwrap().is_free());
        assert!(!"ooi".parse::<AccessPattern>().unwrap().is_free());
    }

    #[test]
    fn positions_and_counts() {
        let p: AccessPattern = "iio".parse().unwrap();
        assert_eq!(p.input_positions().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(p.output_positions().collect::<Vec<_>>(), vec![2]);
        assert_eq!(p.input_count(), 2);
        assert_eq!(p.output_count(), 1);
        assert!(p.mode(0).is_input());
        assert!(p.mode(2).is_output());
    }

    #[test]
    fn constructors() {
        assert_eq!(AccessPattern::all_output(3).to_string(), "ooo");
        assert_eq!(AccessPattern::all_input(2).to_string(), "ii");
        let p = AccessPattern::new(vec![Mode::Input, Mode::Output]);
        assert_eq!(p.to_string(), "io");
    }

    #[test]
    fn nullary_pattern_is_free() {
        let p = AccessPattern::all_output(0);
        assert_eq!(p.arity(), 0);
        assert!(p.is_free());
        assert_eq!(p.input_count(), 0);
    }
}
