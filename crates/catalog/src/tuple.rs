//! Tuples `⟨c1,…,cn⟩` of constants.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::Value;

/// An immutable tuple of [`Value`]s.
///
/// Tuples are reference counted so that the cache database, meta-caches and
/// answer sets can share them without copying. Dereferences to `[Value]`.
///
/// ```
/// use toorjah_catalog::{Tuple, Value};
///
/// let t = Tuple::from(vec![Value::from("a1"), Value::from(1990)]);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.to_string(), "⟨'a1', 1990⟩");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(Arc::from(values.into()))
    }

    /// The empty (nullary) tuple `⟨⟩`.
    pub fn empty() -> Self {
        Tuple(Arc::from(Vec::new()))
    }

    /// The tuple's values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Estimated memory footprint in bytes: the handle, the shared slice
    /// allocation (values plus the `Arc` reference counts), and every
    /// value's heap payload. The estimate is what byte-budgeted caches
    /// account per stored tuple; see [`Value::estimated_bytes`] for the
    /// sharing caveat.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>()
            + 2 * std::mem::size_of::<usize>()
            + self.0.iter().map(Value::estimated_bytes).sum::<usize>()
    }

    /// Projects the tuple onto the given 0-based positions.
    ///
    /// # Panics
    /// Panics if any position is out of range.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(
            positions
                .iter()
                .map(|&p| self.0[p].clone())
                .collect::<Vec<_>>(),
        )
    }
}

impl Deref for Tuple {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect::<Vec<_>>())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("⟩")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Convenience macro building a [`Tuple`] from value-convertible expressions.
///
/// ```
/// use toorjah_catalog::tuple;
///
/// let t = tuple!["volare", 1958];
/// assert_eq!(t.to_string(), "⟨'volare', 1958⟩");
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn construction_and_deref() {
        let t = tuple!["a", 1];
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], Value::from("a"));
        assert_eq!(t.values()[1], Value::from(1));
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_string(), "⟨⟩");
    }

    #[test]
    fn projection() {
        let t = tuple!["a", "b", "c"];
        assert_eq!(t.project(&[2, 0]), tuple!["c", "a"]);
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn hashes_by_content() {
        let mut set = HashSet::new();
        set.insert(tuple!["x", 1]);
        assert!(set.contains(&tuple!["x", 1]));
        assert!(!set.contains(&tuple![1, "x"]));
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = (0..3).map(Value::from).collect();
        assert_eq!(t.to_string(), "⟨0, 1, 2⟩");
    }

    #[test]
    fn byte_estimates_grow_with_arity_and_payload() {
        let empty = Tuple::empty();
        let short = tuple![1, 2];
        let stringy = tuple!["an artist", "a title", 1958];
        assert!(empty.estimated_bytes() > 0);
        assert!(short.estimated_bytes() > empty.estimated_bytes());
        assert!(stringy.estimated_bytes() > short.estimated_bytes());
        // The estimate is content-deterministic.
        assert_eq!(stringy.estimated_bytes(), stringy.clone().estimated_bytes());
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let t = tuple!["shared", 7];
        let u = t.clone();
        assert_eq!(t, u);
    }
}
