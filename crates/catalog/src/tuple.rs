//! Tuples `⟨c1,…,cn⟩` of constants.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

use crate::Value;

/// Tuples up to this arity are stored inline — no heap allocation to build,
/// clone or drop them. The paper's relations (and hence bindings and cache
/// keys) are arity ≤ 3 throughout, so the hot loops never touch the heap
/// variant.
const INLINE: usize = 3;

#[derive(Clone)]
enum Repr {
    /// `values[..len]` inline in the handle; the tail is padding.
    Inline { len: u8, values: [Value; INLINE] },
    /// Reference-counted spill for arities above [`INLINE`].
    Heap(Arc<[Value]>),
}

/// An immutable tuple of [`Value`]s.
///
/// Since values are `Copy` (interned symbols or integers), small tuples —
/// up to arity 3, which covers every binding and extraction tuple of the
/// paper's workloads — are stored inline: constructing or cloning one is a
/// plain copy, no allocation. Larger tuples spill to a reference-counted
/// slice. Equality, hashing and ordering are by content, independent of the
/// representation. Dereferences to `[Value]`.
///
/// ```
/// use toorjah_catalog::{Tuple, Value};
///
/// let t = Tuple::from(vec![Value::from("a1"), Value::from(1990)]);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.to_string(), "⟨'a1', 1990⟩");
/// ```
#[derive(Clone)]
pub struct Tuple(Repr);

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        let values = values.into();
        if values.len() <= INLINE {
            Tuple::from_slice(&values)
        } else {
            Tuple(Repr::Heap(Arc::from(values)))
        }
    }

    /// Creates a tuple by copying a slice — the allocation-free path for
    /// arity ≤ 3 (the kernel's fresh-binding enumeration builds every
    /// binding through this from a reused scratch buffer).
    pub fn from_slice(values: &[Value]) -> Self {
        if values.len() <= INLINE {
            let mut inline = [Value::Int(0); INLINE];
            inline[..values.len()].copy_from_slice(values);
            Tuple(Repr::Inline {
                len: values.len() as u8,
                values: inline,
            })
        } else {
            Tuple(Repr::Heap(Arc::from(values)))
        }
    }

    /// The empty (nullary) tuple `⟨⟩`.
    pub fn empty() -> Self {
        Tuple(Repr::Inline {
            len: 0,
            values: [Value::Int(0); INLINE],
        })
    }

    /// The tuple's values.
    pub fn values(&self) -> &[Value] {
        match &self.0 {
            Repr::Inline { len, values } => &values[..*len as usize],
            Repr::Heap(values) => values,
        }
    }

    /// Estimated memory footprint in bytes: the handle plus one fixed-size
    /// slot per value (string payloads are accounted at the
    /// [`Interner`](crate::Interner), never per holder), plus the shared
    /// slice allocation's reference counts for spilled tuples. This is what
    /// byte-budgeted caches charge per stored tuple — deterministic in the
    /// arity alone.
    pub fn estimated_bytes(&self) -> usize {
        let spill = match &self.0 {
            Repr::Inline { .. } => 0,
            Repr::Heap(_) => 2 * std::mem::size_of::<usize>(),
        };
        std::mem::size_of::<Tuple>() + self.len() * std::mem::size_of::<Value>() + spill
    }

    /// Projects the tuple onto the given 0-based positions.
    ///
    /// # Panics
    /// Panics if any position is out of range.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        let values = self.values();
        if positions.len() <= INLINE {
            let mut inline = [Value::Int(0); INLINE];
            for (slot, &p) in inline.iter_mut().zip(positions) {
                *slot = values[p];
            }
            Tuple(Repr::Inline {
                len: positions.len() as u8,
                values: inline,
            })
        } else {
            Tuple(Repr::Heap(positions.iter().map(|&p| values[p]).collect()))
        }
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.values() == other.values()
    }
}

impl Eq for Tuple {}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.values().hash(state);
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.values().cmp(other.values())
    }
}

impl Deref for Tuple {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        self.values()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut iter = iter.into_iter();
        let mut inline = [Value::Int(0); INLINE];
        let mut len = 0usize;
        for slot in &mut inline {
            match iter.next() {
                Some(v) => {
                    *slot = v;
                    len += 1;
                }
                None => {
                    return Tuple(Repr::Inline {
                        len: len as u8,
                        values: inline,
                    })
                }
            }
        }
        match iter.next() {
            None => Tuple(Repr::Inline {
                len: len as u8,
                values: inline,
            }),
            Some(next) => {
                let mut values: Vec<Value> = inline.to_vec();
                values.push(next);
                values.extend(iter);
                Tuple(Repr::Heap(Arc::from(values)))
            }
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("⟨")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("⟩")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Convenience macro building a [`Tuple`] from value-convertible expressions.
///
/// ```
/// use toorjah_catalog::tuple;
///
/// let t = tuple!["volare", 1958];
/// assert_eq!(t.to_string(), "⟨'volare', 1958⟩");
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::from_slice(&[$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn construction_and_deref() {
        let t = tuple!["a", 1];
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], Value::from("a"));
        assert_eq!(t.values()[1], Value::from(1));
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_string(), "⟨⟩");
    }

    #[test]
    fn projection() {
        let t = tuple!["a", "b", "c"];
        assert_eq!(t.project(&[2, 0]), tuple!["c", "a"]);
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn hashes_by_content() {
        let mut set = HashSet::new();
        set.insert(tuple!["x", 1]);
        assert!(set.contains(&tuple!["x", 1]));
        assert!(!set.contains(&tuple![1, "x"]));
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = (0..3).map(Value::from).collect();
        assert_eq!(t.to_string(), "⟨0, 1, 2⟩");
    }

    #[test]
    fn inline_and_spilled_tuples_compare_by_content() {
        // Arity 4 spills to the heap; equality, hashing and ordering must
        // not see the representation difference.
        let spilled: Tuple = (0..4).map(Value::from).collect();
        let rebuilt = Tuple::new((0..4).map(Value::from).collect::<Vec<_>>());
        assert_eq!(spilled, rebuilt);
        let mut set = HashSet::new();
        set.insert(spilled.clone());
        assert!(set.contains(&rebuilt));
        assert_eq!(spilled.len(), 4);
        assert_eq!(spilled.project(&[0, 1, 2, 3]), rebuilt);
        let mut sorted = [rebuilt, tuple![0, 1]];
        sorted.sort();
        assert_eq!(sorted[0].len(), 2, "prefix sorts first");
    }

    #[test]
    fn byte_estimates_grow_with_arity() {
        let empty = Tuple::empty();
        let short = tuple![1, 2];
        let longer = tuple!["an artist", "a title", 1958];
        assert!(empty.estimated_bytes() > 0);
        assert!(short.estimated_bytes() > empty.estimated_bytes());
        assert!(longer.estimated_bytes() > short.estimated_bytes());
        // The estimate is content-deterministic and payload-independent:
        // interned payloads are accounted at the interner, not per tuple.
        assert_eq!(longer.estimated_bytes(), longer.clone().estimated_bytes());
        assert_eq!(
            tuple!["ab", "cd", 1].estimated_bytes(),
            longer.estimated_bytes()
        );
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let t = tuple!["shared", 7];
        let u = t.clone();
        assert_eq!(t, u);
    }
}
