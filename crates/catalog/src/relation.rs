//! Relation schemas: signatures `r^α(A1,…,An)` (§II).

use std::fmt;

use crate::{AccessPattern, DomainId, DomainRegistry, Mode};

/// Identifier of a relation inside a [`crate::Schema`].
///
/// Ids are dense indexes assigned in declaration order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelationId(pub u32);

impl RelationId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ρ{}", self.0)
    }
}

/// One access in the paper's sense (§II): a relation plus the tuple of
/// values bound to its input positions, in pattern order.
///
/// This is the key under which access logs, meta-caches and the shared
/// access cache identify an access — the unit the frontier-batched
/// dispatcher hands out to workers.
pub type AccessKey = (RelationId, crate::Tuple);

/// A relation schema: name, abstract domain per position, access pattern.
///
/// The paper uses positional notation — the `Ai` are abstract domains, not
/// attribute names. Two positions of different relations "represent values of
/// the same kind" exactly when they share a [`DomainId`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelationSchema {
    name: String,
    domains: Vec<DomainId>,
    pattern: AccessPattern,
}

impl RelationSchema {
    /// Creates a relation schema. `domains` and `pattern` must have equal
    /// length; this is validated by [`crate::SchemaBuilder`].
    pub(crate) fn new(name: String, domains: Vec<DomainId>, pattern: AccessPattern) -> Self {
        debug_assert_eq!(domains.len(), pattern.arity());
        RelationSchema {
            name,
            domains,
            pattern,
        }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.domains.len()
    }

    /// The abstract domain of position `k` (0-based).
    ///
    /// # Panics
    /// Panics if `k >= self.arity()`.
    pub fn domain(&self, k: usize) -> DomainId {
        self.domains[k]
    }

    /// All abstract domains in positional order.
    pub fn domains(&self) -> &[DomainId] {
        &self.domains
    }

    /// The access pattern.
    pub fn pattern(&self) -> &AccessPattern {
        &self.pattern
    }

    /// The mode of position `k` (0-based).
    pub fn mode(&self, k: usize) -> Mode {
        self.pattern.mode(k)
    }

    /// Whether the relation is free (no input arguments).
    pub fn is_free(&self) -> bool {
        self.pattern.is_free()
    }

    /// Renders the schema in the paper's notation with the given registry,
    /// e.g. `rev^ooi(Person, ConfName, Year)`.
    pub fn display<'a>(&'a self, domains: &'a DomainRegistry) -> impl fmt::Display + 'a {
        DisplaySchema {
            schema: self,
            domains,
        }
    }
}

struct DisplaySchema<'a> {
    schema: &'a RelationSchema,
    domains: &'a DomainRegistry,
}

impl fmt::Display for DisplaySchema<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}^{}(", self.schema.name(), self.schema.pattern())?;
        for (k, d) in self.schema.domains().iter().enumerate() {
            if k > 0 {
                f.write_str(", ")?;
            }
            f.write_str(self.domains.name(*d))?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DomainRegistry, RelationSchema) {
        let mut reg = DomainRegistry::new();
        let person = reg.intern("Person");
        let conf = reg.intern("ConfName");
        let year = reg.intern("Year");
        let schema = RelationSchema::new(
            "rev".to_string(),
            vec![person, conf, year],
            "ooi".parse().unwrap(),
        );
        (reg, schema)
    }

    #[test]
    fn accessors() {
        let (reg, r) = sample();
        assert_eq!(r.name(), "rev");
        assert_eq!(r.arity(), 3);
        assert_eq!(reg.name(r.domain(2)), "Year");
        assert!(r.mode(2).is_input());
        assert!(!r.is_free());
    }

    #[test]
    fn paper_notation_display() {
        let (reg, r) = sample();
        assert_eq!(
            r.display(&reg).to_string(),
            "rev^ooi(Person, ConfName, Year)"
        );
    }

    #[test]
    fn nullary_relation() {
        let reg = DomainRegistry::new();
        let r = RelationSchema::new("flag".into(), vec![], AccessPattern::all_output(0));
        assert_eq!(r.arity(), 0);
        assert!(r.is_free());
        assert_eq!(r.display(&reg).to_string(), "flag^()");
    }
}
