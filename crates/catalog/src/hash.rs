//! A fast, non-cryptographic hasher for interned keys.
//!
//! The interned data plane turns every index key into a fixed-size integer
//! ([`IVal`](crate::IVal): an `i64` or a `u32` symbol id). Integer keys
//! drawn from a trusted domain — the interner assigns ids densely, sources
//! are not adversarial — do not need the DoS resistance of `std`'s SipHash,
//! whose fixed per-lookup overhead dominates a probe once the key is two
//! words. [`FastBuildHasher`] is a multiplicative add-rotate-xor hasher in
//! the FxHash family: a handful of arithmetic instructions per word, good
//! dispersion on dense integers.
//!
//! This is itself a dividend of interning: while keys were heap strings,
//! hashing attacker-influenced payloads with a weak hash would have been a
//! collision hazard, so the pre-interning indexes were stuck with SipHash.
//! Symbol ids made the cheap hasher safe to adopt.

use std::hash::{BuildHasherDefault, Hasher};

/// Builds [`FastHasher`]s; plug into `HashMap`/`HashSet` as the `S`
/// parameter. `Default`-constructed, so maps remain `Default` too.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by interned-friendly keys, hashed with [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` of interned-friendly keys, hashed with [`FastHasher`].
pub type FastSet<T> = std::collections::HashSet<T, FastBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The word-at-a-time multiplicative hasher behind [`FastBuildHasher`].
#[derive(Clone, Copy, Default, Debug)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer fragments (e.g. a derived Hash that
        // feeds in a byte slice): fold whole words, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(b) << (8 * i);
        }
        if !chunks.remainder().is_empty() {
            self.add_to_hash(tail);
        }
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = crate::IVal::Sym(42);
        let b = crate::IVal::Sym(42);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(
            hash_of(&crate::IVal::Sym(42)),
            hash_of(&crate::IVal::Int(42))
        );
    }

    #[test]
    fn dense_ids_disperse() {
        // Dense symbol ids (the interner assigns 0, 1, 2, …) must not
        // collide in the low bits the hashmap actually uses.
        let mut low_bits: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for id in 0u32..4096 {
            low_bits.insert(hash_of(&crate::IVal::Sym(id)) & 0xfff);
        }
        assert!(
            low_bits.len() > 2048,
            "got {} distinct low-12-bit values out of 4096",
            low_bits.len()
        );
    }

    #[test]
    fn fast_map_works_as_an_index() {
        let mut m: FastMap<crate::IVal, Vec<u32>> = FastMap::default();
        m.entry(crate::IVal::Sym(7)).or_default().push(3);
        m.entry(crate::IVal::Int(-1)).or_default().push(9);
        assert_eq!(m[&crate::IVal::Sym(7)], vec![3]);
        assert_eq!(m[&crate::IVal::Int(-1)], vec![9]);
        assert!(!m.contains_key(&crate::IVal::Sym(8)));
    }

    #[test]
    fn byte_fallback_includes_length() {
        let mut a = FastHasher::default();
        a.write(b"ab");
        let mut b = FastHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish(), "length is folded in");
    }
}
