//! Property-based tests of the catalog substrate.

use proptest::prelude::*;
use toorjah_catalog::{AccessPattern, Instance, Schema, Tuple, Value};

/// Strategy for access-pattern strings.
fn pattern_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just('i'), Just('o')], 0..8)
        .prop_map(|cs| cs.into_iter().collect())
}

/// Strategy for small values.
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::from),
        "[a-z]{1,4}".prop_map(Value::str),
    ]
}

proptest! {
    /// Parsing and printing access patterns round-trips.
    #[test]
    fn access_pattern_roundtrip(s in pattern_string()) {
        let p: AccessPattern = s.parse().unwrap();
        prop_assert_eq!(p.to_string(), s);
        prop_assert_eq!(p.arity(), p.input_count() + p.output_count());
        prop_assert_eq!(p.is_free(), p.input_count() == 0);
    }

    /// Tuple projection keeps exactly the requested positions.
    #[test]
    fn tuple_projection(values in proptest::collection::vec(value(), 1..6)) {
        let t = Tuple::new(values.clone());
        let all: Vec<usize> = (0..values.len()).collect();
        prop_assert_eq!(t.project(&all), t.clone());
        let reversed: Vec<usize> = (0..values.len()).rev().collect();
        let r = t.project(&reversed);
        for (i, &p) in reversed.iter().enumerate() {
            prop_assert_eq!(&r[i], &t[p]);
        }
    }

    /// An access returns exactly the tuples whose input positions match the
    /// binding — no more, no fewer.
    #[test]
    fn access_equals_filter(
        rows in proptest::collection::vec((value(), value()), 0..25),
        probe in value(),
    ) {
        let schema = Schema::parse("r^io(A, B)").unwrap();
        let mut db = Instance::new(&schema);
        for (a, b) in &rows {
            let _ = db.insert("r", Tuple::new(vec![*a, *b]));
        }
        let got = db.access_by_name("r", &Tuple::new(vec![probe])).unwrap();
        // Expected: distinct matching rows, in first-insertion order.
        let mut expected: Vec<Tuple> = Vec::new();
        for (a, b) in &rows {
            if *a == probe {
                let t = Tuple::new(vec![*a, *b]);
                if !expected.contains(&t) {
                    expected.push(t);
                }
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// Inserting the same rows twice leaves the instance unchanged.
    #[test]
    fn insert_idempotent(rows in proptest::collection::vec((value(), value()), 0..20)) {
        let schema = Schema::parse("r^io(A, B)").unwrap();
        let mut db = Instance::new(&schema);
        for (a, b) in &rows {
            let _ = db.insert("r", Tuple::new(vec![*a, *b]));
        }
        let before = db.total_tuples();
        for (a, b) in &rows {
            let inserted = db.insert("r", Tuple::new(vec![*a, *b])).unwrap();
            prop_assert!(!inserted);
        }
        prop_assert_eq!(db.total_tuples(), before);
    }

    /// Schema text printing re-parses to an identical schema.
    #[test]
    fn schema_display_roundtrip(
        patterns in proptest::collection::vec(pattern_string(), 1..5),
    ) {
        let mut text = String::new();
        for (i, p) in patterns.iter().enumerate() {
            let domains: Vec<String> =
                (0..p.len()).map(|k| format!("D{k}")).collect();
            text.push_str(&format!("r{i}^{}({})\n", p, domains.join(", ")));
        }
        // Nullary relations print as r^() which also parses.
        let schema = Schema::parse(&text).unwrap();
        let again = Schema::parse(&schema.to_string()).unwrap();
        prop_assert_eq!(schema.relation_count(), again.relation_count());
        for (id, rel) in schema.iter() {
            let other = again.relation_by_name(rel.name()).unwrap();
            prop_assert_eq!(rel.pattern(), other.pattern());
            prop_assert_eq!(rel.arity(), other.arity());
            let _ = id;
        }
    }
}
