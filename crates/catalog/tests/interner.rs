//! Integration tests of the global string interner: round-trip identity,
//! injectivity on distinct strings, and concurrency (one id per string no
//! matter how many threads race to intern it).

use proptest::prelude::*;
use toorjah_catalog::{Interner, Symbol, Value};

proptest! {
    /// Interning is a bijection onto ids: resolve(intern(s)) == s, and
    /// re-interning the resolved payload yields the identical symbol.
    #[test]
    fn intern_resolve_intern_is_identity(s in ".{0,40}") {
        let sym = Symbol::intern(&s);
        prop_assert_eq!(sym.as_str(), s.as_str());
        prop_assert_eq!(Symbol::intern(sym.as_str()), sym);
    }

    /// Distinct strings intern to distinct symbols (and equal strings to
    /// equal symbols), so symbol-id equality is string equality.
    #[test]
    fn distinct_strings_get_distinct_symbols(a in ".{0,24}", b in ".{0,24}") {
        let sa = Symbol::intern(&a);
        let sb = Symbol::intern(&b);
        prop_assert_eq!(a == b, sa == sb);
        prop_assert_eq!(a == b, sa.id() == sb.id());
    }

    /// The `Value` boundary preserves round-trips too: a string value built
    /// twice compares equal and displays the original payload.
    #[test]
    fn value_str_roundtrip(s in "[^']{0,32}") {
        let v = Value::str(&s);
        let w = Value::str(&s);
        prop_assert_eq!(v, w);
        prop_assert_eq!(v.to_string(), format!("'{s}'"));
    }
}

#[test]
fn concurrent_interning_yields_one_id_per_string() {
    // 8 threads race to intern the same 64 strings; every thread must see
    // the same id for the same payload, and the interner must not register
    // duplicates.
    const THREADS: usize = 8;
    const STRINGS: usize = 64;
    let payloads: Vec<String> = (0..STRINGS)
        .map(|i| format!("concurrent-intern-payload-{i}"))
        .collect();

    let before = Interner::global().len();
    let ids: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let payloads = &payloads;
                scope.spawn(move || {
                    // Stagger the iteration order per thread to maximize
                    // contention on different entries at the same time.
                    (0..STRINGS)
                        .map(|i| Symbol::intern(&payloads[(i + t * 7) % STRINGS]).id())
                        .collect::<Vec<u32>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Undo the per-thread stagger, then require all threads agree.
    let canonical: Vec<u32> = payloads.iter().map(|s| Symbol::intern(s).id()).collect();
    for (t, thread_ids) in ids.iter().enumerate() {
        for i in 0..STRINGS {
            assert_eq!(
                thread_ids[i],
                canonical[(i + t * 7) % STRINGS],
                "thread {t} saw a different id for payload {}",
                (i + t * 7) % STRINGS
            );
        }
    }
    // No duplicates: the table grew by at most STRINGS entries (exactly
    // STRINGS if this test ran first, fewer only if another test already
    // interned one of these payloads — impossible given the prefix).
    let after = Interner::global().len();
    assert!(
        after - before <= STRINGS,
        "interner registered duplicates: grew by {}",
        after - before
    );
    let unique: std::collections::HashSet<u32> = canonical.iter().copied().collect();
    assert_eq!(unique.len(), STRINGS, "distinct payloads share an id");
}

#[test]
fn interner_stats_track_symbols_and_bytes() {
    let before = Interner::global().stats();
    let sym = Symbol::intern("stats-tracking-witness-payload");
    let after = Interner::global().stats();
    assert!(after.symbols >= before.symbols);
    assert!(
        after.bytes >= before.bytes,
        "payload bytes are accounted at the interner"
    );
    // Re-interning is free: no new symbol, no new bytes.
    let again = Symbol::intern("stats-tracking-witness-payload");
    assert_eq!(again, sym);
    assert_eq!(Interner::global().stats().symbols, after.symbols);
    assert_eq!(Interner::global().stats().bytes, after.bytes);
}
