//! Property test: the GFP algorithm computes the **unique maximal solution**
//! (§III). On small random d-graphs, every valid solution `(S, D)` is
//! enumerated by brute force and checked to be dominated by GFP's result.
//!
//! A pair `(S, D)` of disjoint arc sets is a *valid solution* when:
//!
//! 1. `S ⊆ cand(G) \ cycl(G)` and `D ∩ cand(G) = ∅` (candidate strong arcs
//!    can never be deleted — they reach black nodes);
//! 2. stability of `S`: for every `u→v ∈ S`, every outgoing arc of `v`'s
//!    source is in `S ∪ D`;
//! 3. stability of `D`: for every `u→v ∈ D`, either `v` is black and some
//!    arc of `S` enters the node `v`, or `v` is white and all outgoing arcs
//!    of `v`'s source are in `D`;
//! 4. the marking preserves free-reachability of every relevant source's
//!    input nodes (queryability is not destroyed).

use std::collections::HashSet;

use proptest::prelude::*;
use toorjah_core::{
    candidate_strong_arcs, cyclic_candidate_arcs, gfp, ArcId, DGraph, OptimizedDGraph, Solution,
};
use toorjah_query::preprocess;
use toorjah_workload::random::seeded_rng;
use toorjah_workload::{random_query, random_schema, RandomParams};

/// Is `(S, D)` a valid solution for `graph`? (Conditions 1–4 above.)
fn is_valid_solution(graph: &DGraph, strong: &HashSet<ArcId>, deleted: &HashSet<ArcId>) -> bool {
    let cand = candidate_strong_arcs(graph);
    let cycl = cyclic_candidate_arcs(graph, &cand);

    // (1) domains of the sets.
    if !strong.iter().all(|a| cand.contains(a) && !cycl.contains(a)) {
        return false;
    }
    if deleted.iter().any(|a| cand.contains(a)) {
        return false;
    }
    if !strong.is_disjoint(deleted) {
        return false;
    }
    // (2) stability of S.
    for &arc in strong {
        let v = graph.arc(arc).to;
        let ok = graph
            .out_arcs_of_node(v)
            .iter()
            .all(|g| strong.contains(g) || deleted.contains(g));
        if !ok {
            return false;
        }
    }
    // (3) stability of D.
    for &arc in deleted {
        let v = graph.arc(arc).to;
        if graph.node(v).is_black() {
            let dominated = strong.iter().any(|&s| graph.arc(s).to == v);
            if !dominated {
                return false;
            }
        } else {
            let dead = graph
                .out_arcs_of_node(v)
                .iter()
                .all(|g| deleted.contains(g));
            if !dead {
                return false;
            }
        }
    }
    // (4) free-reachability preservation.
    let marked = OptimizedDGraph::new(
        graph.clone(),
        Solution {
            strong: strong.clone(),
            deleted: deleted.clone(),
        },
    );
    marked.check_invariants().is_ok()
}

/// Brute-force every candidate `(S, D)` pair for graphs with few arcs.
fn all_solutions(graph: &DGraph) -> Vec<(HashSet<ArcId>, HashSet<ArcId>)> {
    let cand = candidate_strong_arcs(graph);
    let cycl = cyclic_candidate_arcs(graph, &cand);
    let strong_pool: Vec<ArcId> = cand.difference(&cycl).copied().collect();
    let deleted_pool: Vec<ArcId> = graph.arc_ids().filter(|a| !cand.contains(a)).collect();
    let mut out = Vec::new();
    for s_mask in 0u32..(1 << strong_pool.len()) {
        let strong: HashSet<ArcId> = strong_pool
            .iter()
            .enumerate()
            .filter(|(i, _)| s_mask & (1 << i) != 0)
            .map(|(_, &a)| a)
            .collect();
        for d_mask in 0u32..(1 << deleted_pool.len()) {
            let deleted: HashSet<ArcId> = deleted_pool
                .iter()
                .enumerate()
                .filter(|(i, _)| d_mask & (1 << i) != 0)
                .map(|(_, &a)| a)
                .collect();
            if is_valid_solution(graph, &strong, &deleted) {
                out.push((strong.clone(), deleted));
            }
        }
    }
    out
}

fn tiny_graph(seed: u64) -> Option<DGraph> {
    let params = RandomParams {
        relations: (2, 4),
        arity: (1, 2),
        domains: 3,
        input_probability: 0.4,
        domain_values: (2, 4),
        atoms: (1, 3),
        join_probability: 0.5,
        constant_probability: 0.3,
        tuples: (0, 5),
    };
    let mut rng = seeded_rng(seed);
    let generated = random_schema(&mut rng, &params);
    let query = random_query(&mut rng, &generated, &params)?;
    let pre = preprocess(&query, &generated.schema).ok()?;
    let graph = DGraph::build(&pre).ok()?;
    // Keep the brute force cheap: the pools are split, so 2^|cand\cycl| ×
    // 2^|non-cand| ≤ 2^12.
    if graph.arcs().len() > 12 {
        return None;
    }
    Some(graph)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 120, ..ProptestConfig::default() })]

    /// GFP's result is itself valid and dominates every valid solution.
    #[test]
    fn gfp_is_the_unique_maximal_solution(seed in 0u64..100_000) {
        let Some(graph) = tiny_graph(seed) else { return Ok(()); };
        let (sol, _) = gfp(&graph);
        prop_assert!(
            is_valid_solution(&graph, &sol.strong, &sol.deleted),
            "GFP's own solution must be valid"
        );
        for (s, d) in all_solutions(&graph) {
            prop_assert!(
                s.is_subset(&sol.strong),
                "strong set {s:?} not dominated by GFP's {:?}",
                sol.strong
            );
            prop_assert!(
                d.is_subset(&sol.deleted),
                "deleted set {d:?} not dominated by GFP's {:?}",
                sol.deleted
            );
        }
    }
}

/// Deterministic seeds so failures reproduce without shrinking.
#[test]
fn fixed_seed_maximality_sweep() {
    let mut checked = 0;
    for seed in 0..400 {
        let Some(graph) = tiny_graph(seed) else {
            continue;
        };
        let (sol, _) = gfp(&graph);
        assert!(
            is_valid_solution(&graph, &sol.strong, &sol.deleted),
            "seed {seed}"
        );
        for (s, d) in all_solutions(&graph) {
            assert!(s.is_subset(&sol.strong), "seed {seed}");
            assert!(d.is_subset(&sol.deleted), "seed {seed}");
        }
        checked += 1;
    }
    assert!(checked > 100, "enough graphs were checked ({checked}/400)");
}

/// Ordering constraints hold on random optimized d-graphs for both
/// heuristics: live weak arcs are non-decreasing in position, strong arcs
/// strictly increasing, and cyclic groups share a position.
#[test]
fn ordering_respects_arc_constraints_on_random_graphs() {
    use toorjah_core::{gfp, order_sources, ArcMark, OptimizedDGraph, OrderingHeuristic};
    let mut checked = 0;
    for seed in 0..300 {
        let Some(graph) = tiny_graph(seed) else {
            continue;
        };
        let (sol, _) = gfp(&graph);
        let opt = OptimizedDGraph::new(graph, sol);
        for heuristic in [
            OrderingHeuristic::JoinCountDesc,
            OrderingHeuristic::SourceIdAsc,
        ] {
            let ord = order_sources(&opt, heuristic).expect("ordering succeeds");
            for arc in opt.graph().arc_ids() {
                if !opt.is_live(arc) {
                    continue;
                }
                let pf = ord.position(opt.graph().arc_from_source(arc)).unwrap();
                let pt = ord.position(opt.graph().arc_to_source(arc)).unwrap();
                assert!(pf <= pt, "seed {seed}: weak order violated");
                if opt.mark(arc) == ArcMark::Strong {
                    assert!(pf < pt, "seed {seed}: strong order violated");
                }
            }
            // Groups partition the relevant sources.
            let mut all: Vec<_> = ord.groups().iter().flatten().copied().collect();
            all.sort();
            let mut relevant = opt.relevant_sources();
            relevant.sort();
            assert_eq!(all, relevant, "seed {seed}");
        }
        checked += 1;
    }
    assert!(checked > 100, "enough graphs checked ({checked})");
}
