//! Queryability and answerability (§II of the paper).
//!
//! A relation is *queryable* (w.r.t. a query) when it can be accessed at
//! least once for at least one database instance, starting from the values
//! in the query. Since value flow is typed by abstract domains, queryability
//! reduces to a fixpoint over *obtainable domains*:
//!
//! * the domains of the query's constants are obtainable (after the §III
//!   preprocessing these are exactly the output domains of the artificial
//!   free relations);
//! * a relation is *accessible* once every input position's domain is
//!   obtainable; the domains of its output positions then become obtainable.
//!
//! This matches the d-graph characterization ("a relation is queryable iff
//! all its input nodes are reachable through d-paths that originate from
//! sources having only output attributes"), which the test-suite
//! cross-validates. A query is *answerable* iff every relation occurring in
//! it is queryable; the algorithm is the one referenced from
//! [Li & Chang, ICDE 2000].

use std::collections::HashSet;

use toorjah_catalog::{DomainId, RelationId, Schema};
use toorjah_query::ConjunctiveQuery;

/// Result of the obtainable-domain fixpoint over a schema.
#[derive(Clone, Debug)]
pub struct Queryability {
    obtainable: HashSet<DomainId>,
    queryable: Vec<bool>,
}

impl Queryability {
    /// Runs the fixpoint over `schema`, seeding the obtainable set with
    /// `seed_domains` (the domains of the query's constants; pass an empty
    /// iterator when constants have already been compiled into artificial
    /// free relations by preprocessing).
    pub fn compute(schema: &Schema, seed_domains: impl IntoIterator<Item = DomainId>) -> Self {
        let mut obtainable: HashSet<DomainId> = seed_domains.into_iter().collect();
        let mut queryable = vec![false; schema.relation_count()];
        loop {
            let mut changed = false;
            for (id, rel) in schema.iter() {
                if queryable[id.index()] {
                    continue;
                }
                let accessible = rel
                    .pattern()
                    .input_positions()
                    .all(|k| obtainable.contains(&rel.domain(k)));
                if accessible {
                    queryable[id.index()] = true;
                    changed = true;
                    for k in rel.pattern().output_positions() {
                        obtainable.insert(rel.domain(k));
                    }
                }
            }
            if !changed {
                return Queryability {
                    obtainable,
                    queryable,
                };
            }
        }
    }

    /// Whether a relation is queryable.
    pub fn is_queryable(&self, rel: RelationId) -> bool {
        self.queryable[rel.index()]
    }

    /// Whether values of a domain are obtainable at all.
    pub fn is_obtainable(&self, domain: DomainId) -> bool {
        self.obtainable.contains(&domain)
    }

    /// Ids of all queryable relations.
    pub fn queryable_relations(&self) -> impl Iterator<Item = RelationId> + '_ {
        self.queryable
            .iter()
            .enumerate()
            .filter(|(_, &q)| q)
            .map(|(i, _)| RelationId(i as u32))
    }

    /// Number of queryable relations.
    pub fn queryable_count(&self) -> usize {
        self.queryable.iter().filter(|&&q| q).count()
    }
}

/// `true` when every relation occurring in `query` is queryable, seeding the
/// fixpoint with the domains of the query's constants (§II: *"A query is
/// answerable if and only if no non-queryable relation occurs in it"*).
pub fn is_answerable(query: &ConjunctiveQuery, schema: &Schema) -> bool {
    let seeds = query.constants(schema).into_iter().map(|(_, d)| d);
    let q = Queryability::compute(schema, seeds);
    query.atoms().iter().all(|a| q.is_queryable(a.relation()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_query::parse_query;

    /// Example 2 of the paper: R = {r1^io(A,C), r2^io(B,C), r3^io(C,B)}.
    fn example2_schema() -> Schema {
        Schema::parse("r1^io(A, C) r2^io(B, C) r3^io(C, B)").unwrap()
    }

    #[test]
    fn example2_q1_all_queryable() {
        // q1(B) ← r1(a1, C), r2(B, C): constant a1 has domain A.
        let schema = example2_schema();
        let q1 = parse_query("q1(B) <- r1('a1', C), r2(B, C)", &schema).unwrap();
        assert!(is_answerable(&q1, &schema));
        let seeds = q1.constants(&schema).into_iter().map(|(_, d)| d);
        let qa = Queryability::compute(&schema, seeds);
        assert_eq!(qa.queryable_count(), 3);
    }

    #[test]
    fn example2_q2_r1_not_queryable() {
        // q2(X) ← r3(X, c1): constant c1 has domain C; r3 and r2 become
        // queryable, r1 does not (no way to obtain domain A values).
        let schema = example2_schema();
        let q2 = parse_query("q2(X) <- r3(X, 'c1')", &schema).unwrap();
        let seeds = q2.constants(&schema).into_iter().map(|(_, d)| d);
        let qa = Queryability::compute(&schema, seeds);
        let r1 = schema.relation_id("r1").unwrap();
        let r2 = schema.relation_id("r2").unwrap();
        let r3 = schema.relation_id("r3").unwrap();
        assert!(!qa.is_queryable(r1));
        assert!(qa.is_queryable(r2));
        assert!(qa.is_queryable(r3));
        // q2 itself is answerable: r3 is queryable.
        assert!(is_answerable(&q2, &schema));
    }

    #[test]
    fn query_on_non_queryable_relation_is_not_answerable() {
        let schema = example2_schema();
        // No constants at all: nothing is obtainable, r1 needs A.
        let q = parse_query("q(C) <- r1(X, C)", &schema).unwrap();
        assert!(!is_answerable(&q, &schema));
    }

    #[test]
    fn free_relations_bootstrap_the_fixpoint() {
        let schema = Schema::parse("free^oo(A, B) limited^io(A, C)").unwrap();
        let qa = Queryability::compute(&schema, []);
        assert_eq!(qa.queryable_count(), 2);
        assert!(qa.is_obtainable(schema.domains().lookup("A").unwrap()));
        assert!(qa.is_obtainable(schema.domains().lookup("C").unwrap()));
    }

    #[test]
    fn chain_of_dependencies_resolves() {
        // a feeds b feeds c.
        let schema = Schema::parse("a^o(X) b^io(X, Y) c^io(Y, Z)").unwrap();
        let qa = Queryability::compute(&schema, []);
        assert_eq!(qa.queryable_count(), 3);
    }

    #[test]
    fn self_feeding_relation_is_not_queryable_alone() {
        // r's input domain is produced only by r itself: never accessible.
        let schema = Schema::parse("r^io(X, X)").unwrap();
        let qa = Queryability::compute(&schema, []);
        assert_eq!(qa.queryable_count(), 0);
        // With a seed value of domain X it becomes accessible.
        let x = schema.domains().lookup("X").unwrap();
        let qa = Queryability::compute(&schema, [x]);
        assert_eq!(qa.queryable_count(), 1);
    }

    #[test]
    fn mutual_recursion_without_entry_point_stays_dead() {
        let schema = Schema::parse("p^io(A, B) q^io(B, A)").unwrap();
        let qa = Queryability::compute(&schema, []);
        assert_eq!(qa.queryable_count(), 0);
    }

    #[test]
    fn all_input_relation_needs_all_domains() {
        let schema = Schema::parse("sink^ii(A, B) a^o(A)").unwrap();
        let qa = Queryability::compute(&schema, []);
        assert!(!qa.is_queryable(schema.relation_id("sink").unwrap()));
        let b = schema.domains().lookup("B").unwrap();
        let qa = Queryability::compute(&schema, [b]);
        assert!(qa.is_queryable(schema.relation_id("sink").unwrap()));
    }

    #[test]
    fn nullary_relation_is_queryable() {
        let schema = Schema::parse("flag^()").unwrap();
        let qa = Queryability::compute(&schema, []);
        assert!(qa.is_queryable(schema.relation_id("flag").unwrap()));
    }

    #[test]
    fn queryable_relations_iterator() {
        let schema = Schema::parse("a^o(X) dead^io(Z, W)").unwrap();
        let qa = Queryability::compute(&schema, []);
        let ids: Vec<_> = qa.queryable_relations().collect();
        assert_eq!(ids, vec![schema.relation_id("a").unwrap()]);
    }
}
