//! Marked d-graphs and the optimized d-graph (§III).
//!
//! A *marked* d-graph labels every arc strong, weak or deleted. The
//! *optimized* d-graph is the marked d-graph for the maximal solution
//! computed by [`crate::gfp`]; visually, deleted arcs are removed, then
//! white nodes without arcs and sources without nodes disappear. It directly
//! yields **relevance**: a relation `r` is relevant for the query iff it is
//! nullary and occurs in the query, or it occurs in the optimized d-graph.

use std::collections::HashSet;

use toorjah_catalog::RelationId;

use crate::{ArcId, CoreError, DGraph, NodeId, Solution, SourceId};

/// The mark of one arc in a marked d-graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArcMark {
    /// A dominating join arc: all useful tuples of the target relation are
    /// extracted using only values coming from the origin.
    Strong,
    /// An ordinary dependency (any origin may provide values).
    Weak,
    /// Pruned: never needed to compute all obtainable answers.
    Deleted,
}

/// A d-graph together with a (maximal) solution: the optimized d-graph.
#[derive(Clone, Debug)]
pub struct OptimizedDGraph {
    graph: DGraph,
    solution: Solution,
}

impl OptimizedDGraph {
    /// Pairs a graph with a solution (usually the output of [`crate::gfp`]).
    pub fn new(graph: DGraph, solution: Solution) -> Self {
        OptimizedDGraph { graph, solution }
    }

    /// The underlying d-graph.
    pub fn graph(&self) -> &DGraph {
        &self.graph
    }

    /// The solution `(S, D)`.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// The mark of an arc.
    pub fn mark(&self, arc: ArcId) -> ArcMark {
        if self.solution.strong.contains(&arc) {
            ArcMark::Strong
        } else if self.solution.deleted.contains(&arc) {
            ArcMark::Deleted
        } else {
            ArcMark::Weak
        }
    }

    /// `true` for strong or weak (non-deleted) arcs.
    pub fn is_live(&self, arc: ArcId) -> bool {
        !self.solution.deleted.contains(&arc)
    }

    /// All non-deleted arcs.
    pub fn live_arcs(&self) -> impl Iterator<Item = ArcId> + '_ {
        self.graph.arc_ids().filter(|&a| self.is_live(a))
    }

    /// Live arcs entering a node.
    pub fn live_in_arcs(&self, node: NodeId) -> Vec<ArcId> {
        self.graph
            .in_arcs(node)
            .iter()
            .copied()
            .filter(|&a| self.is_live(a))
            .collect()
    }

    /// Number of strong arcs.
    pub fn strong_count(&self) -> usize {
        self.solution.strong.len()
    }

    /// Number of deleted arcs.
    pub fn deleted_count(&self) -> usize {
        self.solution.deleted.len()
    }

    /// Number of weak arcs.
    pub fn weak_count(&self) -> usize {
        self.graph.arcs().len() - self.strong_count() - self.deleted_count()
    }

    /// Whether a source survives in the optimized d-graph.
    ///
    /// Black sources always survive (only white nodes are removed). A white
    /// source survives when at least one of its nodes has a live incident
    /// arc. Nullary black sources have no nodes but still count as present:
    /// the paper's relevance condition (i) keeps nullary query relations.
    pub fn is_relevant_source(&self, s: SourceId) -> bool {
        let source = self.graph.source(s);
        if source.is_black() {
            return true;
        }
        // White: any live incident arc keeps the source.
        let live_out = self
            .graph
            .out_arcs_of_source(s)
            .iter()
            .any(|&a| self.is_live(a));
        if live_out {
            return true;
        }
        source
            .nodes
            .iter()
            .any(|&n| self.graph.in_arcs(n).iter().any(|&a| self.is_live(a)))
    }

    /// Sources of the optimized d-graph (black first, then surviving white).
    pub fn relevant_sources(&self) -> Vec<SourceId> {
        self.graph
            .source_ids()
            .filter(|&s| self.is_relevant_source(s))
            .collect()
    }

    /// Relations relevant for the query (§III): the relations of the
    /// relevant sources. Nullary query relations are included via their
    /// (nodeless) black sources.
    pub fn relevant_relations(&self) -> Vec<RelationId> {
        let mut out: Vec<RelationId> = Vec::new();
        for s in self.relevant_sources() {
            let rel = self.graph.source(s).relation;
            if !out.contains(&rel) {
                out.push(rel);
            }
        }
        out
    }

    /// The inductively *free-reachable* input nodes of the marked d-graph:
    ///
    /// * via a weak live arc `u → v` whose origin source has all input nodes
    ///   free-reachable, or
    /// * via the (non-empty) set of strong arcs into `v`, all of whose
    ///   origin sources have all input nodes free-reachable.
    pub fn free_reachable_inputs(&self) -> HashSet<NodeId> {
        let mut reachable: HashSet<NodeId> = HashSet::new();
        let source_ok = |reachable: &HashSet<NodeId>, s: SourceId| {
            self.graph.input_nodes(s).all(|n| reachable.contains(&n))
        };
        loop {
            let mut changed = false;
            for (idx, node) in self.graph.nodes().iter().enumerate() {
                let v = NodeId(idx as u32);
                if !node.mode.is_input() || reachable.contains(&v) {
                    continue;
                }
                let live = self.live_in_arcs(v);
                let strong: Vec<ArcId> = live
                    .iter()
                    .copied()
                    .filter(|&a| self.mark(a) == ArcMark::Strong)
                    .collect();
                let ok = if strong.is_empty() {
                    live.iter().any(|&a| {
                        self.mark(a) == ArcMark::Weak
                            && source_ok(&reachable, self.graph.arc_from_source(a))
                    })
                } else {
                    strong
                        .iter()
                        .all(|&a| source_ok(&reachable, self.graph.arc_from_source(a)))
                };
                if ok {
                    reachable.insert(v);
                    changed = true;
                }
            }
            if !changed {
                return reachable;
            }
        }
    }

    /// Validates the §III solution invariants; used by tests and property
    /// tests. Checks that:
    ///
    /// 1. `S` and `D` are disjoint;
    /// 2. each input node's live incoming arcs are homogeneous (all strong or
    ///    all weak);
    /// 3. every input node of every relevant source is free-reachable (the
    ///    marking preserves queryability).
    pub fn check_invariants(&self) -> Result<(), CoreError> {
        if !self.solution.strong.is_disjoint(&self.solution.deleted) {
            return Err(CoreError::Internal("S and D intersect".to_string()));
        }
        for (idx, node) in self.graph.nodes().iter().enumerate() {
            if !node.mode.is_input() {
                continue;
            }
            let live = self.live_in_arcs(NodeId(idx as u32));
            let strong = live
                .iter()
                .filter(|&&a| self.mark(a) == ArcMark::Strong)
                .count();
            if strong > 0 && strong != live.len() {
                return Err(CoreError::Internal(format!(
                    "input node {idx} mixes strong and weak incoming arcs"
                )));
            }
        }
        let reachable = self.free_reachable_inputs();
        for s in self.relevant_sources() {
            for n in self.graph.input_nodes(s) {
                if !reachable.contains(&n) {
                    return Err(CoreError::Internal(format!(
                        "input node {} of relevant source {} lost free-reachability",
                        n.0,
                        self.graph.source(s).label
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfp;
    use toorjah_catalog::Schema;
    use toorjah_query::{parse_query, preprocess};

    fn optimize(schema_text: &str, query_text: &str) -> OptimizedDGraph {
        let schema = Schema::parse(schema_text).unwrap();
        let q = parse_query(query_text, &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        let graph = DGraph::build(&pre).unwrap();
        let (sol, _) = gfp(&graph);
        OptimizedDGraph::new(graph, sol)
    }

    fn labels(opt: &OptimizedDGraph, sources: &[SourceId]) -> Vec<String> {
        let mut out: Vec<String> = sources
            .iter()
            .map(|&s| opt.graph().source(s).label.clone())
            .collect();
        out.sort();
        out
    }

    /// Example 5: the optimized d-graph drops r3 (Fig. 4).
    #[test]
    fn example5_relevance() {
        let opt = optimize(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let relevant = opt.relevant_sources();
        assert_eq!(labels(&opt, &relevant), ["r1(1)", "r2(1)", "r_a(1)"]);
        assert_eq!(opt.strong_count(), 2);
        assert_eq!(opt.deleted_count(), 2);
        assert_eq!(opt.weak_count(), 0);
        opt.check_invariants().unwrap();
    }

    /// Example 3's narrative: r3 is irrelevant for the query.
    #[test]
    fn example3_r3_is_irrelevant() {
        let opt = optimize(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let relations = opt.relevant_relations();
        let names: Vec<&str> = relations
            .iter()
            .map(|&r| opt.graph().schema().relation(r).name())
            .collect();
        assert!(!names.contains(&"r3"));
        assert!(names.contains(&"r1") && names.contains(&"r2") && names.contains(&"r_a"));
    }

    #[test]
    fn white_provider_stays_relevant_when_needed() {
        // The only provider of r's input is white w: it must stay.
        let opt = optimize("r^io(A, B) w^oo(A, X)", "q(Y) <- r(X2, Y)");
        let relevant = opt.relevant_sources();
        assert_eq!(labels(&opt, &relevant), ["r(1)", "w"]);
        opt.check_invariants().unwrap();
    }

    #[test]
    fn free_reachability_with_strong_arcs() {
        let opt = optimize(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let reach = opt.free_reachable_inputs();
        // Both black input nodes (r1.A, r2.B) are free-reachable via the
        // strong chain from r_a.
        let black_inputs: Vec<NodeId> = opt
            .graph()
            .black_sources()
            .flat_map(|s| opt.graph().input_nodes(s).collect::<Vec<_>>())
            .collect();
        assert_eq!(black_inputs.len(), 2);
        for n in black_inputs {
            assert!(reach.contains(&n));
        }
    }

    #[test]
    fn all_weak_marking_matches_queryability() {
        // With the trivial all-weak solution, free-reachability coincides
        // with §II queryability.
        let schema = Schema::parse("r1^io(A, C) r2^io(B, C) r3^io(C, B)").unwrap();
        let q = parse_query("q2(X) <- r3(X, 'c1')", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        let graph = DGraph::build(&pre).unwrap();
        let opt = OptimizedDGraph::new(graph, Solution::all_weak());
        let reach = opt.free_reachable_inputs();
        // r1 is not queryable w.r.t. q2, and indeed it is not even in the
        // graph (pruned as non-queryable); all remaining inputs are
        // reachable.
        for s in opt.graph().source_ids() {
            for n in opt.graph().input_nodes(s) {
                assert!(
                    reach.contains(&n),
                    "input of {}",
                    opt.graph().source(s).label
                );
            }
        }
        assert!(opt.graph().sources().iter().all(|s| opt
            .graph()
            .schema()
            .relation(s.relation)
            .name()
            != "r1"));
    }

    #[test]
    fn mark_accessors_are_consistent() {
        let opt = optimize(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let mut strong = 0;
        let mut weak = 0;
        let mut deleted = 0;
        for a in opt.graph().arc_ids() {
            match opt.mark(a) {
                ArcMark::Strong => strong += 1,
                ArcMark::Weak => weak += 1,
                ArcMark::Deleted => deleted += 1,
            }
            assert_eq!(opt.is_live(a), opt.mark(a) != ArcMark::Deleted);
        }
        assert_eq!(strong, opt.strong_count());
        assert_eq!(weak, opt.weak_count());
        assert_eq!(deleted, opt.deleted_count());
        assert_eq!(opt.live_arcs().count(), strong + weak);
    }

    #[test]
    fn invariants_catch_bad_solutions() {
        let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
        let q = parse_query("q(C) <- r1('a', B), r2(B, C)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        let graph = DGraph::build(&pre).unwrap();
        // Delete every arc: black inputs lose free-reachability.
        let all: std::collections::HashSet<ArcId> = graph.arc_ids().collect();
        let bad = Solution {
            strong: HashSet::new(),
            deleted: all,
        };
        let opt = OptimizedDGraph::new(graph, bad);
        assert!(opt.check_invariants().is_err());
    }
}
