//! ⊂-minimal query plan generation (§IV, Example 7).
//!
//! From the optimized d-graph and a source ordering, a Datalog program is
//! assembled:
//!
//! * the original (preprocessed) query is rewritten over **cache predicates**
//!   `r̂⁽ᵏ⁾`, one per relevant source (different occurrences of one relation
//!   get different caches);
//! * each cache is defined as the source relation joined with one **domain
//!   predicate** per input argument;
//! * a domain predicate is a *disjunction* of the origin caches when the
//!   node's incoming live arcs are weak (any origin may provide values), and
//!   a *conjunction* (join) when they are strong (only the join provides
//!   useful values);
//! * one fact per artificial constant relation (`ra('a') ←`).
//!
//! The program is executed by `toorjah-engine` under the fast-failing
//! strategy; evaluated under plain least-fixpoint semantics it computes the
//! same answer (the engine's tests verify this equivalence).

use std::collections::{HashMap, HashSet};

use toorjah_catalog::{RelationId, Schema, Value};
use toorjah_datalog::{DTerm, Literal, PredId, Program, Rule};
use toorjah_query::{minimize, preprocess, ConjunctiveQuery, PreprocessedQuery};

use crate::{
    analyze_minimality, gfp, order_sources, ArcMark, CoreError, DGraph, GfpStats, MinimalityReport,
    OptimizedDGraph, OrderingHeuristic, PlanRelevance, SourceId, SourceKind, SourceOrdering,
};

/// How a domain predicate combines its providers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DomainMode {
    /// Weak incoming arcs: any origin cache may provide values
    /// (one Datalog rule per provider).
    Union,
    /// Strong incoming arcs: only the join of the origin caches provides
    /// useful values (a single rule joining all providers).
    Join,
}

/// One provider of values for a domain predicate: a column of another cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Provider {
    /// Index into [`QueryPlan::caches`].
    pub cache: usize,
    /// 0-based column of that cache's relation.
    pub column: usize,
}

/// The domain predicate attached to one input argument of a cache.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DomainPredInfo {
    /// The unary predicate providing input values.
    pub pred: PredId,
    /// The input position (0-based, within the relation) it feeds.
    pub input_position: usize,
    /// Union (weak) or Join (strong).
    pub mode: DomainMode,
    /// The origin caches/columns.
    pub providers: Vec<Provider>,
}

/// One cache `r̂⁽ᵏ⁾` of the plan.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CacheInfo {
    /// The d-graph source this cache materializes.
    pub source: SourceId,
    /// The underlying relation.
    pub relation: RelationId,
    /// Display label (the source's, e.g. `pub1(1)`).
    pub label: String,
    /// The cache's IDB predicate.
    pub cache_pred: PredId,
    /// The EDB predicate standing for the source relation; evaluating a
    /// literal over it is an *access* (unless [`CacheInfo::is_constant_source`]).
    pub edb_pred: PredId,
    /// 1-based position in the source ordering.
    pub position: usize,
    /// For query-atom caches: the atom occurrence index.
    pub occurrence: Option<usize>,
    /// `true` for artificial constant relations (local facts; accessing them
    /// is free).
    pub is_constant_source: bool,
    /// Domain predicates, one per input position of the relation.
    pub input_domains: Vec<DomainPredInfo>,
    /// The cache's adornment in the classical magic-sets notation: one
    /// character per column, `b` where the access pattern demands a bound
    /// input, `f` where the source produces the value. Derived from the
    /// relation's access pattern at plan-build time; surfaced by `explain`.
    pub adornment: String,
}

/// A self-contained, executable ⊂-minimal query plan.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// The Datalog program (answer rule, cache rules, domain rules, facts).
    pub program: Program,
    /// The answer predicate (the rewritten query head).
    pub answer_pred: PredId,
    /// Caches sorted by (position, source id).
    pub caches: Vec<CacheInfo>,
    /// Number of ordering groups `k`.
    pub k: usize,
    /// The extended schema the plan runs against.
    pub schema: Schema,
    /// Facts seeding the artificial constant relations:
    /// (relation, EDB predicate, the constant).
    pub constant_facts: Vec<(RelationId, PredId, Value)>,
    /// Runtime-relevance metadata (terminal caches, semi-join partners),
    /// computed once from the plan's dependency arcs; the engine's
    /// evaluation kernel consults it when runtime pruning is enabled.
    pub relevance: PlanRelevance,
}

impl QueryPlan {
    /// The cache index materializing a source, if any.
    pub fn cache_for_source(&self, s: SourceId) -> Option<usize> {
        self.caches.iter().position(|c| c.source == s)
    }

    /// The cache index for a query-atom occurrence, if any.
    pub fn cache_for_occurrence(&self, occurrence: usize) -> Option<usize> {
        self.caches
            .iter()
            .position(|c| c.occurrence == Some(occurrence))
    }

    /// Cache indexes at an ordering position (1-based).
    pub fn caches_at_position(&self, position: usize) -> Vec<usize> {
        (0..self.caches.len())
            .filter(|&i| self.caches[i].position == position)
            .collect()
    }

    /// Relations accessed by the plan (excluding artificial constant
    /// relations) — the *relevant* relations of §III.
    pub fn accessed_relations(&self) -> Vec<RelationId> {
        let mut out = Vec::new();
        for c in &self.caches {
            if !c.is_constant_source && !out.contains(&c.relation) {
                out.push(c.relation);
            }
        }
        out
    }
}

/// Everything produced while planning one query: all intermediate artifacts
/// are exposed for inspection, figures and benchmarks.
#[derive(Clone, Debug)]
pub struct Planned {
    /// The query as given.
    pub original: ConjunctiveQuery,
    /// Its minimal equivalent (equal to `original` when already minimal or
    /// when minimization is disabled).
    pub minimized: ConjunctiveQuery,
    /// The constant-elimination result.
    pub pre: PreprocessedQuery,
    /// The optimized d-graph.
    pub optimized: OptimizedDGraph,
    /// GFP run counters.
    pub gfp_stats: GfpStats,
    /// The source ordering used by the plan.
    pub ordering: SourceOrdering,
    /// The ∀-minimality analysis.
    pub minimality: MinimalityReport,
    /// The executable plan.
    pub plan: QueryPlan,
}

/// Planner configuration.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    /// Minimize the CQ before planning (§IV assumes a minimal CQ). Default
    /// `true`.
    pub minimize: bool,
    /// Tie-breaking heuristic for the source ordering.
    pub heuristic: OrderingHeuristic,
    /// Enable the strong-arc machinery (default `true`). Disabling it is
    /// the ablation of [`crate::gfp_relevance_only`]: only dead-end pruning
    /// remains, isolating the contribution of join domination.
    pub strong_arcs: bool,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            minimize: true,
            heuristic: OrderingHeuristic::default(),
            strong_arcs: true,
        }
    }
}

impl Planner {
    /// Plans `query` over `schema`, producing all intermediate artifacts.
    pub fn plan(&self, query: &ConjunctiveQuery, schema: &Schema) -> Result<Planned, CoreError> {
        let minimized = if self.minimize {
            minimize(query)
        } else {
            query.clone()
        };
        let pre = preprocess(&minimized, schema)?;
        let graph = DGraph::build(&pre)?;
        let (solution, gfp_stats) = if self.strong_arcs {
            gfp(&graph)
        } else {
            crate::gfp_relevance_only(&graph)
        };
        let optimized = OptimizedDGraph::new(graph, solution);
        debug_assert!(optimized.check_invariants().is_ok());
        let ordering = order_sources(&optimized, self.heuristic)?;
        let minimality = analyze_minimality(&optimized);
        let plan = build_plan(&pre, &optimized, &ordering)?;
        Ok(Planned {
            original: query.clone(),
            minimized,
            pre,
            optimized,
            gfp_stats,
            ordering,
            minimality,
            plan,
        })
    }
}

/// Plans a query with the default planner.
pub fn plan_query(query: &ConjunctiveQuery, schema: &Schema) -> Result<Planned, CoreError> {
    Planner::default().plan(query, schema)
}

/// Assembles the Datalog program from the optimized d-graph and ordering.
fn build_plan(
    pre: &PreprocessedQuery,
    opt: &OptimizedDGraph,
    ordering: &SourceOrdering,
) -> Result<QueryPlan, CoreError> {
    let graph = opt.graph();
    let schema = graph.schema();
    let mut program = Program::new();

    // Caches sorted by (position, source id).
    let mut relevant: Vec<SourceId> = opt.relevant_sources();
    relevant.sort_by_key(|&s| (ordering.position(s).unwrap_or(usize::MAX), s.0));

    let mut caches: Vec<CacheInfo> = Vec::with_capacity(relevant.len());
    let mut cache_of_source: HashMap<SourceId, usize> = HashMap::new();
    for &s in &relevant {
        let source = graph.source(s);
        let rel = schema.relation(source.relation);
        let cache_name = match source.kind {
            // "pub1(2)" → "pub1_hat2": the paper's r̂ with occurrence number.
            SourceKind::QueryAtom { .. } => {
                let occ = source
                    .label
                    .rsplit('(')
                    .next()
                    .and_then(|t| t.strip_suffix(')'))
                    .unwrap_or("1");
                format!("{}_hat{}", rel.name(), occ)
            }
            SourceKind::Relation => format!("{}_hat", rel.name()),
        };
        let cache_pred = program.predicate(&cache_name, rel.arity())?;
        let edb_pred = program.predicate(rel.name(), rel.arity())?;
        let position = ordering.position(s).ok_or_else(|| {
            CoreError::Internal(format!("relevant source {} has no position", source.label))
        })?;
        let occurrence = match source.kind {
            SourceKind::QueryAtom { occurrence } => Some(occurrence),
            SourceKind::Relation => None,
        };
        let is_constant_source = pre.constant_relation(source.relation).is_some();
        let mask: Vec<bool> = rel.pattern().modes().iter().map(|m| m.is_input()).collect();
        cache_of_source.insert(s, caches.len());
        caches.push(CacheInfo {
            source: s,
            relation: source.relation,
            label: source.label.clone(),
            cache_pred,
            edb_pred,
            position,
            occurrence,
            is_constant_source,
            input_domains: Vec::new(),
            adornment: toorjah_datalog::adornment_string(&mask),
        });
    }

    // Answer rule: q(head) ← ĉ_occ(atom terms) for every atom occurrence.
    let answer_pred = program.predicate(pre.query.head_name(), pre.query.head().len())?;
    {
        let var_names: Vec<String> = pre.query.var_names().to_vec();
        let head_terms: Vec<DTerm> = pre.query.head().iter().map(|v| DTerm::Var(v.0)).collect();
        let mut body = Vec::with_capacity(pre.query.atoms().len());
        for (occ, atom) in pre.query.atoms().iter().enumerate() {
            let cache_idx = caches
                .iter()
                .position(|c| c.occurrence == Some(occ))
                .ok_or_else(|| CoreError::Internal(format!("query atom {occ} has no cache")))?;
            let terms: Vec<DTerm> = atom
                .terms()
                .iter()
                .map(|t| {
                    t.as_var().map(|v| DTerm::Var(v.0)).ok_or_else(|| {
                        CoreError::Internal("constant survived preprocessing".to_string())
                    })
                })
                .collect::<Result<_, _>>()?;
            body.push(Literal::new(caches[cache_idx].cache_pred, terms));
        }
        program.add_rule(Rule::new(
            Literal::new(answer_pred, head_terms),
            body,
            var_names,
        ))?;
    }

    // Domain predicates, cache rules and provider rules.
    let mut used_domain_names: HashSet<String> = HashSet::new();
    for cache in caches.iter_mut() {
        let s = cache.source;
        let source = graph.source(s).clone();
        let rel = schema.relation(source.relation);

        // Domain predicate per input node.
        let mut input_domains = Vec::new();
        for node_id in graph.input_nodes(s) {
            let node = graph.node(node_id);
            let live = opt.live_in_arcs(node_id);
            if live.is_empty() {
                return Err(CoreError::Internal(format!(
                    "input position {} of relevant source {} has no live providers",
                    node.position, source.label
                )));
            }
            let strong = live
                .iter()
                .filter(|&&a| opt.mark(a) == ArcMark::Strong)
                .count();
            if strong > 0 && strong != live.len() {
                return Err(CoreError::Internal(format!(
                    "input position {} of source {} mixes strong and weak arcs",
                    node.position, source.label
                )));
            }
            let mode = if strong > 0 {
                DomainMode::Join
            } else {
                DomainMode::Union
            };
            let mut providers = Vec::with_capacity(live.len());
            for &arc in &live {
                let from = graph.arc(arc).from;
                let from_node = graph.node(from);
                let origin = cache_of_source
                    .get(&from_node.source)
                    .copied()
                    .ok_or_else(|| {
                        CoreError::Internal(format!(
                            "provider source {} of {} is not cached",
                            graph.source(from_node.source).label,
                            source.label
                        ))
                    })?;
                providers.push(Provider {
                    cache: origin,
                    column: from_node.position,
                });
            }
            providers.sort_by_key(|p| (p.cache, p.column));
            providers.dedup();
            let base = format!("s_{}", schema.domains().name(node.domain));
            let name = dedup_name(&base, &mut used_domain_names);
            let pred = program.predicate(&name, 1)?;
            input_domains.push(DomainPredInfo {
                pred,
                input_position: node.position,
                mode,
                providers,
            });
        }

        // Cache rule: ĉ(T0..Tn) ← r(T0..Tn), s_i(T_i)...
        {
            let var_names = cache_rule_var_names(&source, rel.arity(), graph, pre);
            let terms: Vec<DTerm> = (0..rel.arity() as u32).map(DTerm::Var).collect();
            let mut body = vec![Literal::new(cache.edb_pred, terms.clone())];
            for dp in &input_domains {
                body.push(Literal::new(
                    dp.pred,
                    vec![DTerm::Var(dp.input_position as u32)],
                ));
            }
            program.add_rule(Rule::new(
                Literal::new(cache.cache_pred, terms),
                body,
                var_names,
            ))?;
        }

        cache.input_domains = input_domains;
    }

    // Provider rules for the domain predicates (emitted after all caches are
    // named so rules can reference any cache).
    let domain_infos: Vec<DomainPredInfo> = caches
        .iter()
        .flat_map(|c| c.input_domains.clone())
        .collect();
    {
        for dp in domain_infos {
            match dp.mode {
                DomainMode::Union => {
                    for p in &dp.providers {
                        let rule = provider_rule(&program, dp.pred, &caches, &[*p], schema)?;
                        program.add_rule(rule)?;
                    }
                }
                DomainMode::Join => {
                    let rule = provider_rule(&program, dp.pred, &caches, &dp.providers, schema)?;
                    program.add_rule(rule)?;
                }
            }
        }
    }

    // Facts for artificial constant relations.
    let mut constant_facts = Vec::new();
    for cr in &pre.constant_relations {
        // Only relevant constant relations appear among the caches (they
        // always do: constant atoms are black sources).
        if let Some(cache_idx) = caches.iter().position(|c| c.relation == cr.relation) {
            let edb = caches[cache_idx].edb_pred;
            program.add_rule(Rule::new(
                Literal::new(edb, vec![DTerm::Const(cr.value)]),
                vec![],
                vec![],
            ))?;
            constant_facts.push((cr.relation, edb, cr.value));
        }
    }

    let k = ordering.k();
    let relevance = PlanRelevance::analyze(&program, answer_pred, &caches);
    Ok(QueryPlan {
        program,
        answer_pred,
        caches,
        k,
        schema: schema.clone(),
        constant_facts,
        relevance,
    })
}

/// A domain-predicate rule `s(X) ← ĉ1(…, X, …), …, ĉm(…, X, …)` projecting
/// the providers' columns onto the shared variable `X`.
fn provider_rule(
    program: &Program,
    pred: PredId,
    caches: &[CacheInfo],
    providers: &[Provider],
    schema: &Schema,
) -> Result<Rule, CoreError> {
    // Variable 0 is the projected value; the rest are per-literal fillers.
    let mut var_names = vec!["X".to_string()];
    let mut body = Vec::with_capacity(providers.len());
    for p in providers {
        let cache = &caches[p.cache];
        let arity = schema.relation(cache.relation).arity();
        let mut terms = Vec::with_capacity(arity);
        for col in 0..arity {
            if col == p.column {
                terms.push(DTerm::Var(0));
            } else {
                let v = var_names.len() as u32;
                var_names.push(format!("F{v}"));
                terms.push(DTerm::Var(v));
            }
        }
        body.push(Literal::new(cache.cache_pred, terms));
    }
    let _ = program; // names already interned; kept for symmetry of the API
    Ok(Rule::new(
        Literal::new(pred, vec![DTerm::Var(0)]),
        body,
        var_names,
    ))
}

/// Variable names for a cache rule: the atom's variable names for black
/// sources (disambiguated when a variable repeats), domain names for white
/// sources (disambiguated likewise).
fn cache_rule_var_names(
    source: &crate::Source,
    arity: usize,
    graph: &DGraph,
    pre: &PreprocessedQuery,
) -> Vec<String> {
    let mut used: HashSet<String> = HashSet::new();
    let mut names = Vec::with_capacity(arity);
    for k in 0..arity {
        let base = match source.kind {
            SourceKind::QueryAtom { occurrence } => {
                let atom = &pre.query.atoms()[occurrence];
                atom.term(k)
                    .as_var()
                    .map(|v| pre.query.var_name(v).to_string())
                    .unwrap_or_else(|| format!("X{}", k + 1))
            }
            SourceKind::Relation => {
                let rel = graph.schema().relation(source.relation);
                let mut n = graph.schema().domains().name(rel.domain(k)).to_string();
                // Keep generated names parseable as variables.
                if !n.starts_with(|c: char| c.is_uppercase()) {
                    n = format!("X_{n}");
                }
                n
            }
        };
        names.push(dedup_name(&base, &mut used));
    }
    names
}

fn dedup_name(base: &str, used: &mut HashSet<String>) -> String {
    if used.insert(base.to_string()) {
        return base.to_string();
    }
    for i in 2.. {
        let candidate = format!("{base}_{i}");
        if used.insert(candidate.clone()) {
            return candidate;
        }
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_query::parse_query;

    fn plan(schema_text: &str, query_text: &str) -> Planned {
        let schema = Schema::parse(schema_text).unwrap();
        let q = parse_query(query_text, &schema).unwrap();
        plan_query(&q, &schema).unwrap()
    }

    /// Example 7 end-to-end: program shape for q(C) ← r1(a, B), r2(B, C).
    #[test]
    fn example7_program() {
        let planned = plan(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let plan = &planned.plan;
        // Caches: r_a(1), r1(1), r2(1) — r3 is irrelevant.
        assert_eq!(plan.caches.len(), 3);
        let labels: Vec<&str> = plan.caches.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["r_a(1)", "r1(1)", "r2(1)"]);
        // Ordering r_a ≺ r1 ≺ r2 (positions 1, 2, 3).
        assert_eq!(plan.caches[0].position, 1);
        assert_eq!(plan.caches[1].position, 2);
        assert_eq!(plan.caches[2].position, 3);
        assert_eq!(plan.k, 3);
        // Accessed relations exclude r3 and the constant relation.
        let accessed: Vec<&str> = plan
            .accessed_relations()
            .iter()
            .map(|&r| plan.schema.relation(r).name())
            .collect();
        assert_eq!(accessed, ["r1", "r2"]);
        // The program contains the constant fact.
        let text = plan.program.to_string();
        assert!(text.contains("r_a('a') ←"), "program:\n{text}");
        // Both domain predicates are strong joins of a single provider.
        for cache in &plan.caches[1..] {
            assert_eq!(cache.input_domains.len(), 1);
            assert_eq!(cache.input_domains[0].mode, DomainMode::Join);
            assert_eq!(cache.input_domains[0].providers.len(), 1);
        }
        // ∀-minimal per Example 7's unique ordering.
        assert!(planned.minimality.forall_minimal);
    }

    #[test]
    fn example7_program_text_matches_paper_structure() {
        let planned = plan(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let text = planned.plan.program.to_string();
        // q(C) ← r1_hat1(K_a, B), r2_hat1(B, C), r_a_hat1(K_a)
        assert!(text.contains("q(C) ←"), "{text}");
        // Cache rules reference the source relation plus a domain predicate.
        assert!(
            text.contains("r1_hat1(K_a, B) ← r1(K_a, B), s_A(X)")
                || text.contains("r1_hat1(K_a, B) ← r1(K_a, B), s_A(K_a)"),
            "{text}"
        );
        assert!(text.contains("r2_hat1(B, C) ← r2(B, C), s_B(B)"), "{text}");
        // Domain predicates are defined from the providers.
        assert!(text.contains("s_A(X) ← r_a_hat1(X)"), "{text}");
        assert!(text.contains("s_B(X) ← r1_hat1(F1, X)"), "{text}");
    }

    #[test]
    fn weak_arcs_make_union_domains() {
        // r's input A can come from two free providers: union.
        let planned = plan("r^io(A, B) w1^oo(A, X) w2^oo(A, Y)", "q(Z) <- r(V, Z)");
        let plan = &planned.plan;
        let r_cache = plan.caches.iter().find(|c| c.label == "r(1)").unwrap();
        assert_eq!(r_cache.input_domains[0].mode, DomainMode::Union);
        assert_eq!(r_cache.input_domains[0].providers.len(), 2);
        // Two provider rules for the same domain predicate.
        let dp = r_cache.input_domains[0].pred;
        assert_eq!(plan.program.rules_for(dp).count(), 2);
    }

    #[test]
    fn strong_join_of_two_providers_is_one_rule() {
        // Both occurrences of pub1 feed rev_like's Person input through the
        // join variable R: a conjunction. P and P2 are head variables, so
        // minimization cannot fold the two occurrences.
        let planned = plan(
            "pub1^oo(Paper, Person) rev_like^io(Person, Eval)",
            "q(E, P, P2) <- pub1(P, R), pub1(P2, R), rev_like(R, E)",
        );
        let plan = &planned.plan;
        let rev = plan
            .caches
            .iter()
            .find(|c| c.label == "rev_like(1)")
            .unwrap();
        assert_eq!(rev.input_domains[0].mode, DomainMode::Join);
        assert_eq!(rev.input_domains[0].providers.len(), 2);
        let dp = rev.input_domains[0].pred;
        let rules: Vec<_> = plan.program.rules_for(dp).collect();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].body.len(), 2);
    }

    #[test]
    fn nullary_relation_in_query_gets_cache() {
        let planned = plan("flag^() r^oo(A, B)", "q(X) <- r(X, Y), flag()");
        let plan = &planned.plan;
        let flag = plan.caches.iter().find(|c| c.label == "flag(1)").unwrap();
        assert!(flag.input_domains.is_empty());
        let text = plan.program.to_string();
        assert!(text.contains("flag_hat1() ← flag()"), "{text}");
        // Relevance condition (i): nullary relation occurring in q.
        assert!(plan
            .accessed_relations()
            .iter()
            .any(|&r| plan.schema.relation(r).name() == "flag"));
    }

    #[test]
    fn multiple_occurrences_get_distinct_caches() {
        // Minimization is disabled so the redundant occurrence survives and
        // gets its own cache, as the paper's naming scheme requires.
        let schema = Schema::parse("pub1^io(Paper, Person) conf^ooo(Paper, C, Y)").unwrap();
        let q = parse_query("q(R) <- pub1(P, R), pub1(P2, R), conf(P, C, Y)", &schema).unwrap();
        let planner = Planner {
            minimize: false,
            ..Planner::default()
        };
        let planned = planner.plan(&q, &schema).unwrap();
        let plan = &planned.plan;
        let pub1_caches: Vec<&CacheInfo> = plan
            .caches
            .iter()
            .filter(|c| c.label.starts_with("pub1"))
            .collect();
        assert_eq!(pub1_caches.len(), 2);
        assert_ne!(pub1_caches[0].cache_pred, pub1_caches[1].cache_pred);
        // Both map to the same EDB predicate (same relation → shared
        // meta-cache in the engine).
        assert_eq!(pub1_caches[0].edb_pred, pub1_caches[1].edb_pred);
    }

    #[test]
    fn not_answerable_query_fails_to_plan() {
        let schema = Schema::parse("r1^io(A, C) r2^io(B, C)").unwrap();
        let q = parse_query("q(C) <- r1(X, C)", &schema).unwrap();
        assert!(matches!(
            plan_query(&q, &schema),
            Err(CoreError::NotAnswerable { .. })
        ));
    }

    #[test]
    fn minimization_shrinks_redundant_queries() {
        let planned = plan("r^oo(A, B)", "q(X) <- r(X, Y), r(X, Y2)");
        assert_eq!(planned.original.atoms().len(), 2);
        assert_eq!(planned.minimized.atoms().len(), 1);
        assert_eq!(planned.plan.caches.len(), 1);
    }

    #[test]
    fn planner_without_minimization_keeps_atoms() {
        let schema = Schema::parse("r^oo(A, B)").unwrap();
        let q = parse_query("q(X) <- r(X, Y), r(X, Y2)", &schema).unwrap();
        let planner = Planner {
            minimize: false,
            ..Planner::default()
        };
        let planned = planner.plan(&q, &schema).unwrap();
        assert_eq!(planned.minimized.atoms().len(), 2);
        assert_eq!(planned.plan.caches.len(), 2);
    }

    #[test]
    fn plan_lookups() {
        let planned = plan(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let plan = &planned.plan;
        for (i, c) in plan.caches.iter().enumerate() {
            assert_eq!(plan.cache_for_source(c.source), Some(i));
            if let Some(occ) = c.occurrence {
                assert_eq!(plan.cache_for_occurrence(occ), Some(i));
            }
            assert!(plan.caches_at_position(c.position).contains(&i));
        }
        assert!(plan.cache_for_occurrence(99).is_none());
    }

    #[test]
    fn program_is_range_restricted_and_well_formed() {
        let planned = plan(
            "pub1^io(Paper, Person) conf^ooo(Paper, C, Y) rev^ooi(Person, C, Y) sub^oi(Paper, Person)",
            "q1(R) <- pub1(P, R), conf(P, C, Y), rev(R, C, Y)",
        );
        // add_rule validated everything; sanity-check rule count: 1 answer
        // rule + one cache rule per cache + provider rules.
        let plan = &planned.plan;
        assert!(plan.program.rules().len() > plan.caches.len());
    }
}
