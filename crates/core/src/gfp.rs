//! The GFP arc-marking algorithm (Fig. 3 of the paper).
//!
//! Starting from the largest plausible sets — `S = cand(G) \ cycl(G)` of
//! strong arcs and `D = arcs(G) \ cand(G)` of deleted arcs — two monotone
//! "unmarking" operators shrink the sets until the greatest fixpoint:
//!
//! * `unmarkStr` removes an arc `u → v` from `S` when the target source
//!   still has an *unmarked* (weak) outgoing arc: then `v`'s source is needed
//!   to provide arbitrary values to other relations, so the join with `u`
//!   cannot restrict the tuples extracted from it.
//! * `unmarkDel` removes an arc `u → v` from `D` when it is still needed:
//!   for a black target, when no strong arc into the same node dominates it;
//!   for a white target, when the target source still has a live outgoing
//!   arc (i.e. it feeds something downstream).
//!
//! The result is the unique maximal solution `(S, D)`; marking `S` strong,
//! `D` deleted, and everything else weak yields the optimized d-graph
//! ([`crate::OptimizedDGraph`]). The algorithm is polynomial by monotonicity.

use std::collections::HashSet;

use crate::{candidate_strong_arcs, cyclic_candidate_arcs, ArcId, DGraph};

/// A solution `(S, D)` for a d-graph: disjoint sets of strong and deleted
/// arcs satisfying the §III conditions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Solution {
    /// Strong arcs `S`.
    pub strong: HashSet<ArcId>,
    /// Deleted arcs `D`.
    pub deleted: HashSet<ArcId>,
}

impl Solution {
    /// The trivial solution marking every arc weak (used to treat an
    /// unoptimized d-graph uniformly as a marked one).
    pub fn all_weak() -> Self {
        Solution {
            strong: HashSet::new(),
            deleted: HashSet::new(),
        }
    }
}

/// Counters describing one GFP run.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct GfpStats {
    /// Fixpoint iterations executed (at least one).
    pub iterations: usize,
    /// `|cand(G)|`.
    pub candidates: usize,
    /// `|cycl(G)|`.
    pub cyclic_candidates: usize,
    /// Size of the initial strong set `cand \ cycl`.
    pub initial_strong: usize,
    /// Size of the initial deleted set `arcs \ cand`.
    pub initial_deleted: usize,
}

/// Runs `GFP(G)` (Fig. 3), returning the maximal solution and run counters.
pub fn gfp(graph: &DGraph) -> (Solution, GfpStats) {
    let cand = candidate_strong_arcs(graph);
    gfp_with_candidates(graph, cand)
}

/// Ablation: the optimization with the **strong-arc machinery disabled** —
/// no arc is ever marked strong, so deletions happen solely through the
/// dead-white-source cascade (arcs on no d-path reaching a black node).
/// The delta between this solution and [`gfp`]'s isolates the contribution
/// of the paper's join-domination reasoning: without it, e.g., Example 5's
/// `r3` stays relevant and keeps being probed, exactly the waste §III's
/// strong arcs eliminate.
pub fn gfp_relevance_only(graph: &DGraph) -> (Solution, GfpStats) {
    gfp_with_candidates(graph, HashSet::new())
}

/// The Fig. 3 fixpoint parameterized by the candidate strong arc set.
fn gfp_with_candidates(graph: &DGraph, cand: HashSet<ArcId>) -> (Solution, GfpStats) {
    let cycl = cyclic_candidate_arcs(graph, &cand);

    let mut strong: HashSet<ArcId> = cand.difference(&cycl).copied().collect();
    let mut deleted: HashSet<ArcId> = graph.arc_ids().filter(|a| !cand.contains(a)).collect();

    let mut stats = GfpStats {
        iterations: 0,
        candidates: cand.len(),
        cyclic_candidates: cycl.len(),
        initial_strong: strong.len(),
        initial_deleted: deleted.len(),
    };

    loop {
        stats.iterations += 1;
        let strong0 = strong.clone();
        let deleted0 = deleted.clone();
        strong = unmark_str(&strong0, &deleted0, graph);
        deleted = unmark_del(&strong0, &deleted0, graph);
        if strong == strong0 && deleted == deleted0 {
            break;
        }
    }

    debug_assert!(strong.is_disjoint(&deleted), "S and D must be disjoint");
    (Solution { strong, deleted }, stats)
}

/// `unmarkStr(S, D, G)`: keep `u → v` strong only if every outgoing arc of
/// `v`'s source is already strong or deleted.
fn unmark_str(strong: &HashSet<ArcId>, deleted: &HashSet<ArcId>, graph: &DGraph) -> HashSet<ArcId> {
    let mut out = strong.clone();
    for &arc in strong {
        let v = graph.arc(arc).to;
        let escapes = graph
            .out_arcs_of_node(v)
            .iter()
            .any(|gamma| !strong.contains(gamma) && !deleted.contains(gamma));
        if escapes {
            out.remove(&arc);
        }
    }
    out
}

/// `unmarkDel(S, D, G)`: keep `u → v` deleted only if it is dominated (black
/// target with a strong arc into the same node) or dead (white target whose
/// source has no live outgoing arc).
fn unmark_del(strong: &HashSet<ArcId>, deleted: &HashSet<ArcId>, graph: &DGraph) -> HashSet<ArcId> {
    let mut out = deleted.clone();
    for &arc in deleted {
        let v = graph.arc(arc).to;
        if graph.node(v).is_black() {
            let strong_exists = strong.iter().any(|&s| graph.arc(s).to == v);
            if !strong_exists {
                out.remove(&arc);
            }
        } else {
            let live_out = graph
                .out_arcs_of_node(v)
                .iter()
                .any(|gamma| !deleted.contains(gamma));
            if live_out {
                out.remove(&arc);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_catalog::Schema;
    use toorjah_query::{parse_query, preprocess};

    fn build(schema_text: &str, query_text: &str) -> DGraph {
        let schema = Schema::parse(schema_text).unwrap();
        let q = parse_query(query_text, &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        DGraph::build(&pre).unwrap()
    }

    fn arc_by_sources(graph: &DGraph, from: &str, to: &str) -> ArcId {
        graph
            .arc_ids()
            .find(|&a| {
                graph.source(graph.arc_from_source(a)).label == from
                    && graph.source(graph.arc_to_source(a)).label == to
            })
            .unwrap_or_else(|| panic!("no arc {from}→{to}"))
    }

    /// Example 5: e1, e2 strong; e3, e4 deleted; r3 pruned.
    #[test]
    fn example5_solution() {
        let g = build(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let (sol, stats) = gfp(&g);
        let e1 = arc_by_sources(&g, "r_a(1)", "r1(1)");
        let e2 = arc_by_sources(&g, "r1(1)", "r2(1)");
        let e3 = arc_by_sources(&g, "r2(1)", "r3");
        let e4 = arc_by_sources(&g, "r3", "r1(1)");
        assert!(sol.strong.contains(&e1));
        assert!(sol.strong.contains(&e2));
        assert!(sol.deleted.contains(&e3));
        assert!(sol.deleted.contains(&e4));
        assert_eq!(stats.candidates, 2);
        assert_eq!(stats.cyclic_candidates, 0);
        // Initial guess was already the fixpoint; one confirming pass.
        assert!(stats.iterations >= 1);
    }

    /// A strong-arc chain collapses when the head source must feed a white
    /// relation that is genuinely needed.
    #[test]
    fn strong_unmarked_when_target_feeds_elsewhere() {
        // r2 must provide arbitrary B values to r3, which is the only
        // provider of the head variable's relation r4 (via domain D).
        let g = build(
            "r1^oo(A, B) r2^io(B, C) r3^io(C, D) r4^io(D, E)",
            "q(E) <- r1(X, Y), r2(Y, Z), r4(W, E)",
        );
        let (sol, _) = gfp(&g);
        // e: r1(1)→r2(1) is a candidate (join on Y). r2's outgoing arc to r3
        // (white) must stay live because r3 feeds r4; therefore e cannot be
        // strong.
        let e = arc_by_sources(&g, "r1(1)", "r2(1)");
        assert!(!sol.strong.contains(&e));
        assert!(!sol.deleted.contains(&e));
        // The white chain stays live.
        let to_r3 = arc_by_sources(&g, "r2(1)", "r3");
        let to_r4 = arc_by_sources(&g, "r3", "r4(1)");
        assert!(!sol.deleted.contains(&to_r3));
        assert!(!sol.deleted.contains(&to_r4));
    }

    /// Cyclic candidate strong arcs stay weak: neither strong nor deleted.
    #[test]
    fn cyclic_candidates_stay_weak() {
        let g = build(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A) seed^o(A)",
            "q(A) <- r1(A, B), r2(B, C), r3(C, A), seed(A)",
        );
        let (sol, stats) = gfp(&g);
        assert_eq!(stats.cyclic_candidates, 3);
        for label in [("r1(1)", "r2(1)"), ("r2(1)", "r3(1)"), ("r3(1)", "r1(1)")] {
            let a = arc_by_sources(&g, label.0, label.1);
            assert!(!sol.strong.contains(&a), "{label:?} must not be strong");
            assert!(!sol.deleted.contains(&a), "{label:?} must not be deleted");
        }
        // seed→r1 is a non-cyclic candidate... but r1 has a cyclic outgoing
        // candidate arc (to r2) that is neither strong nor deleted, so the
        // strong mark cannot survive unmarkStr.
        let seed_arc = arc_by_sources(&g, "seed(1)", "r1(1)");
        assert!(!sol.strong.contains(&seed_arc));
        assert!(!sol.deleted.contains(&seed_arc));
    }

    /// Dead-end white chains are fully deleted by the unmarkDel cascade.
    #[test]
    fn dead_white_chain_cascades() {
        // w1 feeds w2 feeds nothing relevant: all arcs into/out of them die.
        let g = build(
            "r^io(A, B) seed^o(A) w1^io(B, C) w2^io(C, C2)",
            "q(Y) <- r(X, Y), seed(X)",
        );
        let (sol, _) = gfp(&g);
        for (from, to) in [("r(1)", "w1"), ("w1", "w2")] {
            let a = arc_by_sources(&g, from, to);
            assert!(sol.deleted.contains(&a), "{from}→{to} should be deleted");
        }
    }

    /// A white cycle that reaches a black node stays alive.
    #[test]
    fn live_white_cycle_survives() {
        // w1 ↔ w2 cycle; w1 also feeds the query relation r's input via
        // bridge.
        let g = build(
            "r^io(C, D) seed^o(A) w1^io(A, B) w2^io(B, A) bridge^io(B, C)",
            "q(Y) <- r(X, Y)",
        );
        // seed(A) → w1(A^i); w1(B^o) → w2(B^i) and → bridge(B^i);
        // bridge(C^o) → r(C^i). All should stay live (weak).
        let (sol, _) = gfp(&g);
        for (from, to) in [
            ("seed", "w1"),
            ("w1", "w2"),
            ("w1", "bridge"),
            ("bridge", "r(1)"),
        ] {
            let a = arc_by_sources(&g, from, to);
            assert!(!sol.deleted.contains(&a), "{from}→{to} should stay live");
        }
    }

    #[test]
    fn solution_sets_are_disjoint() {
        let g = build(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let (sol, _) = gfp(&g);
        assert!(sol.strong.is_disjoint(&sol.deleted));
    }

    #[test]
    fn all_weak_solution_is_empty() {
        let s = Solution::all_weak();
        assert!(s.strong.is_empty() && s.deleted.is_empty());
    }

    /// Strong marks cascade off when a downstream source keeps a weak
    /// outgoing arc (the iteration in Example 5's narrative, reversed).
    #[test]
    fn unmark_str_cascades_upstream() {
        // Chain q(D) ← a(X,Y), b(Y,Z), c(Z,D) with a white sink w fed by c.
        // w is live (feeds black e's input), so c's incoming strong mark
        // dies, then b→c stays strong? No: only arcs into sources with
        // escaping outputs die. b→c: c's out-arcs feed w (weak) → b→c weak.
        // a→b: b's out-arc b→c is weak → a→b weak as well.
        let g = build(
            "a^oo(A, B) b^io(B, C) c^io(C, D) w^io(D, E) e^io(E, F)",
            "q(F) <- a(X, Y), b(Y, Z), c(Z, W2), e(V, F)",
        );
        let (sol, _) = gfp(&g);
        let ab = arc_by_sources(&g, "a(1)", "b(1)");
        let bc = arc_by_sources(&g, "b(1)", "c(1)");
        assert!(!sol.strong.contains(&bc));
        assert!(!sol.strong.contains(&ab));
        assert!(!sol.deleted.contains(&bc));
        assert!(!sol.deleted.contains(&ab));
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use crate::OptimizedDGraph;
    use toorjah_catalog::Schema;
    use toorjah_query::{parse_query, preprocess};

    fn build(schema_text: &str, query_text: &str) -> DGraph {
        let schema = Schema::parse(schema_text).unwrap();
        let q = parse_query(query_text, &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        DGraph::build(&pre).unwrap()
    }

    #[test]
    fn relevance_only_never_marks_strong() {
        let g = build(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let (sol, stats) = gfp_relevance_only(&g);
        assert!(sol.strong.is_empty());
        assert_eq!(stats.candidates, 0);
        // Without domination r3 stays relevant (the example's whole point).
        let opt = OptimizedDGraph::new(g, sol);
        let names: Vec<String> = opt
            .relevant_sources()
            .iter()
            .map(|&s| opt.graph().source(s).label.clone())
            .collect();
        assert!(names.contains(&"r3".to_string()));
        opt.check_invariants().unwrap();
    }

    #[test]
    fn relevance_only_still_prunes_dead_ends() {
        let g = build(
            "r^io(A, B) seed^o(A) w1^io(B, C) w2^io(C, C)",
            "q(Y) <- r(X, Y), seed(X)",
        );
        let (sol, _) = gfp_relevance_only(&g);
        let opt = OptimizedDGraph::new(g, sol);
        let names: Vec<String> = opt
            .relevant_sources()
            .iter()
            .map(|&s| opt.graph().source(s).label.clone())
            .collect();
        assert!(!names.contains(&"w1".to_string()));
        assert!(!names.contains(&"w2".to_string()));
    }

    #[test]
    fn full_gfp_deletes_at_least_as_much() {
        let g = build(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A) w^oo(B, C)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let (full, _) = gfp(&g);
        let (ablated, _) = gfp_relevance_only(&g);
        assert!(ablated.deleted.is_subset(&full.deleted));
    }
}
