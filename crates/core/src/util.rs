//! Small graph utilities shared by the optimizer modules.

/// Computes strongly connected components of a directed graph given as
/// adjacency lists. Returns a component id per vertex; ids are assigned in
/// reverse topological order (a component's id is greater than or equal to
/// the ids of components it can reach). Implemented as an iterative Tarjan
/// so pathological inputs cannot overflow the stack.
pub(crate) fn strongly_connected_components(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS frames: (vertex, next child position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call_stack.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child)) = call_stack.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_without_edges() {
        let comp = strongly_connected_components(&[vec![], vec![], vec![]]);
        // All distinct components.
        assert_eq!(
            comp.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let comp = strongly_connected_components(&[vec![1], vec![2], vec![0]]);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
    }

    #[test]
    fn chain_has_distinct_components_in_reverse_topo_order() {
        let comp = strongly_connected_components(&[vec![1], vec![2], vec![]]);
        assert!(comp[0] > comp[1]);
        assert!(comp[1] > comp[2]);
    }

    #[test]
    fn two_cycles_bridged() {
        // 0↔1 → 2↔3
        let comp = strongly_connected_components(&[vec![1], vec![0, 2], vec![3], vec![2]]);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert!(comp[0] > comp[2]);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let comp = strongly_connected_components(&[vec![0], vec![]]);
        assert_ne!(comp[0], comp[1]);
    }

    #[test]
    fn long_path_does_not_overflow() {
        // 10_000-vertex path exercises the iterative DFS.
        let n = 10_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let comp = strongly_connected_components(&adj);
        assert_eq!(
            comp.iter().collect::<std::collections::HashSet<_>>().len(),
            n
        );
    }
}
