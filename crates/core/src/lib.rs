//! # toorjah-core
//!
//! The core contribution of *"Querying Data under Access Limitations"*
//! (Calì & Martinenghi, ICDE 2008), reproduced in Rust:
//!
//! * **Queryability / answerability** (§II): which relations can be accessed
//!   at all, starting from the constants in the query — computed as a
//!   fixpoint over *obtainable abstract domains* ([`Queryability`]).
//! * **Dependency graphs** (§III): [`DGraph`] — black sources per query-atom
//!   occurrence, white sources per remaining queryable relation, arcs from
//!   output nodes to input nodes of the same abstract domain.
//! * **The GFP arc-marking algorithm** (§III, Fig. 3): [`gfp`] computes the
//!   unique maximal solution `(S, D)` of strong/deleted arcs via the
//!   `unmarkStr`/`unmarkDel` fixpoint operators; [`OptimizedDGraph`] is the
//!   resulting marked d-graph, from which **relevant** sources are read off.
//! * **Source and relation orderings** (§IV): [`order_sources`] assigns
//!   positions `1..k` respecting weak (⪯), strong (≺) and cyclic (=)
//!   constraints; [`MinimalityReport`] decides ∀-minimality (which holds iff
//!   exactly one relation ordering is possible).
//! * **⊂-minimal plan generation** (§IV, Example 7): [`plan_query`] emits a
//!   Datalog program with cache predicates `r̂⁽ᵏ⁾` and domain predicates `s`
//!   (disjunctive for weak incoming arcs, conjunctive for strong ones),
//!   executed by `toorjah-engine` under the fast-failing strategy.
//! * **Runtime-relevance metadata** ([`PlanRelevance`]): a conservative
//!   per-plan reachability summary over the dependency arcs — terminal
//!   caches and per-input semi-join partners — that the engine's evaluation
//!   kernel uses to drop individual accesses whose outputs provably cannot
//!   reach the query head.
//! * **DOT export** ([`dgraph_to_dot`], [`optimized_to_dot`]) regenerating
//!   the paper's Figures 2, 4, 7–9.

#![warn(missing_docs)]

mod arcs;
mod dot;
mod error;
mod gfp;
mod graph;
mod marked;
mod minimality;
mod orderability;
mod ordering;
mod plan;
mod queryability;
mod relevance;
mod util;

pub use arcs::{candidate_strong_arcs, cyclic_candidate_arcs};
pub use dot::{dgraph_to_dot, optimized_to_dot};
pub use error::CoreError;
pub use gfp::{gfp, gfp_relevance_only, GfpStats, Solution};
pub use graph::{ArcId, DArc, DGraph, DNode, NodeId, Source, SourceId, SourceKind};
pub use marked::{ArcMark, OptimizedDGraph};
pub use minimality::{analyze_minimality, MinimalityReport};
pub use orderability::{executable_order, is_feasible, is_orderable, ExecutableOrder};
pub use ordering::{order_sources, OrderingHeuristic, SourceOrdering};
pub use plan::{
    plan_query, CacheInfo, DomainMode, DomainPredInfo, Planned, Planner, Provider, QueryPlan,
};
pub use queryability::{is_answerable, Queryability};
pub use relevance::{CacheRelevance, PlanRelevance, SemijoinPartner};
