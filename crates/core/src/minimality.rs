//! ∀-minimality analysis (§IV).
//!
//! A query plan `Π` is **∀-minimal** when for every instance `D` and every
//! plan `Π′`, `Acc(D, Π) ⊆ Acc(D, Π′)`. Such plans do not always exist
//! (Example 6: two free relations can be probed in either order, and each
//! order loses on some instance). A **⊂-minimal** plan — one not strictly
//! dominated by any other plan — always exists, and the paper's generated
//! plan is one.
//!
//! The ∀-minimality criterion is purely structural: *"a ∀-minimal query plan
//! exists iff exactly one ordering for the relations is possible"*. The
//! source-ordering constraints of [`crate::order_sources`] are transferred
//! to the relations underlying the sources; unlike for sources, the result
//! may be inconsistent (e.g. a strong arc between two occurrences of one
//! relation forces `r ≺ r`). The ordering is unique exactly when it is
//! consistent and its condensation is a single chain.

use std::collections::{HashMap, HashSet};

use toorjah_catalog::RelationId;

use crate::util::strongly_connected_components;
use crate::{ArcMark, OptimizedDGraph};

/// Result of the ∀-minimality analysis for a planned query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MinimalityReport {
    /// Whether the relation-level ordering constraints are satisfiable.
    pub relation_ordering_consistent: bool,
    /// Whether exactly one relation ordering is possible — iff a ∀-minimal
    /// plan exists (and the generated ⊂-minimal plan is it).
    pub forall_minimal: bool,
    /// Number of relation-level order groups when consistent, else 0.
    pub relation_groups: usize,
}

/// Analyzes the relation-level ordering of an optimized d-graph.
pub fn analyze_minimality(opt: &OptimizedDGraph) -> MinimalityReport {
    let graph = opt.graph();

    // Dense ids for the relevant relations.
    let relations: Vec<RelationId> = opt.relevant_relations();
    let dense: HashMap<RelationId, usize> =
        relations.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let n = relations.len();

    // Relation-level edges from live arcs.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges: Vec<(usize, usize, ArcMark)> = Vec::new();
    for arc in graph.arc_ids() {
        let mark = opt.mark(arc);
        if mark == ArcMark::Deleted {
            continue;
        }
        let f = dense[&graph.source(graph.arc_from_source(arc)).relation];
        let t = dense[&graph.source(graph.arc_to_source(arc)).relation];
        adj[f].push(t);
        edges.push((f, t, mark));
    }

    let comp = strongly_connected_components(&adj);
    let comp_count = comp.iter().copied().max().map_or(0, |m| m + 1);

    // Consistency: no strong constraint within one component (including
    // relation-level self-loops, which arise from strong arcs between two
    // occurrences of the same relation).
    let consistent = edges
        .iter()
        .all(|&(f, t, mark)| mark != ArcMark::Strong || comp[f] != comp[t]);

    if !consistent {
        return MinimalityReport {
            relation_ordering_consistent: false,
            forall_minimal: false,
            relation_groups: 0,
        };
    }

    // Uniqueness: Kahn's algorithm finds exactly one ready component at
    // every step (the condensation is a chain).
    let mut comp_adj: Vec<HashSet<usize>> = vec![HashSet::new(); comp_count];
    let mut indegree = vec![0usize; comp_count];
    for &(f, t, _) in &edges {
        let (cf, ct) = (comp[f], comp[t]);
        if cf != ct && comp_adj[cf].insert(ct) {
            indegree[ct] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..comp_count).filter(|&c| indegree[c] == 0).collect();
    let mut unique = true;
    let mut emitted = 0;
    while let Some(&c) = ready.first() {
        if ready.len() > 1 {
            unique = false;
        }
        ready.remove(0);
        emitted += 1;
        for &next in &comp_adj[c] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                ready.push(next);
            }
        }
    }
    debug_assert_eq!(emitted, comp_count, "condensation must be acyclic");

    MinimalityReport {
        relation_ordering_consistent: true,
        forall_minimal: unique,
        relation_groups: comp_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gfp, DGraph};
    use toorjah_catalog::Schema;
    use toorjah_query::{parse_query, preprocess};

    fn analyze(schema_text: &str, query_text: &str) -> MinimalityReport {
        let schema = Schema::parse(schema_text).unwrap();
        let q = parse_query(query_text, &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        let graph = DGraph::build(&pre).unwrap();
        let (sol, _) = gfp(&graph);
        analyze_minimality(&OptimizedDGraph::new(graph, sol))
    }

    /// Example 7: r_a ≺ r1 ≺ r2 is the only possible ordering, so the plan
    /// is ∀-minimal.
    #[test]
    fn example7_is_forall_minimal() {
        let report = analyze(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        assert!(report.relation_ordering_consistent);
        assert!(report.forall_minimal);
        assert_eq!(report.relation_groups, 3);
    }

    /// Example 6: q(X) ← r1(X), r2(Y) over free relations admits no
    /// ∀-minimal plan.
    #[test]
    fn example6_not_forall_minimal() {
        let report = analyze("r1^o(A) r2^o(B)", "q(X) <- r1(X), r2(Y)");
        assert!(report.relation_ordering_consistent);
        assert!(!report.forall_minimal);
        assert_eq!(report.relation_groups, 2);
    }

    #[test]
    fn single_atom_ground_plan_is_forall_minimal() {
        let report = analyze("r^io(A, B)", "q(Y) <- r('a', Y)");
        assert!(report.forall_minimal);
    }

    /// A strong arc between two occurrences of the same relation makes the
    /// relation ordering inconsistent (r ≺ r).
    #[test]
    fn self_strong_constraint_is_inconsistent() {
        // pub1(P, R), pub1(P2, R): R joins the two occurrences at the output
        // position... we need a strong arc *between occurrences of the same
        // relation*. Use r^io(A, B) twice joined output→input.
        let report = analyze("r^io(A, A) seed^o(A)", "q(Y) <- seed(X), r(X, Y), r(Y, Z)");
        // Arc r(1).out → r(2).in is candidate strong (variable Y), and
        // non-cyclic at the source level, so it becomes strong; at the
        // relation level it is a strong self-loop.
        assert!(!report.relation_ordering_consistent);
        assert!(!report.forall_minimal);
    }

    #[test]
    fn cyclic_weak_group_can_still_be_unique() {
        let report = analyze(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A) seed^o(A)",
            "q(A) <- r1(A, B), r2(B, C), r3(C, A), seed(A)",
        );
        assert!(report.relation_ordering_consistent);
        // seed ≺ {r1, r2, r3}: a chain of two groups → unique.
        assert!(report.forall_minimal);
        assert_eq!(report.relation_groups, 2);
    }
}
