//! Candidate strong arcs and the cyclicity check (§III).
//!
//! An arc `u → v` is a **candidate strong arc** when both `u` and `v` are
//! black and their positions carry variables that are *joined* in the query
//! — after constant elimination this is simply "the same variable", since
//! all joins are explicit variable sharing.
//!
//! A candidate strong arc is **cyclic** (`cycl`) when it is contained in a
//! cyclic d-path all of whose arcs are candidate strong. D-paths chain
//! through sources (entering any bound node, leaving from any free node of
//! the same source), so cyclicity is decided on the source-level graph whose
//! edges are the candidate strong arcs: an arc is cyclic iff its endpoint
//! sources lie in one strongly connected component of that graph.
//! Cyclic candidates can never become strong (none of their input nodes
//! would be free-reachable) nor deleted (they reach black nodes), so they
//! always end up weak.

use std::collections::HashSet;

use crate::util::strongly_connected_components;
use crate::{ArcId, DGraph};

/// All candidate strong arcs of `graph` (`cand(G)`).
pub fn candidate_strong_arcs(graph: &DGraph) -> HashSet<ArcId> {
    graph
        .arc_ids()
        .filter(|&id| {
            let arc = graph.arc(id);
            let u = graph.node(arc.from);
            let v = graph.node(arc.to);
            match (u.variable, v.variable) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
        })
        .collect()
}

/// The cyclic candidate strong arcs of `graph` (`cycl(G)`), given its
/// candidate set.
pub fn cyclic_candidate_arcs(graph: &DGraph, candidates: &HashSet<ArcId>) -> HashSet<ArcId> {
    // Source-level graph restricted to candidate strong arcs.
    let n = graph.sources().len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &arc in candidates {
        let from = graph.arc_from_source(arc).index();
        let to = graph.arc_to_source(arc).index();
        adj[from].push(to);
    }
    let comp = strongly_connected_components(&adj);
    candidates
        .iter()
        .copied()
        .filter(|&arc| {
            let from = graph.arc_from_source(arc).index();
            let to = graph.arc_to_source(arc).index();
            // An edge lies on a cycle iff its endpoints share a component;
            // a source-level self-loop (from == to) is trivially cyclic.
            comp[from] == comp[to]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_catalog::Schema;
    use toorjah_query::{parse_query, preprocess};

    fn build(schema_text: &str, query_text: &str) -> DGraph {
        let schema = Schema::parse(schema_text).unwrap();
        let q = parse_query(query_text, &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        DGraph::build(&pre).unwrap()
    }

    fn arc_labels(graph: &DGraph, arcs: &HashSet<ArcId>) -> Vec<String> {
        let mut out: Vec<String> = arcs
            .iter()
            .map(|&a| {
                format!(
                    "{}→{}",
                    graph.source(graph.arc_from_source(a)).label,
                    graph.source(graph.arc_to_source(a)).label
                )
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn example5_candidates() {
        // Example 5: e1 (ra→r1) and e2 (r1→r2) are the candidate strong arcs.
        let g = build(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let cand = candidate_strong_arcs(&g);
        assert_eq!(arc_labels(&g, &cand), ["r1(1)→r2(1)", "r_a(1)→r1(1)"]);
        // Neither is cyclic.
        let cycl = cyclic_candidate_arcs(&g, &cand);
        assert!(cycl.is_empty());
    }

    #[test]
    fn white_arcs_are_never_candidates() {
        let g = build(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let cand = candidate_strong_arcs(&g);
        for arc in g.arc_ids() {
            let from_black = g.source(g.arc_from_source(arc)).is_black();
            let to_black = g.source(g.arc_to_source(arc)).is_black();
            if cand.contains(&arc) {
                assert!(from_black && to_black);
            }
        }
    }

    #[test]
    fn unjoined_black_arcs_are_not_candidates() {
        // r1's output B feeds r2's input B, but the query uses different
        // variables at those positions (no join).
        let g = build("r1^oo(A, B) r2^io(B, C)", "q(C) <- r1(X, Y), r2(Z, C)");
        let cand = candidate_strong_arcs(&g);
        assert!(cand.is_empty());
    }

    #[test]
    fn three_cycle_of_candidates_is_cyclic() {
        // q(A) ← r1(A,B), r2(B,C), r3(C,A): all three arcs candidate strong
        // and on one cycle.
        let g = build(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A) seed^o(A)",
            "q(A) <- r1(A, B), r2(B, C), r3(C, A), seed(A)",
        );
        let cand = candidate_strong_arcs(&g);
        let cycl = cyclic_candidate_arcs(&g, &cand);
        // Arcs inside the r1→r2→r3→r1 cycle are cyclic; seed→r1 is not.
        let labels = arc_labels(&g, &cycl);
        assert_eq!(labels, ["r1(1)→r2(1)", "r2(1)→r3(1)", "r3(1)→r1(1)"]);
        assert!(cand.len() > cycl.len());
    }

    #[test]
    fn self_join_self_loop_is_cyclic() {
        // r(A^i, A^o) with atom r(X, X): the intra-source arc is a cyclic
        // candidate (a length-one cyclic d-path).
        let g = build("r^io(A, A) seed^o(A)", "q(X) <- r(X, X), seed(X)");
        let cand = candidate_strong_arcs(&g);
        let cycl = cyclic_candidate_arcs(&g, &cand);
        let self_loops: Vec<_> = cycl
            .iter()
            .filter(|&&a| g.arc_from_source(a) == g.arc_to_source(a))
            .collect();
        assert_eq!(self_loops.len(), 1);
    }

    #[test]
    fn two_source_cycle_detected() {
        let g = build(
            "p^io(A, B) r^io(B, A) seed^o(A)",
            "q(X) <- p(X, Y), r(Y, X), seed(X)",
        );
        let cand = candidate_strong_arcs(&g);
        let cycl = cyclic_candidate_arcs(&g, &cand);
        let labels = arc_labels(&g, &cycl);
        assert_eq!(labels, ["p(1)→r(1)", "r(1)→p(1)"]);
    }
}
