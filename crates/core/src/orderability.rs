//! Orderability and executability of queries under access limitations.
//!
//! §VI discusses two related notions from prior work that Toorjah subsumes:
//!
//! * **Executability** ([Yang, Kifer & Chaudhri, PODS 2006]): can the
//!   query's atoms be reordered so that the query runs *left to right*,
//!   each atom's input arguments being bound by constants or by variables
//!   occurring earlier? Such queries need no recursive plan at all.
//! * **Feasibility** ([Ludäscher & Nash, PODS 2004]): does an *equivalent*
//!   query exist that is executable as-is? Deciding feasibility is
//!   NP-hard-and-beyond in general; *orderability* (above) is its practical
//!   approximation. Here feasibility is checked on the minimized query —
//!   exact for the minimal-query core used throughout the crate.
//!
//! Executable queries are the easy case: Toorjah's plans handle the general
//! case where values must be fetched recursively through relations outside
//! the query. These helpers let callers detect the easy case (and, e.g.,
//! skip plan generation or compare against a non-recursive baseline).

use toorjah_catalog::Schema;
use toorjah_query::{minimize, ConjunctiveQuery, Term};

/// An executable ordering of a query's atoms: a permutation such that every
/// atom's input positions carry constants or variables bound by earlier
/// atoms (output positions bind variables as they go).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExecutableOrder {
    /// Atom indexes (into [`ConjunctiveQuery::atoms`]) in execution order.
    pub order: Vec<usize>,
}

/// Finds an executable left-to-right ordering of `query`'s atoms, if one
/// exists.
///
/// Greedy selection is complete for this problem: binding more variables
/// earlier never hurts later atoms (bound-ness is monotone), so whenever
/// *some* executable order exists, repeatedly picking any currently
/// executable atom yields one.
pub fn executable_order(query: &ConjunctiveQuery, schema: &Schema) -> Option<ExecutableOrder> {
    let n = query.atoms().len();
    let mut bound = vec![false; query.var_count()];
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let next = (0..n).find(|&i| {
            if placed[i] {
                return false;
            }
            let atom = &query.atoms()[i];
            let rel = schema.relation(atom.relation());
            rel.pattern().input_positions().all(|k| match atom.term(k) {
                Term::Const(_) => true,
                Term::Var(v) => bound[v.index()],
            })
        })?;
        placed[next] = true;
        for v in query.atoms()[next].variables() {
            bound[v.index()] = true;
        }
        order.push(next);
    }
    Some(ExecutableOrder { order })
}

/// `true` when the query can be executed left to right after reordering its
/// atoms (the *orderable* queries of [Yang, Kifer & Chaudhri 2006]).
pub fn is_orderable(query: &ConjunctiveQuery, schema: &Schema) -> bool {
    executable_order(query, schema).is_some()
}

/// `true` when an equivalent executable query exists, checked on the
/// minimized query. For minimal queries orderability and feasibility
/// coincide on the CQ fragment treated here (removing redundant atoms is
/// the only equivalence-preserving rewriting that can unlock an ordering,
/// and the core has none left); the check is exact for minimal inputs and a
/// sound approximation otherwise.
pub fn is_feasible(query: &ConjunctiveQuery, schema: &Schema) -> bool {
    is_orderable(&minimize(query), schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_query::parse_query;

    #[test]
    fn free_relations_are_always_orderable() {
        let schema = Schema::parse("r^oo(A, B) s^oo(B, C)").unwrap();
        let q = parse_query("q(X, Z) <- r(X, Y), s(Y, Z)", &schema).unwrap();
        let order = executable_order(&q, &schema).unwrap();
        assert_eq!(order.order.len(), 2);
    }

    #[test]
    fn chain_requires_the_right_order() {
        // s's input B is bound only after r runs.
        let schema = Schema::parse("r^oo(A, B) s^io(B, C)").unwrap();
        let q = parse_query("q(Z) <- s(Y, Z), r(X, Y)", &schema).unwrap();
        let order = executable_order(&q, &schema).unwrap();
        assert_eq!(order.order, vec![1, 0], "r must run before s");
        assert!(is_orderable(&q, &schema));
    }

    #[test]
    fn constants_satisfy_inputs() {
        let schema = Schema::parse("r^io(A, B)").unwrap();
        let q = parse_query("q(Y) <- r('a', Y)", &schema).unwrap();
        assert!(is_orderable(&q, &schema));
    }

    #[test]
    fn unorderable_when_inputs_cycle() {
        // r needs A (only from s's output), s needs B (only from r's
        // output): no left-to-right order.
        let schema = Schema::parse("r^io(A, B) s^io(B, A)").unwrap();
        let q = parse_query("q(X) <- r(X, Y), s(Y, X)", &schema).unwrap();
        assert!(!is_orderable(&q, &schema));
    }

    #[test]
    fn example1_is_not_orderable() {
        // The paper's motivating query needs the recursive plan: r1 requires
        // an Artist, r2 requires a Year, and neither is bound up front.
        let schema = Schema::parse(
            "r1^ioo(Artist, Nation, Year) r2^oio(Title, Year, Artist) r3^oo(Artist, Album)",
        )
        .unwrap();
        let q = parse_query("q(N) <- r1(A, N, Y1), r2('volare', Y2, A)", &schema).unwrap();
        assert!(!is_orderable(&q, &schema));
        assert!(!is_feasible(&q, &schema));
    }

    #[test]
    fn feasibility_sees_through_redundancy() {
        // The second atom is redundant; the core r(a, Y) is executable even
        // though the unorderable copy r(X, Y2) blocks the greedy order...
        let schema = Schema::parse("r^io(A, B)").unwrap();
        let q = parse_query("q(Y) <- r('a', Y), r('a', Y2)", &schema).unwrap();
        // ...actually both atoms here have the constant input, so plain
        // orderability already holds; build a genuinely blocked redundant
        // copy instead:
        assert!(is_orderable(&q, &schema));
        let q2 = parse_query("q(Y) <- r('a', Y), r(X, Y)", &schema).unwrap();
        // r(X, Y) has an unbound input forever ⇒ not orderable as written…
        assert!(!is_orderable(&q2, &schema));
        // …but it is redundant (folds onto r('a', Y)), so the query is
        // feasible.
        assert!(is_feasible(&q2, &schema));
    }

    #[test]
    fn greedy_is_complete_on_a_diamond() {
        // Two independent branches feeding a sink; any greedy choice works.
        let schema = Schema::parse("a^oo(X, Y) b^oo(X, Z) sink^iio(Y, Z, W)").unwrap();
        let q = parse_query("q(W) <- sink(Y, Z, W), a(X1, Y), b(X2, Z)", &schema).unwrap();
        let order = executable_order(&q, &schema).unwrap();
        assert_eq!(order.order.last(), Some(&0), "sink must come last");
    }
}
