//! Graphviz (DOT) export of d-graphs, regenerating the paper's Figures
//! 2, 4, 7, 8 and 9.
//!
//! Sources render as clusters (the paper draws them as ovals); nodes are
//! labelled with their abstract domain and access mode; strong arcs render
//! with double lines (`color="black:invis:black"`), weak arcs as plain
//! arrows, deleted arcs (when requested) as dashed grey.

use std::fmt::Write as _;

use crate::{ArcMark, DGraph, OptimizedDGraph, Solution};

/// Renders an unmarked d-graph (all arcs weak).
pub fn dgraph_to_dot(graph: &DGraph) -> String {
    render(
        &OptimizedDGraph::new(graph.clone(), Solution::all_weak()),
        true,
    )
}

/// Renders an optimized d-graph. With `include_deleted`, deleted arcs and
/// pruned sources are drawn dashed/grey instead of omitted (useful to
/// visualize the pruning side by side, as in Figs. 7–9).
pub fn optimized_to_dot(opt: &OptimizedDGraph, include_deleted: bool) -> String {
    render(opt, include_deleted)
}

fn render(opt: &OptimizedDGraph, include_deleted: bool) -> String {
    let graph = opt.graph();
    let schema = graph.schema();
    let mut out = String::new();
    out.push_str("digraph dgraph {\n");
    out.push_str("  rankdir=LR;\n  compound=true;\n  node [shape=circle, fontsize=10];\n");

    let relevant = opt.relevant_sources();
    for (sid, source) in graph.sources().iter().enumerate() {
        let is_relevant = relevant.iter().any(|s| s.index() == sid);
        if !include_deleted && !is_relevant {
            continue;
        }
        let style = if source.is_black() { "filled" } else { "solid" };
        let fill = if source.is_black() { "gray85" } else { "white" };
        let pen = if is_relevant { "black" } else { "gray60" };
        let _ = writeln!(out, "  subgraph cluster_{sid} {{");
        let _ = writeln!(out, "    label=\"{}\";", escape(&source.label));
        let _ = writeln!(out, "    style=rounded; color={pen};");
        for &n in &source.nodes {
            let node = graph.node(n);
            let domain = schema.domains().name(node.domain);
            let _ = writeln!(
                out,
                "    n{} [label=\"{} ({})\", style={style}, fillcolor={fill}, color={pen}];",
                n.index(),
                escape(domain),
                node.mode.letter(),
            );
        }
        if source.nodes.is_empty() {
            // Nullary sources still get a placeholder so the cluster shows.
            let _ = writeln!(out, "    s{sid}_empty [label=\"()\", shape=point];");
        }
        out.push_str("  }\n");
    }

    for (i, arc) in graph.arcs().iter().enumerate() {
        let id = crate::ArcId(i as u32);
        let mark = opt.mark(id);
        if mark == ArcMark::Deleted && !include_deleted {
            continue;
        }
        let attrs = match mark {
            ArcMark::Strong => "color=\"black:invis:black\", penwidth=1.2",
            ArcMark::Weak => "color=black",
            ArcMark::Deleted => "color=gray60, style=dashed",
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [{attrs}, label=\"e{}\"];",
            arc.from.index(),
            arc.to.index(),
            i + 1,
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfp;
    use toorjah_catalog::Schema;
    use toorjah_query::{parse_query, preprocess};

    fn example4() -> OptimizedDGraph {
        let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
        let q = parse_query("q(C) <- r1('a', B), r2(B, C)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        let graph = DGraph::build(&pre).unwrap();
        let (sol, _) = gfp(&graph);
        OptimizedDGraph::new(graph, sol)
    }

    #[test]
    fn dot_contains_all_sources_and_arcs() {
        let opt = example4();
        let dot = dgraph_to_dot(opt.graph());
        assert!(dot.starts_with("digraph"));
        for label in ["r_a(1)", "r1(1)", "r2(1)", "r3"] {
            assert!(dot.contains(label), "missing {label} in:\n{dot}");
        }
        // 4 arcs e1..e4.
        assert!(dot.contains("e4"));
    }

    #[test]
    fn optimized_dot_prunes_deleted() {
        let opt = example4();
        let dot = optimized_to_dot(&opt, false);
        // r3 is irrelevant: pruned entirely (Fig. 4).
        assert!(!dot.contains("\"r3\""), "{dot}");
        // Strong arcs use the double-line styling.
        assert!(dot.contains("black:invis:black"));
    }

    #[test]
    fn optimized_dot_with_deleted_keeps_everything() {
        let opt = example4();
        let dot = optimized_to_dot(&opt, true);
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("r3"));
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
