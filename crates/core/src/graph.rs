//! Dependency graphs (d-graphs), §III of the paper.
//!
//! The nodes of a d-graph `G_q^R` for a (constant-free, preprocessed) query
//! `q` over a schema `R` are grouped into *sources*:
//!
//! * each atom occurrence of `q` contributes one source of **black** nodes,
//!   one per argument of the relation;
//! * each queryable relation of `R` not appearing in `q` contributes one
//!   source of **white** nodes.
//!
//! Every node is labelled with the access mode (`i`/`o`) and the abstract
//! domain of its argument. There is an arc `u → v` whenever (i) `u` and `v`
//! have the same abstract domain, (ii) `u` is an output node, and (iii) `v`
//! is an input node. Arcs denote that the relation of `v` can obtain input
//! values from the relation of `u`.
//!
//! Non-queryable relations can never be accessed for any instance (§II), so
//! they are excluded up front, per the paper's "restrict our attention to
//! queryable relations".

use std::fmt;

use toorjah_catalog::{DomainId, Mode, RelationId, Schema};
use toorjah_query::{ConjunctiveQuery, PreprocessedQuery, VarId};

use crate::{CoreError, Queryability};

/// Identifier of a node in a [`DGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a source (group of nodes) in a [`DGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SourceId(pub u32);

impl SourceId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an arc in a [`DGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ArcId(pub u32);

impl ArcId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a source stands for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SourceKind {
    /// A black source: occurrence `occurrence` (index into the preprocessed
    /// query's atoms) of a relation in the query.
    QueryAtom {
        /// Index of the atom in the preprocessed query's body.
        occurrence: usize,
    },
    /// A white source: a schema relation not occurring in the query.
    Relation,
}

/// One argument position of a source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DNode {
    /// The source this node belongs to.
    pub source: SourceId,
    /// 0-based argument position within the relation.
    pub position: usize,
    /// Access mode of the position.
    pub mode: Mode,
    /// Abstract domain of the position.
    pub domain: DomainId,
    /// For black nodes: the query variable at this position (the query is
    /// constant-free after preprocessing). `None` for white nodes.
    pub variable: Option<VarId>,
}

impl DNode {
    /// `true` when the node belongs to a query-atom (black) source.
    pub fn is_black(&self) -> bool {
        self.variable.is_some()
    }
}

/// A group of nodes corresponding to one atom occurrence or one relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Source {
    /// Black (query atom) or white (relation).
    pub kind: SourceKind,
    /// The underlying relation.
    pub relation: RelationId,
    /// The source's nodes, in positional order.
    pub nodes: Vec<NodeId>,
    /// Display label, e.g. `pub1(1)` for the first occurrence of `pub1` or
    /// `r3` for a white source.
    pub label: String,
}

impl Source {
    /// `true` for query-atom sources.
    pub fn is_black(&self) -> bool {
        matches!(self.kind, SourceKind::QueryAtom { .. })
    }

    /// `true` when no node of the source has input mode (free sources can be
    /// accessed with no restriction).
    pub fn is_free(&self, graph: &DGraph) -> bool {
        self.nodes.iter().all(|&n| graph.node(n).mode.is_output())
    }
}

/// An arc `u → v` from an output node to an input node of equal domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DArc {
    /// Origin (an output node).
    pub from: NodeId,
    /// Target (an input node).
    pub to: NodeId,
}

/// A dependency graph for a preprocessed (constant-free) query.
#[derive(Clone, Debug)]
pub struct DGraph {
    schema: Schema,
    query: ConjunctiveQuery,
    sources: Vec<Source>,
    nodes: Vec<DNode>,
    arcs: Vec<DArc>,
    out_arcs_of_source: Vec<Vec<ArcId>>,
    in_arcs_of_node: Vec<Vec<ArcId>>,
}

impl DGraph {
    /// Builds the d-graph for a preprocessed query.
    ///
    /// Returns [`CoreError::NotAnswerable`] when some relation occurring in
    /// the query is not queryable (§II: the answer is then known to be empty
    /// without any access, and no plan is generated).
    pub fn build(pre: &PreprocessedQuery) -> Result<DGraph, CoreError> {
        debug_assert!(pre.query.is_constant_free(), "preprocess() must run first");
        let schema = &pre.schema;
        // Constants were compiled into free relations, so no extra seeds.
        let queryability = Queryability::compute(schema, []);
        for atom in pre.query.atoms() {
            if !queryability.is_queryable(atom.relation()) {
                return Err(CoreError::NotAnswerable {
                    relation: schema.relation(atom.relation()).name().to_string(),
                });
            }
        }

        let mut graph = DGraph {
            schema: schema.clone(),
            query: pre.query.clone(),
            sources: Vec::new(),
            nodes: Vec::new(),
            arcs: Vec::new(),
            out_arcs_of_source: Vec::new(),
            in_arcs_of_node: Vec::new(),
        };

        // Black sources: one per atom occurrence, labelled with a
        // per-relation occurrence number as in the paper's figures.
        let mut occurrence_counter = vec![0usize; schema.relation_count()];
        for (occurrence, atom) in pre.query.atoms().iter().enumerate() {
            let rel = atom.relation();
            occurrence_counter[rel.index()] += 1;
            let label = format!(
                "{}({})",
                schema.relation(rel).name(),
                occurrence_counter[rel.index()]
            );
            let source_id = SourceId(graph.sources.len() as u32);
            let rel_schema = schema.relation(rel);
            let mut node_ids = Vec::with_capacity(rel_schema.arity());
            for k in 0..rel_schema.arity() {
                let variable = atom.term(k).as_var().ok_or_else(|| {
                    CoreError::Internal("constant in preprocessed query".to_string())
                })?;
                node_ids.push(graph.push_node(DNode {
                    source: source_id,
                    position: k,
                    mode: rel_schema.mode(k),
                    domain: rel_schema.domain(k),
                    variable: Some(variable),
                }));
            }
            graph.sources.push(Source {
                kind: SourceKind::QueryAtom { occurrence },
                relation: rel,
                nodes: node_ids,
                label,
            });
        }

        // White sources: queryable relations not occurring in the query.
        let query_relations = pre.query.relations();
        for (rel, rel_schema) in schema.iter() {
            if query_relations.contains(&rel) || !queryability.is_queryable(rel) {
                continue;
            }
            let source_id = SourceId(graph.sources.len() as u32);
            let mut node_ids = Vec::with_capacity(rel_schema.arity());
            for k in 0..rel_schema.arity() {
                node_ids.push(graph.push_node(DNode {
                    source: source_id,
                    position: k,
                    mode: rel_schema.mode(k),
                    domain: rel_schema.domain(k),
                    variable: None,
                }));
            }
            graph.sources.push(Source {
                kind: SourceKind::Relation,
                relation: rel,
                nodes: node_ids,
                label: rel_schema.name().to_string(),
            });
        }

        // Arcs: output → input within equal abstract domains.
        graph.out_arcs_of_source = vec![Vec::new(); graph.sources.len()];
        graph.in_arcs_of_node = vec![Vec::new(); graph.nodes.len()];
        for from in 0..graph.nodes.len() as u32 {
            let u = &graph.nodes[from as usize];
            if !u.mode.is_output() {
                continue;
            }
            for to in 0..graph.nodes.len() as u32 {
                let v = &graph.nodes[to as usize];
                if !v.mode.is_input() || u.domain != v.domain {
                    continue;
                }
                let arc_id = ArcId(graph.arcs.len() as u32);
                graph.arcs.push(DArc {
                    from: NodeId(from),
                    to: NodeId(to),
                });
                graph.out_arcs_of_source[u.source.index()].push(arc_id);
                graph.in_arcs_of_node[to as usize].push(arc_id);
            }
        }

        Ok(graph)
    }

    fn push_node(&mut self, node: DNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// The (extended) schema the graph was built over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The constant-free query the graph was built for.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// All sources; black sources come first, in atom-occurrence order.
    pub fn sources(&self) -> &[Source] {
        &self.sources
    }

    /// A source by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn source(&self, id: SourceId) -> &Source {
        &self.sources[id.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[DNode] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &DNode {
        &self.nodes[id.index()]
    }

    /// All arcs.
    pub fn arcs(&self) -> &[DArc] {
        &self.arcs
    }

    /// An arc by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn arc(&self, id: ArcId) -> DArc {
        self.arcs[id.index()]
    }

    /// Ids of all arcs.
    pub fn arc_ids(&self) -> impl Iterator<Item = ArcId> {
        (0..self.arcs.len() as u32).map(ArcId)
    }

    /// Ids of all sources.
    pub fn source_ids(&self) -> impl Iterator<Item = SourceId> {
        (0..self.sources.len() as u32).map(SourceId)
    }

    /// `outArcs(u, G)`: the arcs leaving *any* node of the source of `u`
    /// (the paper's notation takes a node; sources share their out-arc set).
    pub fn out_arcs_of_node(&self, u: NodeId) -> &[ArcId] {
        &self.out_arcs_of_source[self.node(u).source.index()]
    }

    /// The arcs leaving any node of source `s`.
    pub fn out_arcs_of_source(&self, s: SourceId) -> &[ArcId] {
        &self.out_arcs_of_source[s.index()]
    }

    /// The arcs entering node `v`.
    pub fn in_arcs(&self, v: NodeId) -> &[ArcId] {
        &self.in_arcs_of_node[v.index()]
    }

    /// The source of an arc's origin node.
    pub fn arc_from_source(&self, arc: ArcId) -> SourceId {
        self.node(self.arc(arc).from).source
    }

    /// The source of an arc's target node.
    pub fn arc_to_source(&self, arc: ArcId) -> SourceId {
        self.node(self.arc(arc).to).source
    }

    /// Input nodes of a source.
    pub fn input_nodes(&self, s: SourceId) -> impl Iterator<Item = NodeId> + '_ {
        self.sources[s.index()]
            .nodes
            .iter()
            .copied()
            .filter(|&n| self.node(n).mode.is_input())
    }

    /// Black sources (query atoms), in occurrence order.
    pub fn black_sources(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.source_ids().filter(|&s| self.source(s).is_black())
    }

    /// White sources (relations outside the query).
    pub fn white_sources(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.source_ids().filter(|&s| !self.source(s).is_black())
    }
}

impl fmt::Display for DGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "d-graph: {} sources, {} nodes, {} arcs",
            self.sources.len(),
            self.nodes.len(),
            self.arcs.len()
        )?;
        for s in &self.sources {
            let color = if s.is_black() { "black" } else { "white" };
            writeln!(f, "  source {} [{color}]", s.label)?;
        }
        for (i, arc) in self.arcs.iter().enumerate() {
            let from = self.node(arc.from);
            let to = self.node(arc.to);
            writeln!(
                f,
                "  e{}: {}.{} → {}.{}",
                i + 1,
                self.source(from.source).label,
                from.position,
                self.source(to.source).label,
                to.position,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_query::{parse_query, preprocess};

    /// Example 3/4 of the paper:
    /// R = {r1^io(A,B), r2^io(B,C), r3^io(C,A)}, q(C) ← r1(a, B), r2(B, C).
    fn example4() -> (Schema, PreprocessedQuery) {
        let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
        let q = parse_query("q(C) <- r1('a', B), r2(B, C)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        (schema, pre)
    }

    #[test]
    fn example4_graph_shape() {
        let (_, pre) = example4();
        let g = DGraph::build(&pre).unwrap();
        // Sources: r1(1), r2(1), r_a(1) black; r3 white.
        assert_eq!(g.sources().len(), 4);
        assert_eq!(g.black_sources().count(), 3);
        assert_eq!(g.white_sources().count(), 1);
        // Nodes: r1:2 + r2:2 + r_a:1 + r3:2 = 7.
        assert_eq!(g.nodes().len(), 7);
        // Arcs (paper Fig. 2): e1 ra.A→r1.A, e2 r1.B→r2.B, e3 r2.C→r3.C,
        // e4 r3.A→r1.A — exactly 4.
        assert_eq!(g.arcs().len(), 4);
    }

    #[test]
    fn example4_arcs_match_figure2() {
        let (_, pre) = example4();
        let g = DGraph::build(&pre).unwrap();
        let mut rendered: Vec<String> = g
            .arcs()
            .iter()
            .map(|a| {
                format!(
                    "{}→{}",
                    g.source(g.node(a.from).source).label,
                    g.source(g.node(a.to).source).label
                )
            })
            .collect();
        rendered.sort();
        assert_eq!(
            rendered,
            ["r1(1)→r2(1)", "r2(1)→r3", "r3→r1(1)", "r_a(1)→r1(1)"]
        );
    }

    #[test]
    fn black_nodes_carry_variables() {
        let (_, pre) = example4();
        let g = DGraph::build(&pre).unwrap();
        for s in g.black_sources() {
            for &n in &g.source(s).nodes {
                assert!(g.node(n).is_black());
            }
        }
        for s in g.white_sources() {
            for &n in &g.source(s).nodes {
                assert!(!g.node(n).is_black());
            }
        }
    }

    #[test]
    fn occurrence_labels_are_numbered_per_relation() {
        let schema = Schema::parse("pub1^io(Paper, Person) conf^ooo(Paper, C, Y)").unwrap();
        let q = parse_query("q(R) <- pub1(P, R), pub1(P, A), conf(P, C, Y)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        let g = DGraph::build(&pre).unwrap();
        let labels: Vec<_> = g.sources().iter().map(|s| s.label.clone()).collect();
        assert!(labels.contains(&"pub1(1)".to_string()));
        assert!(labels.contains(&"pub1(2)".to_string()));
        assert!(labels.contains(&"conf(1)".to_string()));
    }

    #[test]
    fn non_queryable_white_relations_are_excluded() {
        // `dead` needs domain D that nothing outputs: excluded from graph.
        let schema = Schema::parse("r^oo(A, B) dead^io(D, A)").unwrap();
        let q = parse_query("q(X) <- r(X, Y)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        let g = DGraph::build(&pre).unwrap();
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.source(SourceId(0)).label, "r(1)");
    }

    #[test]
    fn non_answerable_query_is_rejected() {
        let schema = Schema::parse("r1^io(A, C) r2^io(B, C) r3^io(C, B)").unwrap();
        // Example 2's q2 shape but over r1, with no constant of domain A.
        let q = parse_query("q(C) <- r1(X, C)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        let err = DGraph::build(&pre).unwrap_err();
        assert!(matches!(err, CoreError::NotAnswerable { relation } if relation == "r1"));
    }

    #[test]
    fn free_sources_detected() {
        let (_, pre) = example4();
        let g = DGraph::build(&pre).unwrap();
        let free: Vec<_> = g
            .source_ids()
            .filter(|&s| g.source(s).is_free(&g))
            .map(|s| g.source(s).label.clone())
            .collect();
        assert_eq!(free, ["r_a(1)"]);
    }

    #[test]
    fn out_arcs_are_shared_per_source() {
        let (_, pre) = example4();
        let g = DGraph::build(&pre).unwrap();
        // r1(1) has 2 nodes; outArcs from either is the same set.
        let r1 = g
            .source_ids()
            .find(|&s| g.source(s).label == "r1(1)")
            .unwrap();
        let nodes = &g.source(r1).nodes;
        assert_eq!(g.out_arcs_of_node(nodes[0]), g.out_arcs_of_node(nodes[1]));
        assert_eq!(g.out_arcs_of_source(r1).len(), 1); // e2 only
    }

    #[test]
    fn in_arcs_per_node() {
        let (_, pre) = example4();
        let g = DGraph::build(&pre).unwrap();
        // r1(1)'s input node (position 0) has two incoming arcs: from r_a and r3.
        let r1 = g
            .source_ids()
            .find(|&s| g.source(s).label == "r1(1)")
            .unwrap();
        let input = g.input_nodes(r1).next().unwrap();
        assert_eq!(g.in_arcs(input).len(), 2);
    }

    #[test]
    fn self_feeding_source_gets_self_arc() {
        // r(A^i, A^o): the relation can feed itself once seeded.
        let schema = Schema::parse("r^io(A, A) seed^o(A)").unwrap();
        let q = parse_query("q(X) <- r(X, Y)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        let g = DGraph::build(&pre).unwrap();
        let self_arcs = g
            .arc_ids()
            .filter(|&a| g.arc_from_source(a) == g.arc_to_source(a))
            .count();
        assert_eq!(self_arcs, 1);
    }

    #[test]
    fn display_mentions_sources_and_arcs() {
        let (_, pre) = example4();
        let g = DGraph::build(&pre).unwrap();
        let text = g.to_string();
        assert!(text.contains("4 sources"));
        assert!(text.contains("r3 [white]"));
        assert!(text.contains("→"));
    }
}
