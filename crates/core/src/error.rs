//! Error type for d-graph construction and plan generation.

use std::error::Error;
use std::fmt;

use toorjah_datalog::DatalogError;
use toorjah_query::QueryError;

/// Errors raised by the optimizer and planner.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// The query mentions a non-queryable relation, hence is not answerable
    /// (§II): no access plan can ever extract any of its tuples.
    NotAnswerable {
        /// Name of the non-queryable relation occurring in the query.
        relation: String,
    },
    /// An error from query validation or preprocessing.
    Query(QueryError),
    /// An error while assembling the plan's Datalog program.
    Datalog(DatalogError),
    /// An internal invariant was violated (a bug; the message says which).
    Internal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotAnswerable { relation } => write!(
                f,
                "query is not answerable: relation {relation} is not queryable under the schema's access limitations"
            ),
            CoreError::Query(e) => write!(f, "query error: {e}"),
            CoreError::Datalog(e) => write!(f, "plan assembly error: {e}"),
            CoreError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Query(e) => Some(e),
            CoreError::Datalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}

impl From<DatalogError> for CoreError {
    fn from(e: DatalogError) -> Self {
        CoreError::Datalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_answerable_names_relation() {
        let e = CoreError::NotAnswerable {
            relation: "r1".into(),
        };
        assert!(e.to_string().contains("r1"));
    }

    #[test]
    fn wraps_sources() {
        let e: CoreError = QueryError::EmptyBody.into();
        assert!(Error::source(&e).is_some());
    }
}
