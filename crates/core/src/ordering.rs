//! Source orderings (§IV).
//!
//! If the optimized d-graph refers to more than one source, some relations
//! must be accessed before others. The ordering among the sources of the
//! optimized d-graph satisfies:
//!
//! * weak arc `u → v` ⟹ `src(u) ⪯ src(v)`;
//! * strong arc `u → v` ⟹ `src(u) ≺ src(v)`;
//! * sources traversed by a cyclic d-path have the same order.
//!
//! Sources in one strongly connected component of the live source graph
//! share an order group; the condensation is linearized and each component
//! receives a position `1..k`. When several linearizations are admissible
//! the paper picks one arbitrarily, suggesting the heuristic of placing
//! sources involved in more joins first (they are more likely to expose an
//! empty answer early under the fast-failing strategy); that heuristic is
//! the default here.

use std::collections::HashSet;

use crate::util::strongly_connected_components;
use crate::{ArcMark, CoreError, OptimizedDGraph, SourceId};

/// Tie-breaking policy used when several sources are ready at once during
/// linearization.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OrderingHeuristic {
    /// Prefer components whose sources participate in more joins (paper
    /// §IV), breaking ties by smallest source id. The default.
    #[default]
    JoinCountDesc,
    /// Deterministic smallest-source-id-first order (useful in tests).
    SourceIdAsc,
}

/// Positions `1..k` assigned to the relevant sources.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceOrdering {
    /// `positions[source.index()]`: the 1-based position, or `None` for
    /// irrelevant sources.
    positions: Vec<Option<usize>>,
    /// `groups[i]` lists the sources at position `i + 1`.
    groups: Vec<Vec<SourceId>>,
}

impl SourceOrdering {
    /// The 1-based position of a source (`None` if irrelevant).
    pub fn position(&self, s: SourceId) -> Option<usize> {
        self.positions.get(s.index()).copied().flatten()
    }

    /// Number of order groups `k`.
    pub fn k(&self) -> usize {
        self.groups.len()
    }

    /// Sources grouped by position (index 0 holds position 1).
    pub fn groups(&self) -> &[Vec<SourceId>] {
        &self.groups
    }
}

/// Computes a source ordering for an optimized d-graph.
///
/// Fails with [`CoreError::Internal`] if a strong arc connects two sources of
/// one cycle — the GFP algorithm guarantees this cannot happen (cyclic
/// candidate strong arcs are excluded from `S`), so it indicates a bug.
pub fn order_sources(
    opt: &OptimizedDGraph,
    heuristic: OrderingHeuristic,
) -> Result<SourceOrdering, CoreError> {
    let graph = opt.graph();
    let relevant: Vec<SourceId> = opt.relevant_sources();
    let relevant_set: HashSet<SourceId> = relevant.iter().copied().collect();

    // Dense renumbering of the relevant sources.
    let mut dense = vec![usize::MAX; graph.sources().len()];
    for (i, &s) in relevant.iter().enumerate() {
        dense[s.index()] = i;
    }

    // Live source-level edges.
    let n = relevant.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges: Vec<(usize, usize, ArcMark)> = Vec::new();
    for arc in graph.arc_ids() {
        let mark = opt.mark(arc);
        if mark == ArcMark::Deleted {
            continue;
        }
        let from = graph.arc_from_source(arc);
        let to = graph.arc_to_source(arc);
        if !relevant_set.contains(&from) || !relevant_set.contains(&to) {
            return Err(CoreError::Internal(format!(
                "live arc touches irrelevant source {} or {}",
                graph.source(from).label,
                graph.source(to).label
            )));
        }
        let (f, t) = (dense[from.index()], dense[to.index()]);
        adj[f].push(t);
        edges.push((f, t, mark));
    }

    let comp = strongly_connected_components(&adj);
    let comp_count = comp.iter().copied().max().map_or(0, |m| m + 1);

    // Sanity: no strong arc inside a component.
    for &(f, t, mark) in &edges {
        if mark == ArcMark::Strong && comp[f] == comp[t] && f != t {
            return Err(CoreError::Internal(
                "strong arc inside a cyclic order group".to_string(),
            ));
        }
        if mark == ArcMark::Strong && f == t {
            return Err(CoreError::Internal(
                "strong self-loop on a source".to_string(),
            ));
        }
    }

    // Condensation edges + in-degrees for Kahn's algorithm.
    let mut comp_adj: Vec<HashSet<usize>> = vec![HashSet::new(); comp_count];
    let mut indegree = vec![0usize; comp_count];
    for &(f, t, _) in &edges {
        let (cf, ct) = (comp[f], comp[t]);
        if cf != ct && comp_adj[cf].insert(ct) {
            indegree[ct] += 1;
        }
    }

    // Members and join weight per component.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); comp_count];
    for (i, &c) in comp.iter().enumerate() {
        members[c].push(i);
    }
    let join_weight = |c: usize| -> usize {
        members[c]
            .iter()
            .map(|&i| {
                let s = relevant[i];
                let source = graph.source(s);
                // Join participation: variables of the atom occurring
                // elsewhere too; white sources weigh 0.
                match source.kind {
                    crate::SourceKind::QueryAtom { occurrence } => {
                        let query = graph.query();
                        let atom = &query.atoms()[occurrence];
                        atom.variables()
                            .filter(|&v| query.positions_of_var(v).len() >= 2)
                            .count()
                    }
                    crate::SourceKind::Relation => 0,
                }
            })
            .sum()
    };

    // Kahn with heuristic choice among ready components.
    let mut ready: Vec<usize> = (0..comp_count).filter(|&c| indegree[c] == 0).collect();
    let mut groups: Vec<Vec<SourceId>> = Vec::with_capacity(comp_count);
    let mut positions = vec![None; graph.sources().len()];
    let mut emitted = 0usize;
    while !ready.is_empty() {
        let pick_idx = match heuristic {
            OrderingHeuristic::JoinCountDesc => ready
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| {
                    let min_src = members[c].iter().map(|&i| relevant[i].0).min().unwrap_or(0);
                    (join_weight(c), std::cmp::Reverse(min_src))
                })
                .map(|(i, _)| i)
                .expect("ready is non-empty"),
            OrderingHeuristic::SourceIdAsc => ready
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| {
                    members[c]
                        .iter()
                        .map(|&i| relevant[i].0)
                        .min()
                        .unwrap_or(u32::MAX)
                })
                .map(|(i, _)| i)
                .expect("ready is non-empty"),
        };
        let c = ready.swap_remove(pick_idx);
        emitted += 1;
        let position = groups.len() + 1;
        let mut group: Vec<SourceId> = members[c].iter().map(|&i| relevant[i]).collect();
        group.sort();
        for &s in &group {
            positions[s.index()] = Some(position);
        }
        groups.push(group);
        for &next in &comp_adj[c] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                ready.push(next);
            }
        }
    }
    if emitted != comp_count {
        return Err(CoreError::Internal(
            "cycle escaped SCC condensation during ordering".to_string(),
        ));
    }

    Ok(SourceOrdering { positions, groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gfp, DGraph};
    use toorjah_catalog::Schema;
    use toorjah_query::{parse_query, preprocess};

    fn optimize(schema_text: &str, query_text: &str) -> OptimizedDGraph {
        let schema = Schema::parse(schema_text).unwrap();
        let q = parse_query(query_text, &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        let graph = DGraph::build(&pre).unwrap();
        let (sol, _) = gfp(&graph);
        OptimizedDGraph::new(graph, sol)
    }

    fn position_of(opt: &OptimizedDGraph, ord: &SourceOrdering, label: &str) -> usize {
        let s = opt
            .graph()
            .source_ids()
            .find(|&s| opt.graph().source(s).label == label)
            .unwrap_or_else(|| panic!("no source {label}"));
        ord.position(s)
            .unwrap_or_else(|| panic!("{label} unordered"))
    }

    /// Example 7: the only possible ordering is r_a ≺ r1 ≺ r2.
    #[test]
    fn example7_unique_ordering() {
        let opt = optimize(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let ord = order_sources(&opt, OrderingHeuristic::JoinCountDesc).unwrap();
        assert_eq!(ord.k(), 3);
        assert_eq!(position_of(&opt, &ord, "r_a(1)"), 1);
        assert_eq!(position_of(&opt, &ord, "r1(1)"), 2);
        assert_eq!(position_of(&opt, &ord, "r2(1)"), 3);
    }

    #[test]
    fn cyclic_sources_share_a_position() {
        let opt = optimize(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A) seed^o(A)",
            "q(A) <- r1(A, B), r2(B, C), r3(C, A), seed(A)",
        );
        let ord = order_sources(&opt, OrderingHeuristic::JoinCountDesc).unwrap();
        let p1 = position_of(&opt, &ord, "r1(1)");
        let p2 = position_of(&opt, &ord, "r2(1)");
        let p3 = position_of(&opt, &ord, "r3(1)");
        assert_eq!(p1, p2);
        assert_eq!(p2, p3);
        assert!(position_of(&opt, &ord, "seed(1)") < p1);
        assert_eq!(ord.k(), 2);
    }

    #[test]
    fn incomparable_free_sources_get_distinct_positions() {
        // Example 6: two free relations, no arcs — any order is admissible;
        // we emit a deterministic one with k = 2.
        let opt = optimize("r1^o(A) r2^o(B)", "q(X) <- r1(X), r2(Y)");
        let ord = order_sources(&opt, OrderingHeuristic::SourceIdAsc).unwrap();
        assert_eq!(ord.k(), 2);
        assert_ne!(
            position_of(&opt, &ord, "r1(1)"),
            position_of(&opt, &ord, "r2(1)")
        );
    }

    #[test]
    fn white_providers_precede_consumers() {
        let opt = optimize("r^io(A, B) w^oo(A, X)", "q(Y) <- r(X2, Y)");
        let ord = order_sources(&opt, OrderingHeuristic::JoinCountDesc).unwrap();
        assert!(position_of(&opt, &ord, "w") < position_of(&opt, &ord, "r(1)"));
    }

    #[test]
    fn groups_partition_relevant_sources() {
        let opt = optimize(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let ord = order_sources(&opt, OrderingHeuristic::JoinCountDesc).unwrap();
        let mut all: Vec<SourceId> = ord.groups().iter().flatten().copied().collect();
        all.sort();
        let mut relevant = opt.relevant_sources();
        relevant.sort();
        assert_eq!(all, relevant);
        // Irrelevant sources have no position.
        for s in opt.graph().source_ids() {
            if !relevant.contains(&s) {
                assert_eq!(ord.position(s), None);
            }
        }
    }

    #[test]
    fn both_heuristics_respect_constraints() {
        let opt = optimize(
            "pub1^io(Paper, Person) conf^ooo(Paper, C, Y) rev^ooi(Person, C, Y)",
            "q(R) <- pub1(P, R), conf(P, C, Y), rev(R, C, Y)",
        );
        for h in [
            OrderingHeuristic::JoinCountDesc,
            OrderingHeuristic::SourceIdAsc,
        ] {
            let ord = order_sources(&opt, h).unwrap();
            // Every live arc respects pos(from) <= pos(to); strong arcs are
            // strict.
            for arc in opt.graph().arc_ids() {
                if !opt.is_live(arc) {
                    continue;
                }
                let pf = ord.position(opt.graph().arc_from_source(arc)).unwrap();
                let pt = ord.position(opt.graph().arc_to_source(arc)).unwrap();
                assert!(pf <= pt);
                if opt.mark(arc) == ArcMark::Strong {
                    assert!(pf < pt);
                }
            }
        }
    }
}
