//! Runtime access-relevance metadata (§III relevance, carried to runtime).
//!
//! The optimized d-graph decides relevance per *relation* statically; which
//! individual *accesses* matter can in general only be decided during
//! execution ("Determining Relevance of Accesses at Runtime",
//! Benedikt–Gottlob–Senellart, arXiv:1104.0553) — and even relation-level
//! relevance is undecidable in full generality (Martinenghi,
//! arXiv:1401.0069). This module therefore computes a *conservative*
//! per-plan reachability summary the engine's evaluation kernel uses to
//! drop accesses whose outputs provably cannot reach the query head:
//!
//! * a cache is **terminal** when no column of it provides values to any
//!   domain predicate (its own or another cache's) — its tuples are
//!   consumed by the answer rule alone, never by the plan's
//!   dependency-graph arcs;
//! * each input position of a terminal query-atom cache carries its
//!   **semi-join partners**: the answer-rule caches at strictly earlier
//!   ordering positions whose literals share the variable at that
//!   position. By the time the cache is populated those partners are fully
//!   populated and final, so a binding value absent from every matching
//!   partner column can never participate in a satisfying assignment of
//!   the answer rule — and, the cache being terminal, the extraction feeds
//!   nothing else. Dropping the access is answer-preserving.
//!
//! The metadata depends only on the plan (program, caches, ordering
//! positions, domain providers), never on data, and is computed once at
//! plan-build time ([`crate::QueryPlan::relevance`]).

use std::collections::HashSet;

use toorjah_datalog::{DTerm, Literal, PredId, Program, Rule};

use crate::CacheInfo;

/// One semi-join partner of an input position: an answer-rule cache at a
/// strictly earlier ordering position sharing the variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SemijoinPartner {
    /// Index into [`crate::QueryPlan::caches`].
    pub cache: usize,
    /// The partner's cache predicate (its extension holds the tuples the
    /// runtime membership test probes).
    pub pred: PredId,
    /// The partner column carrying the shared variable.
    pub column: usize,
}

/// Runtime-relevance metadata for one cache of a plan.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CacheRelevance {
    /// `true` when no domain predicate consumes any column of this cache —
    /// its extraction results reach the query head only through the answer
    /// rule.
    pub terminal: bool,
    /// Per input position (aligned with [`CacheInfo::input_domains`]): the
    /// semi-join partners of the variable at that position.
    pub semijoins: Vec<Vec<SemijoinPartner>>,
    /// `true` when the kernel's relevance pruner can drop accesses to this
    /// cache: terminal, a query-atom (answer-rule) cache, not a constant
    /// source, and at least one input position has a partner.
    pub prunable: bool,
    /// Per *column* of the cache relation (full arity, outputs included):
    /// the semi-join partners of the variable at that column. The engine's
    /// `Magic` tier uses this to suppress *extracted tuples* — not just
    /// accesses — whose shared-variable value has no matching partner
    /// tuple: the partners sit at strictly earlier ordering positions and
    /// are final, and the cache is terminal, so such a tuple can never
    /// participate in a satisfying assignment of the answer rule.
    pub demand: Vec<Vec<SemijoinPartner>>,
    /// `true` when the `Magic` tier can suppress derivations into this
    /// cache: terminal, a query-atom cache, not a constant source, and at
    /// least one column has a partner.
    pub suppressible: bool,
}

/// Per-plan runtime-relevance metadata, one entry per cache.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PlanRelevance {
    caches: Vec<CacheRelevance>,
}

impl PlanRelevance {
    /// Analyzes a plan's caches: inverts the domain-provider arcs to find
    /// terminal caches, then collects semi-join partners from the answer
    /// rule and the ordering positions.
    pub fn analyze(program: &Program, answer_pred: PredId, caches: &[CacheInfo]) -> PlanRelevance {
        let answer_rule = program.rules_for(answer_pred).next();

        // Columns consumed by any domain predicate, as (cache index, column).
        let consumed: HashSet<(usize, usize)> = caches
            .iter()
            .flat_map(|c| &c.input_domains)
            .flat_map(|dp| &dp.providers)
            .map(|p| (p.cache, p.column))
            .collect();

        // The answer-rule literal of each query-atom cache (cache predicates
        // are distinct per occurrence, so the first match is the match).
        let literal_of: Vec<Option<&Literal>> = caches
            .iter()
            .map(|c| {
                answer_rule
                    .and_then(|rule: &Rule| rule.body.iter().find(|lit| lit.pred == c.cache_pred))
            })
            .collect();

        let entries = caches
            .iter()
            .enumerate()
            .map(|(idx, cache)| {
                let terminal = !consumed.iter().any(|&(c, _)| c == idx);
                // Partners of `term` (when it is a variable): answer-rule
                // caches at strictly earlier ordering positions whose
                // literal shares the variable.
                let partners_of = |term: &DTerm| {
                    let DTerm::Var(var) = *term else {
                        return Vec::new();
                    };
                    let mut partners = Vec::new();
                    for (other_idx, other) in caches.iter().enumerate() {
                        if other.position >= cache.position {
                            continue;
                        }
                        let Some(other_lit) = literal_of[other_idx] else {
                            continue;
                        };
                        for (column, term) in other_lit.terms.iter().enumerate() {
                            if *term == DTerm::Var(var) {
                                partners.push(SemijoinPartner {
                                    cache: other_idx,
                                    pred: other.cache_pred,
                                    column,
                                });
                            }
                        }
                    }
                    partners
                };
                let semijoins: Vec<Vec<SemijoinPartner>> = cache
                    .input_domains
                    .iter()
                    .map(|dp| match literal_of[idx] {
                        Some(lit) => partners_of(&lit.terms[dp.input_position]),
                        None => Vec::new(),
                    })
                    .collect();
                let demand: Vec<Vec<SemijoinPartner>> = match literal_of[idx] {
                    Some(lit) => lit.terms.iter().map(partners_of).collect(),
                    None => Vec::new(),
                };
                let prunable = terminal
                    && !cache.is_constant_source
                    && literal_of[idx].is_some()
                    && semijoins.iter().any(|p| !p.is_empty());
                let suppressible = terminal
                    && !cache.is_constant_source
                    && literal_of[idx].is_some()
                    && demand.iter().any(|p| !p.is_empty());
                CacheRelevance {
                    terminal,
                    semijoins,
                    prunable,
                    demand,
                    suppressible,
                }
            })
            .collect();
        PlanRelevance { caches: entries }
    }

    /// The metadata of one cache (by index into the plan's caches).
    pub fn cache(&self, idx: usize) -> &CacheRelevance {
        &self.caches[idx]
    }

    /// Whether the pruner can act on any cache of the plan at all.
    pub fn any_prunable(&self) -> bool {
        self.caches.iter().any(|c| c.prunable)
    }

    /// Whether the `Magic` tier can suppress derivations into any cache.
    pub fn any_suppressible(&self) -> bool {
        self.caches.iter().any(|c| c.suppressible)
    }

    /// Indexes of the prunable caches.
    pub fn prunable_caches(&self) -> Vec<usize> {
        (0..self.caches.len())
            .filter(|&i| self.caches[i].prunable)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan_query;
    use toorjah_catalog::Schema;
    use toorjah_query::parse_query;

    fn analyze(schema_text: &str, query_text: &str) -> (crate::QueryPlan, PlanRelevance) {
        let schema = Schema::parse(schema_text).unwrap();
        let q = parse_query(query_text, &schema).unwrap();
        let planned = plan_query(&q, &schema).unwrap();
        let plan = planned.plan;
        let rel = PlanRelevance::analyze(&plan.program, plan.answer_pred, &plan.caches);
        (plan, rel)
    }

    #[test]
    fn chain_last_cache_is_terminal_but_dominated() {
        // Example 5's plan: r2 is terminal; its only partner for B is r1,
        // which also feeds its domain pool — prunable in principle, and the
        // runtime test simply never fires (every pool value is in r1).
        let (plan, rel) = analyze(
            "r1^io(A, B) r2^io(B, C) r3^io(C, A)",
            "q(C) <- r1('a', B), r2(B, C)",
        );
        let r2 = plan.caches.iter().position(|c| c.label == "r2(1)").unwrap();
        assert!(rel.cache(r2).terminal);
        assert!(rel.cache(r2).prunable);
        // r1 feeds r2's pool: not terminal, not prunable.
        let r1 = plan.caches.iter().position(|c| c.label == "r1(1)").unwrap();
        assert!(!rel.cache(r1).terminal);
        assert!(!rel.cache(r1).prunable);
    }

    #[test]
    fn star_join_partners_cross_atoms() {
        // q(V, W) ← gen(K), probe(K, V), audit(K, W): probe and audit are
        // both terminal; the later of the two gets the other as a partner
        // for K in addition to gen.
        let (plan, rel) = analyze(
            "gen^o(K) probe^io(K, V) audit^io(K, W)",
            "q(V, W) <- gen(K), probe(K, V), audit(K, W)",
        );
        let by_label = |l: &str| plan.caches.iter().position(|c| c.label == l).unwrap();
        let probe = by_label("probe(1)");
        let audit = by_label("audit(1)");
        assert!(rel.cache(probe).terminal && rel.cache(audit).terminal);
        let (early, late) = if plan.caches[probe].position < plan.caches[audit].position {
            (probe, audit)
        } else {
            (audit, probe)
        };
        // The later cache sees both gen and the earlier sibling as
        // partners; the earlier one sees only gen.
        assert!(rel.cache(late).prunable);
        assert_eq!(rel.cache(late).semijoins.len(), 1);
        assert!(rel.cache(late).semijoins[0]
            .iter()
            .any(|p| p.cache == early));
        assert_eq!(rel.cache(early).semijoins[0].len(), 1);
        assert_eq!(rel.prunable_caches().len(), 2);
        assert!(rel.any_prunable());
    }

    #[test]
    fn demand_partners_cover_output_columns() {
        // A free relation has no input positions, so access pruning has
        // nothing to filter — but its K *column* still shares a variable
        // with the earlier gen cache, so the Magic tier can suppress
        // extracted tuples whose K never appeared in gen.
        let (plan, rel) = analyze("gen^o(K) out^oo(K, V)", "q(V) <- gen(K), out(K, V)");
        let out = plan
            .caches
            .iter()
            .position(|c| c.label == "out(1)")
            .unwrap();
        let gen = plan
            .caches
            .iter()
            .position(|c| c.label == "gen(1)")
            .unwrap();
        let entry = rel.cache(out);
        assert!(entry.terminal);
        assert!(!entry.prunable, "no input positions to filter");
        assert!(entry.suppressible, "but extracted tuples can be suppressed");
        assert_eq!(entry.demand.len(), 2, "one entry per column");
        assert!(entry.demand[0].iter().any(|p| p.cache == gen));
        assert!(entry.demand[1].is_empty(), "V is shared with nobody");
        assert!(rel.any_suppressible());
    }

    #[test]
    fn constant_sources_and_free_relations_are_not_prunable() {
        let (plan, rel) = analyze("r^io(A, B)", "q(B) <- r('a', B)");
        for (idx, cache) in plan.caches.iter().enumerate() {
            if cache.is_constant_source {
                assert!(!rel.cache(idx).prunable);
            }
        }
    }
}
