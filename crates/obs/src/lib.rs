//! Observability for toorjah: structured execution tracing and a lock-cheap
//! metrics registry.
//!
//! The engine's execution layers — the evaluation kernel's round loop, the
//! frontier dispatcher, the relevance pruner and the shared access cache —
//! are instrumented against the [`Obs`] handle defined here. The handle has
//! three states:
//!
//! * **disabled** ([`Obs::disabled`]) — a `None`; every emission site is one
//!   branch on a `Copy` option and touches nothing else. The hot path stays
//!   allocation-free and byte-identical (pinned by the engine's
//!   `alloc_probes` and equivalence suites).
//! * **metrics only** ([`Obs::enabled`]) — a [`Registry`] of counters,
//!   gauges and fixed-bucket latency histograms keyed by interned
//!   [`Symbol`]s; trace events are still skipped entirely.
//! * **tracing** ([`Obs::with_sink`]) — additionally every typed
//!   [`TraceEvent`] is stamped with a monotonic sequence id and handed to a
//!   [`TraceSink`] ([`RingBufferSink`] for in-process inspection,
//!   [`WriterSink`] for JSON-lines export).
//!
//! `Obs` is `Copy` so it can ride inside the engine's `Copy` option structs
//! and be shared across dispatcher worker threads without reference
//! counting: an enabled handle points at a leaked, process-lifetime
//! `ObsInner` — the same intentional-leak discipline the global
//! [`Interner`](toorjah_catalog::Interner) uses for symbol payloads. A
//! session enables observability once and keeps the handle for its
//! lifetime; handles are never created per query.
//!
//! [`Symbol`]: toorjah_catalog::Symbol

#![warn(missing_docs)]

mod event;
mod metrics;
mod sink;

pub use event::{EventKind, TraceEvent};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use sink::{RingBufferSink, TraceSink, WriterSink};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared state behind an enabled [`Obs`] handle: the sequence stamp,
/// the metrics registry and (when tracing) the sink.
struct ObsInner {
    seq: AtomicU64,
    metrics: Registry,
    sink: Option<Arc<dyn TraceSink>>,
}

/// A copyable observability handle threaded through the execution layers.
///
/// See the [crate docs](crate) for the three states. All methods are safe to
/// call in any state; in the disabled state every one of them is a single
/// branch.
///
/// ```
/// use toorjah_obs::{EventKind, Obs, RingBufferSink};
/// use std::sync::Arc;
///
/// let sink = Arc::new(RingBufferSink::new(16));
/// let obs = Obs::with_sink(Arc::clone(&sink) as Arc<_>);
/// obs.trace(1, || EventKind::RoundStart { requested: 3 });
/// obs.counter("kernel.rounds").unwrap().inc();
///
/// assert_eq!(sink.len(), 1);
/// let snapshot = obs.snapshot().unwrap();
/// assert_eq!(snapshot.counters[0].1, 1);
/// ```
#[derive(Clone, Copy, Default)]
pub struct Obs {
    inner: Option<&'static ObsInner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("tracing", &self.is_tracing())
            .finish()
    }
}

impl Obs {
    /// The inert handle: no metrics, no tracing, no allocation — every
    /// emission site short-circuits on a `None`. This is the default.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A metrics-only handle: counters/gauges/histograms are live, trace
    /// events are skipped without being built.
    ///
    /// The backing state is leaked to give the `Copy` handle a
    /// `'static` lifetime; callers create one handle per session, not per
    /// query.
    pub fn enabled() -> Self {
        Obs::build(None)
    }

    /// A tracing handle: metrics plus every [`TraceEvent`] delivered to
    /// `sink`, stamped with a monotonic sequence id.
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Self {
        Obs::build(Some(sink))
    }

    fn build(sink: Option<Arc<dyn TraceSink>>) -> Self {
        let inner: &'static ObsInner = Box::leak(Box::new(ObsInner {
            seq: AtomicU64::new(0),
            metrics: Registry::new(),
            sink,
        }));
        Obs { inner: Some(inner) }
    }

    /// Whether metrics (and possibly tracing) are live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether trace events reach a sink.
    pub fn is_tracing(&self) -> bool {
        matches!(self.inner, Some(inner) if inner.sink.is_some())
    }

    /// Emits one trace event. `kind` is only invoked when a sink is
    /// attached, so emission sites never pay for building the event (key
    /// clones included) in the disabled and metrics-only states.
    #[inline]
    pub fn trace(&self, round: u32, kind: impl FnOnce() -> EventKind) {
        if let Some(inner) = self.inner {
            if let Some(sink) = &inner.sink {
                let seq = inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
                sink.record(&TraceEvent {
                    seq,
                    round,
                    kind: kind(),
                });
            }
        }
    }

    /// Flushes the attached sink, if any.
    pub fn flush(&self) {
        if let Some(inner) = self.inner {
            if let Some(sink) = &inner.sink {
                sink.flush();
            }
        }
    }

    /// The live metrics registry, when enabled.
    pub fn registry(&self) -> Option<&'static Registry> {
        self.inner.map(|inner| &inner.metrics)
    }

    /// Resolves (creating on first use) the counter named `name`; `None`
    /// when disabled. Emission sites resolve once and bump the returned
    /// [`Counter`] lock-free.
    pub fn counter(&self, name: &str) -> Option<Arc<Counter>> {
        self.registry().map(|r| r.counter(name))
    }

    /// Resolves (creating on first use) the gauge named `name`; `None` when
    /// disabled.
    pub fn gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        self.registry().map(|r| r.gauge(name))
    }

    /// Resolves (creating on first use) the histogram named `name`; `None`
    /// when disabled.
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.registry().map(|r| r.histogram(name))
    }

    /// A point-in-time snapshot of every registered metric; `None` when
    /// disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.registry().map(Registry::snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_catalog::{tuple, RelationId};

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.is_tracing());
        assert!(obs.counter("x").is_none());
        assert!(obs.snapshot().is_none());
        obs.trace(1, || panic!("the event closure must never run"));
        obs.flush();
    }

    #[test]
    fn metrics_only_skips_event_construction() {
        let obs = Obs::enabled();
        assert!(obs.is_enabled());
        assert!(!obs.is_tracing());
        obs.trace(1, || panic!("no sink — the closure must not run"));
        obs.counter("a").unwrap().add(3);
        obs.gauge("g").unwrap().set(7);
        obs.histogram("h").unwrap().record(100);
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].1, 3);
        assert_eq!(snap.gauges[0].1, 7);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn tracing_stamps_monotonic_sequence_ids() {
        let sink = Arc::new(RingBufferSink::new(8));
        let obs = Obs::with_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        assert!(obs.is_tracing());
        let key = (RelationId(0), tuple!["a"]);
        obs.trace(1, || EventKind::RoundStart { requested: 1 });
        obs.trace(1, || EventKind::AccessRequested { key: key.clone() });
        obs.trace(1, || EventKind::RoundEnd { micros: 5 });
        let events = sink.events();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn copies_share_state() {
        let obs = Obs::enabled();
        let copy = obs;
        copy.counter("shared").unwrap().inc();
        obs.counter("shared").unwrap().inc();
        assert_eq!(obs.snapshot().unwrap().counters[0].1, 2);
    }
}
