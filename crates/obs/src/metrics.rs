//! The lock-cheap metrics registry: counters, gauges and fixed-bucket
//! latency histograms keyed by interned [`Symbol`]s.
//!
//! Registration (name → instrument) takes a short mutex; emission sites
//! resolve their instruments once (an `Arc` clone) and then update them
//! lock-free through relaxed atomics — the dispatcher's worker threads bump
//! shared histograms without ever contending on the registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use toorjah_catalog::Symbol;

use crate::event::push_json_string;

/// Number of histogram buckets: powers of two covering 1 µs … 16 ms, with
/// the last bucket absorbing everything slower.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A monotonically increasing counter.
#[derive(Default, Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge with a max-tracking update for contention-free
/// "worst observed" measurements.
#[derive(Default, Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is larger than the current value.
    #[inline]
    pub fn record_max(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram over microseconds.
///
/// Bucket `0` holds 0 µs observations; bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i)` µs; the last bucket is unbounded above. Recording is
/// one relaxed `fetch_add` per atomic touched.
#[derive(Default, Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

/// The bucket index for a `micros` observation.
fn bucket_index(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        (64 - micros.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Records one observation of `micros` microseconds.
    #[inline]
    pub fn record(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn total_us(&self) -> u64 {
        self.total_us.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts and totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count(),
            total_us: self.total_us(),
            buckets,
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, in microseconds.
    pub total_us: u64,
    /// Per-bucket observation counts; see [`Histogram`] for the bucket
    /// boundaries.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observation in microseconds; `None` before the first.
    pub fn mean_us(&self) -> Option<u64> {
        (self.count > 0).then(|| self.total_us / self.count)
    }
}

/// The instrument registry: named counters, gauges and histograms.
///
/// Names are interned to [`Symbol`]s; the maps are ordered by the symbols'
/// content-based `Ord`, so iteration (and therefore every serialized
/// snapshot) is alphabetical and stable.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<Symbol, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<Symbol, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<Symbol, Arc<Histogram>>>,
}

fn resolve<T: Default>(map: &Mutex<BTreeMap<Symbol, Arc<T>>>, name: &str) -> Arc<T> {
    let symbol = Symbol::intern(name);
    let mut map = map.lock().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(map.entry(symbol).or_default())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        resolve(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        resolve(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        resolve(&self.histograms, name)
    }

    /// A point-in-time snapshot of every instrument, alphabetically by
    /// name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, c)| (*name, c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, g)| (*name, g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, h)| (*name, h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time snapshot of a [`Registry`], alphabetically ordered by
/// instrument name for stable serialization.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(Symbol, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(Symbol, u64)>,
    /// `(name, snapshot)` per histogram.
    pub histograms: Vec<(Symbol, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, when registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, v)| *v)
    }

    /// The histogram named `name`, when registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, h)| h)
    }

    /// Appends the snapshot as one JSON object with the stable key order
    /// `counters`, `gauges`, `histograms`; each section's keys are
    /// alphabetical. Histograms serialize as
    /// `{"count":N,"total_us":N,"buckets":[...]}`.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(out, name.as_str());
            write!(out, ":{value}").expect("writing to a String cannot fail");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(out, name.as_str());
            write!(out, ":{value}").expect("writing to a String cannot fail");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(out, name.as_str());
            write!(
                out,
                ":{{\"count\":{},\"total_us\":{},\"buckets\":[",
                h.count, h.total_us
            )
            .expect("writing to a String cannot fail");
            for (j, bucket) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write!(out, "{bucket}").expect("writing to a String cannot fail");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1 << 13), 14);
        assert_eq!(bucket_index(1 << 14), 15, "16 ms and up share a bucket");
        assert_eq!(bucket_index(u64::MAX), 15);
    }

    #[test]
    fn histogram_accumulates() {
        let h = Histogram::default();
        for us in [0, 1, 3, 100, 1_000_000] {
            h.record(us);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.total_us, 1_000_104);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 5);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[15], 1);
        assert_eq!(snap.mean_us(), Some(200_020));
        let empty = HistogramSnapshot {
            count: 0,
            total_us: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        assert_eq!(empty.mean_us(), None);
    }

    #[test]
    fn registry_resolves_one_instrument_per_name() {
        let registry = Registry::new();
        let a = registry.counter("kernel.rounds");
        let b = registry.counter("kernel.rounds");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit one counter");
        registry.gauge("g").record_max(5);
        registry.gauge("g").record_max(3);
        assert_eq!(registry.gauge("g").get(), 5, "max update keeps the peak");
    }

    #[test]
    fn snapshot_is_alphabetical_and_serializes_stably() {
        let registry = Registry::new();
        registry.counter("zebra").inc();
        registry.counter("alpha").add(2);
        registry.gauge("wait").set(9);
        registry.histogram("lat").record(7);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zebra"], "content-ordered symbols");
        assert_eq!(snap.counter("alpha"), Some(2));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);

        let mut json = String::new();
        snap.write_json(&mut json);
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        let alpha = json.find("\"alpha\"").unwrap();
        let zebra = json.find("\"zebra\"").unwrap();
        assert!(alpha < zebra, "alphabetical key order: {json}");
        assert!(json.contains("\"gauges\":{\"wait\":9}"), "{json}");
        assert!(json.contains("\"lat\":{\"count\":1,\"total_us\":7,\"buckets\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn concurrent_bumps_are_lock_free_per_update() {
        let registry = Registry::new();
        let counter = registry.counter("c");
        let histogram = registry.histogram("h");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                let histogram = Arc::clone(&histogram);
                scope.spawn(move || {
                    for i in 0..1000 {
                        counter.inc();
                        histogram.record(i);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 8000);
        assert_eq!(histogram.count(), 8000);
        assert_eq!(histogram.snapshot().buckets.iter().sum::<u64>(), 8000);
    }
}
