//! The typed trace-event taxonomy and its JSON-lines rendering.

use toorjah_catalog::{AccessKey, Symbol, Value};

/// What happened, with the payload that identifies it. Key-carrying
/// variants hold the `(relation, binding)` access key of the paper's cost
/// model; durations are wall-clock microseconds.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A kernel round began with `requested` frontier entries (duplicates
    /// included, before relevance pruning).
    RoundStart {
        /// Requested frontier size.
        requested: usize,
    },
    /// The round's dispatch completed after `micros` microseconds.
    RoundEnd {
        /// Wall-clock duration of the round.
        micros: u64,
    },
    /// One frontier entry was requested by the evaluator. Every requested
    /// access is terminally resolved by exactly one of
    /// [`EventKind::AccessServedCache`], [`EventKind::AccessServedSource`],
    /// [`EventKind::AccessPruned`] or [`EventKind::AccessFailed`].
    AccessRequested {
        /// The access key.
        key: AccessKey,
    },
    /// A deduplicated access was handed to the dispatcher as part of batch
    /// `batch` (0-based within its round).
    AccessDispatched {
        /// The access key.
        key: AccessKey,
        /// 0-based batch index within the round.
        batch: usize,
    },
    /// The access was served without touching the source: retained in the
    /// cache, coalesced onto an in-flight load, or a duplicate within its
    /// frontier.
    AccessServedCache {
        /// The access key.
        key: AccessKey,
    },
    /// The access was performed against the source, extracting `tuples`
    /// tuples in (an attributed share of) `micros` microseconds.
    AccessServedSource {
        /// The access key.
        key: AccessKey,
        /// Attributed source latency.
        micros: u64,
        /// Number of extracted tuples.
        tuples: usize,
    },
    /// The kernel's runtime relevance filter dropped the access before
    /// dispatch.
    AccessPruned {
        /// The access key.
        key: AccessKey,
    },
    /// The access (or its batch) failed or was never attempted; the
    /// execution is about to surface an error.
    AccessFailed {
        /// The access key.
        key: AccessKey,
    },
    /// The cache's eviction policy discarded a retained extraction of
    /// `bytes` estimated bytes.
    CacheEvict {
        /// The evicted entry's access key.
        key: AccessKey,
        /// Estimated retained bytes freed.
        bytes: usize,
    },
    /// A caller coalesced onto an identical in-flight access instead of
    /// repeating it (the cache's single-flight path).
    BatchCoalesced {
        /// The access key.
        key: AccessKey,
    },
    /// An evaluator's round loop reached its fixpoint after `rounds`
    /// rounds (including the barren round that confirmed it).
    FixpointReached {
        /// Rounds executed.
        rounds: usize,
    },
    /// One semi-naive evaluation round completed having requested `delta`
    /// *new* frontier bindings — the round's delta. Emitted once per
    /// fixpoint step (and once per standalone kernel round), so the decay
    /// of the delta toward the fixpoint is visible in a trace.
    DeltaRound {
        /// New frontier bindings requested this round.
        delta: usize,
    },
    /// The query service accepted an execution-bearing request from a
    /// tenant session. Every accepted request is terminally resolved by
    /// exactly one of [`EventKind::RequestCompleted`] (it ran, successfully
    /// or with a typed error response) or [`EventKind::RequestRejected`]
    /// (admission control turned it away) — so at any instant
    /// `accepted = completed + rejected + in-flight`, and after a graceful
    /// drain the in-flight term is zero (validated by `trace_check`).
    RequestAccepted {
        /// The requesting tenant.
        tenant: Symbol,
        /// The request verb (`execute`, `ask`).
        verb: Symbol,
    },
    /// Admission control rejected the request: the in-flight cap and the
    /// bounded wait queue were both saturated. The client is told to retry
    /// after `retry_after_ms` milliseconds.
    RequestRejected {
        /// The requesting tenant.
        tenant: Symbol,
        /// The request verb (`execute`, `ask`).
        verb: Symbol,
        /// Suggested client back-off, milliseconds.
        retry_after_ms: u64,
    },
    /// An admitted request ran to completion — a full response or a typed
    /// error (budget exhaustion included) — after `micros` microseconds of
    /// wall-clock inside the service.
    RequestCompleted {
        /// The requesting tenant.
        tenant: Symbol,
        /// The request verb (`execute`, `ask`).
        verb: Symbol,
        /// Wall-clock from admission to response, microseconds.
        micros: u64,
    },
    /// A demand-driven (magic) execution began: the derivation was seeded
    /// with `seeds` bound constants, so only tuples the seeds transitively
    /// demand will be derived.
    DemandSeeded {
        /// Number of bound seed constants.
        seeds: usize,
    },
    /// A statement could not be evaluated demand-driven (e.g. it recurses
    /// through negation) and fell back to the named pruning level instead
    /// of silently mis-evaluating.
    RewriteFallback {
        /// The pruning level the execution fell back to (`"runtime"`).
        level: Symbol,
    },
}

impl EventKind {
    /// The stable snake_case name serialized as the `event` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RoundStart { .. } => "round_start",
            EventKind::RoundEnd { .. } => "round_end",
            EventKind::AccessRequested { .. } => "access_requested",
            EventKind::AccessDispatched { .. } => "access_dispatched",
            EventKind::AccessServedCache { .. } => "access_served_cache",
            EventKind::AccessServedSource { .. } => "access_served_source",
            EventKind::AccessPruned { .. } => "access_pruned",
            EventKind::AccessFailed { .. } => "access_failed",
            EventKind::CacheEvict { .. } => "cache_evict",
            EventKind::BatchCoalesced { .. } => "batch_coalesced",
            EventKind::FixpointReached { .. } => "fixpoint_reached",
            EventKind::DeltaRound { .. } => "delta_round",
            EventKind::RequestAccepted { .. } => "request_accepted",
            EventKind::RequestRejected { .. } => "request_rejected",
            EventKind::RequestCompleted { .. } => "request_completed",
            EventKind::DemandSeeded { .. } => "demand_seeded",
            EventKind::RewriteFallback { .. } => "rewrite_fallback",
        }
    }

    /// The access key, for key-carrying variants.
    pub fn key(&self) -> Option<&AccessKey> {
        match self {
            EventKind::AccessRequested { key }
            | EventKind::AccessDispatched { key, .. }
            | EventKind::AccessServedCache { key }
            | EventKind::AccessServedSource { key, .. }
            | EventKind::AccessPruned { key }
            | EventKind::AccessFailed { key }
            | EventKind::CacheEvict { key, .. }
            | EventKind::BatchCoalesced { key } => Some(key),
            EventKind::RoundStart { .. }
            | EventKind::RoundEnd { .. }
            | EventKind::FixpointReached { .. }
            | EventKind::DeltaRound { .. }
            | EventKind::RequestAccepted { .. }
            | EventKind::RequestRejected { .. }
            | EventKind::RequestCompleted { .. }
            | EventKind::DemandSeeded { .. }
            | EventKind::RewriteFallback { .. } => None,
        }
    }

    /// The `(tenant, verb)` pair, for the query-service request variants.
    pub fn request(&self) -> Option<(Symbol, Symbol)> {
        match self {
            EventKind::RequestAccepted { tenant, verb }
            | EventKind::RequestRejected { tenant, verb, .. }
            | EventKind::RequestCompleted { tenant, verb, .. } => Some((*tenant, *verb)),
            _ => None,
        }
    }
}

/// One trace event: a monotonic per-handle sequence id, the 1-based kernel
/// round it belongs to (0 for events outside a round, e.g. cache activity
/// from direct API use), and the typed payload.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Monotonic sequence id, 1-based per [`crate::Obs`] handle.
    pub seq: u64,
    /// 1-based kernel round; 0 outside any round.
    pub round: u32,
    /// The typed payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Appends this event as one JSON object (no trailing newline). Every
    /// line carries the uniform fields `seq`, `round`, `event` and `us`
    /// (`0` where no duration applies); key-carrying events add `relation`
    /// (numeric id) and `binding` (value array), and variants append their
    /// own payload fields.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        let micros = match self.kind {
            EventKind::RoundEnd { micros }
            | EventKind::AccessServedSource { micros, .. }
            | EventKind::RequestCompleted { micros, .. } => micros,
            _ => 0,
        };
        write!(
            out,
            "{{\"seq\":{},\"round\":{},\"event\":\"{}\",\"us\":{micros}",
            self.seq,
            self.round,
            self.kind.name()
        )
        .expect("writing to a String cannot fail");
        if let Some((relation, binding)) = self.kind.key() {
            write!(out, ",\"relation\":{},\"binding\":[", relation.0)
                .expect("writing to a String cannot fail");
            for (i, value) in binding.values().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match value {
                    Value::Int(n) => {
                        write!(out, "{n}").expect("writing to a String cannot fail");
                    }
                    Value::Str(s) => push_json_string(out, s.as_str()),
                }
            }
            out.push(']');
        }
        if let Some((tenant, verb)) = self.kind.request() {
            out.push_str(",\"tenant\":");
            push_json_string(out, tenant.as_str());
            out.push_str(",\"verb\":");
            push_json_string(out, verb.as_str());
        }
        match self.kind {
            EventKind::RoundStart { requested } => {
                write!(out, ",\"requested\":{requested}").expect("writing to a String cannot fail");
            }
            EventKind::AccessDispatched { batch, .. } => {
                write!(out, ",\"batch\":{batch}").expect("writing to a String cannot fail");
            }
            EventKind::AccessServedSource { tuples, .. } => {
                write!(out, ",\"tuples\":{tuples}").expect("writing to a String cannot fail");
            }
            EventKind::CacheEvict { bytes, .. } => {
                write!(out, ",\"bytes\":{bytes}").expect("writing to a String cannot fail");
            }
            EventKind::FixpointReached { rounds } => {
                write!(out, ",\"rounds\":{rounds}").expect("writing to a String cannot fail");
            }
            EventKind::DeltaRound { delta } => {
                write!(out, ",\"delta\":{delta}").expect("writing to a String cannot fail");
            }
            EventKind::RequestRejected { retry_after_ms, .. } => {
                write!(out, ",\"retry_after_ms\":{retry_after_ms}")
                    .expect("writing to a String cannot fail");
            }
            EventKind::DemandSeeded { seeds } => {
                write!(out, ",\"seeds\":{seeds}").expect("writing to a String cannot fail");
            }
            EventKind::RewriteFallback { level } => {
                out.push_str(",\"level\":");
                push_json_string(out, level.as_str());
            }
            _ => {}
        }
        out.push('}');
    }
}

/// Appends `s` as a JSON string literal with the minimal escapes.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_catalog::{tuple, RelationId};

    fn line(event: &TraceEvent) -> String {
        let mut out = String::new();
        event.write_json(&mut out);
        out
    }

    #[test]
    fn uniform_fields_are_always_present() {
        let events = vec![
            TraceEvent {
                seq: 1,
                round: 1,
                kind: EventKind::RoundStart { requested: 3 },
            },
            TraceEvent {
                seq: 2,
                round: 1,
                kind: EventKind::AccessServedSource {
                    key: (RelationId(4), tuple!["modugno", 1958]),
                    micros: 250,
                    tuples: 2,
                },
            },
            TraceEvent {
                seq: 3,
                round: 0,
                kind: EventKind::FixpointReached { rounds: 2 },
            },
        ];
        for event in &events {
            let text = line(event);
            for field in ["\"seq\":", "\"round\":", "\"event\":\"", "\"us\":"] {
                assert!(text.contains(field), "missing {field} in {text}");
            }
            assert_eq!(text.matches('{').count(), text.matches('}').count());
        }
        assert!(line(&events[1]).contains("\"relation\":4"));
        assert!(line(&events[1]).contains("\"binding\":[\"modugno\",1958]"));
        assert!(line(&events[1]).contains("\"us\":250"));
        assert!(line(&events[1]).contains("\"tuples\":2"));
        assert!(line(&events[2]).contains("\"rounds\":2"));
    }

    #[test]
    fn binding_strings_are_escaped() {
        let event = TraceEvent {
            seq: 9,
            round: 2,
            kind: EventKind::CacheEvict {
                key: (RelationId(0), tuple!["he said \"hi\"\n"]),
                bytes: 128,
            },
        };
        let text = line(&event);
        assert!(text.contains("\\\"hi\\\"\\n"), "{text}");
        assert!(text.contains("\"bytes\":128"));
    }

    #[test]
    fn every_kind_has_a_stable_name() {
        let key = (RelationId(0), tuple![1]);
        let kinds = [
            EventKind::RoundStart { requested: 0 },
            EventKind::RoundEnd { micros: 0 },
            EventKind::AccessRequested { key: key.clone() },
            EventKind::AccessDispatched {
                key: key.clone(),
                batch: 0,
            },
            EventKind::AccessServedCache { key: key.clone() },
            EventKind::AccessServedSource {
                key: key.clone(),
                micros: 0,
                tuples: 0,
            },
            EventKind::AccessPruned { key: key.clone() },
            EventKind::AccessFailed { key: key.clone() },
            EventKind::CacheEvict {
                key: key.clone(),
                bytes: 0,
            },
            EventKind::BatchCoalesced { key },
            EventKind::FixpointReached { rounds: 0 },
            EventKind::DeltaRound { delta: 0 },
            EventKind::RequestAccepted {
                tenant: Symbol::intern("t0"),
                verb: Symbol::intern("execute"),
            },
            EventKind::RequestRejected {
                tenant: Symbol::intern("t0"),
                verb: Symbol::intern("execute"),
                retry_after_ms: 0,
            },
            EventKind::RequestCompleted {
                tenant: Symbol::intern("t0"),
                verb: Symbol::intern("execute"),
                micros: 0,
            },
            EventKind::DemandSeeded { seeds: 0 },
            EventKind::RewriteFallback {
                level: Symbol::intern("runtime"),
            },
        ];
        let names: std::collections::HashSet<&str> = kinds.iter().map(EventKind::name).collect();
        assert_eq!(names.len(), kinds.len(), "names are distinct");
        assert!(kinds.iter().all(|k| !k.name().is_empty()));
    }

    #[test]
    fn request_events_carry_tenant_and_verb() {
        let accepted = TraceEvent {
            seq: 1,
            round: 0,
            kind: EventKind::RequestAccepted {
                tenant: Symbol::intern("acme"),
                verb: Symbol::intern("execute"),
            },
        };
        let text = line(&accepted);
        assert!(text.contains("\"event\":\"request_accepted\""), "{text}");
        assert!(text.contains("\"tenant\":\"acme\""), "{text}");
        assert!(text.contains("\"verb\":\"execute\""), "{text}");

        let rejected = TraceEvent {
            seq: 2,
            round: 0,
            kind: EventKind::RequestRejected {
                tenant: Symbol::intern("acme"),
                verb: Symbol::intern("ask"),
                retry_after_ms: 50,
            },
        };
        let text = line(&rejected);
        assert!(text.contains("\"retry_after_ms\":50"), "{text}");

        let completed = TraceEvent {
            seq: 3,
            round: 0,
            kind: EventKind::RequestCompleted {
                tenant: Symbol::intern("acme"),
                verb: Symbol::intern("execute"),
                micros: 1234,
            },
        };
        let text = line(&completed);
        // The request duration rides in the uniform `us` field.
        assert!(text.contains("\"us\":1234"), "{text}");
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
