//! Trace sinks: where emitted [`TraceEvent`]s go.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

use crate::TraceEvent;

/// Receives every emitted trace event.
///
/// Contract: `record` is called from the emitting thread (the engine emits
/// from the coordinating thread only, in deterministic order), must not
/// panic, and should return quickly — slow exporters should buffer and
/// drain in [`TraceSink::flush`]. Implementations are `Send + Sync` so one
/// sink can serve a whole session.
pub trait TraceSink: Send + Sync {
    /// Delivers one event.
    fn record(&self, event: &TraceEvent);

    /// Drains any buffered output; called at the end of an execution and
    /// before the process exits. The default does nothing.
    fn flush(&self) {}
}

/// A bounded in-memory sink retaining the `capacity` most recent events —
/// the in-process inspection surface tests and embedders use.
pub struct RingBufferSink {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl RingBufferSink {
    /// A ring retaining at most `capacity` events (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether no event is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, event: &TraceEvent) {
        let mut events = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

/// A JSON-lines exporter: each event is rendered with
/// [`TraceEvent::write_json`] and written as one line to the wrapped
/// writer. Write errors are counted, not propagated — tracing must never
/// fail an execution.
pub struct WriterSink<W: Write + Send> {
    writer: Mutex<W>,
    errors: Mutex<usize>,
}

impl<W: Write + Send> WriterSink<W> {
    /// Wraps `writer` (a `File`, `Stderr`, `Vec<u8>`, ...).
    pub fn new(writer: W) -> Self {
        WriterSink {
            writer: Mutex::new(writer),
            errors: Mutex::new(0),
        }
    }

    /// Number of write errors swallowed so far.
    pub fn errors(&self) -> usize {
        *self
            .errors
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the sink and returns the wrapped writer (flushing first).
    pub fn into_inner(self) -> W {
        let mut writer = self
            .writer
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writer.flush();
        writer
    }
}

impl<W: Write + Send> TraceSink for WriterSink<W> {
    fn record(&self, event: &TraceEvent) {
        let mut line = String::with_capacity(128);
        event.write_json(&mut line);
        line.push('\n');
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if writer.write_all(line.as_bytes()).is_err() {
            *self
                .errors
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
        }
    }

    fn flush(&self) {
        let _ = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn event(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            round: 1,
            kind: EventKind::RoundStart { requested: 1 },
        }
    }

    #[test]
    fn ring_buffer_drops_oldest_beyond_capacity() {
        let sink = RingBufferSink::new(3);
        assert!(sink.is_empty());
        for seq in 1..=5 {
            sink.record(&event(seq));
        }
        let seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn writer_sink_emits_one_json_line_per_event() {
        let sink = WriterSink::new(Vec::new());
        sink.record(&event(1));
        sink.record(&event(2));
        sink.flush();
        assert_eq!(sink.errors(), 0);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"event\":\"round_start\""));
        }
    }

    #[test]
    fn sinks_are_object_safe_and_shareable() {
        use std::sync::Arc;
        let sink: Arc<dyn TraceSink> = Arc::new(RingBufferSink::new(4));
        let clone = Arc::clone(&sink);
        std::thread::scope(|scope| {
            scope.spawn(move || clone.record(&event(1)));
        });
        sink.record(&event(2));
        sink.flush();
    }
}
