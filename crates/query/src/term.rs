//! Terms of conjunctive queries: variables and constants.

use std::fmt;

use toorjah_catalog::Value;

/// Identifier of a variable inside one [`crate::ConjunctiveQuery`].
///
/// Variables are interned per query; ids are dense indexes into the query's
/// variable-name table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term: a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable, e.g. `X`.
    Var(VarId),
    /// A constant, e.g. `'volare'` or `2008`.
    Const(Value),
}

impl Term {
    /// `true` when the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// `true` when the term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The variable id, if this is a variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant value, if this is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Self {
        Term::Var(v)
    }
}

impl fmt::Display for Term {
    /// Renders constants with [`Value`]'s notation and variables as `?n`;
    /// [`crate::ConjunctiveQuery`] renders variables with their names instead.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{}", v.0),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Term::Var(VarId(3));
        let c = Term::Const(Value::from(2008));
        assert!(v.is_var() && !v.is_const());
        assert!(c.is_const() && !c.is_var());
        assert_eq!(v.as_var(), Some(VarId(3)));
        assert_eq!(c.as_const(), Some(&Value::from(2008)));
        assert_eq!(v.as_const(), None);
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Term::from(Value::from("x")), Term::Const(Value::from("x")));
        assert_eq!(Term::from(VarId(0)), Term::Var(VarId(0)));
    }

    #[test]
    fn display() {
        assert_eq!(Term::Var(VarId(2)).to_string(), "?2");
        assert_eq!(Term::Const(Value::from("a")).to_string(), "'a'");
    }
}
