//! The §VI *connection query* classifier.
//!
//! Prior optimization work ([Li & Chang 2001] and related) handles only
//! *connection queries*, a proper subset of UCQs:
//!
//! > *"In a connection query, the attributes with the same abstract domain
//! > must be all in join, and they must also be either all selected (with a
//! > constant) or all non-selected."*
//!
//! Concretely: for every abstract domain occurring in the query body, all
//! positions of that domain must carry **one and the same term** — a single
//! shared variable (all in join, non-selected) or a single shared constant
//! (all selected). The paper reports that ≈70% of its 10,000 synthetic
//! queries — and the hand-written query `q3` — are *not* connection queries,
//! motivating the CQ-general technique.

use std::collections::HashMap;

use toorjah_catalog::{DomainId, Schema};

use crate::{ConjunctiveQuery, Term};

/// `true` when `query` is a connection query (see module docs).
pub fn is_connection_query(query: &ConjunctiveQuery, schema: &Schema) -> bool {
    connection_violations(query, schema).is_empty()
}

/// The abstract domains witnessing that `query` is *not* a connection query:
/// domains whose positions carry two or more distinct terms.
pub fn connection_violations(query: &ConjunctiveQuery, schema: &Schema) -> Vec<DomainId> {
    let mut term_of_domain: HashMap<DomainId, &Term> = HashMap::new();
    let mut violations: Vec<DomainId> = Vec::new();
    for atom in query.atoms() {
        let rel = schema.relation(atom.relation());
        for (k, t) in atom.terms().iter().enumerate() {
            let d = rel.domain(k);
            match term_of_domain.get(&d) {
                None => {
                    term_of_domain.insert(d, t);
                }
                Some(prev) if *prev == t => {}
                Some(_) => {
                    if !violations.contains(&d) {
                        violations.push(d);
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn parent_self_join_is_connection() {
        let sc = Schema::parse("parent^oo(Person, Person)").unwrap();
        let q = parse_query("q(X) <- parent(X, X)", &sc).unwrap();
        assert!(is_connection_query(&q, &sc));
    }

    #[test]
    fn parent_child_is_not_connection() {
        // Asking for parent-child pairs uses two distinct Person variables.
        let sc = Schema::parse("parent^oo(Person, Person)").unwrap();
        let q = parse_query("q(X, Y) <- parent(X, Y)", &sc).unwrap();
        assert!(!is_connection_query(&q, &sc));
        assert_eq!(connection_violations(&q, &sc).len(), 1);
    }

    #[test]
    fn ground_connection_query() {
        let sc = Schema::parse("parent^oo(Person, Person)").unwrap();
        let q = parse_query("q() <- parent('ann', 'ann')", &sc).unwrap();
        assert!(is_connection_query(&q, &sc));
    }

    #[test]
    fn mixed_constant_and_variable_violates() {
        let sc = Schema::parse("parent^oo(Person, Person)").unwrap();
        let q = parse_query("q(X) <- parent(X, 'ann')", &sc).unwrap();
        assert!(!is_connection_query(&q, &sc));
    }

    #[test]
    fn all_domains_joined_is_connection() {
        let sc = Schema::parse("r^oo(A, B) s^oo(B, A)").unwrap();
        let q = parse_query("q(X) <- r(X, Y), s(Y, X)", &sc).unwrap();
        assert!(is_connection_query(&q, &sc));
    }

    #[test]
    fn paper_q3_is_not_a_connection_query() {
        let sc = Schema::parse(
            "pub1^io(Paper, Person)
             conf^ooo(Paper, ConfName, Year)
             rev^ooi(Person, ConfName, Year)
             rev_icde^iio(Person, Paper, Eval)
             sub^oi(Paper, Person)",
        )
        .unwrap();
        let q3 = parse_query(
            "q3(R) <- rev_icde(R, S, acc), sub(S, A), pub1(P, R), pub1(P, A), \
             rev(R, icde, 2008), conf(P, icde, Y)",
            &sc,
        )
        .unwrap();
        assert!(!is_connection_query(&q3, &sc));
        // Several domains are violated: Person carries R and A, Paper carries
        // S and P, Year carries 2008 and Y.
        assert!(connection_violations(&q3, &sc).len() >= 3);
    }

    #[test]
    fn distinct_domains_never_interact() {
        let sc = Schema::parse("r^oo(A, B) s^oo(C, D)").unwrap();
        let q = parse_query("q(X) <- r(X, Y), s(Z, W)", &sc).unwrap();
        assert!(is_connection_query(&q, &sc));
    }
}
