//! Constant elimination (§III of the paper).
//!
//! > *"Every constant `a` in the query acts as an artificial relation `ℓa`,
//! > with a single attribute that is an output attribute, whose content is
//! > exactly the tuple ⟨a⟩. A constant-free query equivalent to the original
//! > one is easily obtained: for example, the query `q(Y) ← r(a, Y)` can be
//! > replaced by `q(Y) ← r(X, Y), ℓa(X)`."*
//!
//! One artificial relation is created per distinct `(constant, abstract
//! domain)` pair (a constant may in principle occur at positions of different
//! domains, which need distinct — differently typed — artificial relations).
//! All occurrences of the same pair share one fresh variable, so the
//! artificial atom appears once and the equality is preserved through the
//! join.

use std::collections::HashMap;

use toorjah_catalog::{AccessPattern, DomainId, RelationId, Schema, Value};

use crate::{Atom, ConjunctiveQuery, QueryError, Term, VarId};

/// An artificial relation `ℓa` introduced for a constant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConstantRelation {
    /// Id of the artificial relation in the *extended* schema.
    pub relation: RelationId,
    /// Its generated name (e.g. `r_rej`).
    pub name: String,
    /// The eliminated constant; the relation's extension is exactly `⟨value⟩`.
    pub value: Value,
    /// The abstract domain of the positions the constant occurred at.
    pub domain: DomainId,
    /// The fresh variable replacing the constant in the rewritten query.
    pub variable: VarId,
}

/// Result of [`preprocess`]: a constant-free query over an extended schema.
#[derive(Clone, Debug)]
pub struct PreprocessedQuery {
    /// The original schema extended with one free unary relation per
    /// eliminated constant. When the query was already constant-free this is
    /// a plain clone of the input schema.
    pub schema: Schema,
    /// The equivalent constant-free query. Atoms `0..original_atom_count`
    /// correspond positionally to the original query's atoms; the artificial
    /// atoms follow.
    pub query: ConjunctiveQuery,
    /// The artificial relations, in introduction order.
    pub constant_relations: Vec<ConstantRelation>,
    /// Number of atoms of the original query.
    pub original_atom_count: usize,
}

impl PreprocessedQuery {
    /// `true` when the atom at `index` is an artificial constant atom.
    pub fn is_constant_atom(&self, index: usize) -> bool {
        index >= self.original_atom_count
    }

    /// The constant relation for a relation id, if it is artificial.
    pub fn constant_relation(&self, id: RelationId) -> Option<&ConstantRelation> {
        self.constant_relations.iter().find(|c| c.relation == id)
    }
}

/// Eliminates constants from `query`, extending `schema` with artificial
/// free unary relations (§III preprocessing step).
///
/// ```
/// use toorjah_catalog::Schema;
/// use toorjah_query::{parse_query, preprocess};
///
/// let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
/// let q = parse_query("q(C) <- r1('a', B), r2(B, C)", &schema).unwrap();
/// let pre = preprocess(&q, &schema).unwrap();
/// assert!(pre.query.is_constant_free());
/// assert_eq!(pre.constant_relations.len(), 1);
/// assert_eq!(
///     pre.query.display(&pre.schema).to_string(),
///     "q(C) ← r1(K_a, B), r2(B, C), r_a(K_a)",
/// );
/// ```
pub fn preprocess(
    query: &ConjunctiveQuery,
    schema: &Schema,
) -> Result<PreprocessedQuery, QueryError> {
    let constants = query.constants(schema);
    if constants.is_empty() {
        return Ok(PreprocessedQuery {
            schema: schema.clone(),
            query: query.clone(),
            constant_relations: Vec::new(),
            original_atom_count: query.atoms().len(),
        });
    }

    // Allocate fresh variables and relation names per (constant, domain).
    let mut var_names: Vec<String> = query.var_names().to_vec();
    let mut fresh_specs: Vec<(Value, DomainId, VarId, String)> = Vec::new();
    let mut used_names: Vec<String> = Vec::new();
    for (value, domain) in &constants {
        let var = VarId(var_names.len() as u32);
        let var_name = fresh_name(&var_names, &format!("K_{}", sanitize(value)));
        var_names.push(var_name);
        let rel_name = fresh_relation_name(schema, &used_names, value, *domain);
        used_names.push(rel_name.clone());
        fresh_specs.push((*value, *domain, var, rel_name));
    }

    // Extend the schema.
    let extended = schema.extend(
        fresh_specs
            .iter()
            .map(|(_, d, _, name)| (name.clone(), AccessPattern::all_output(1), vec![*d])),
    )?;

    let lookup: HashMap<(Value, DomainId), VarId> = fresh_specs
        .iter()
        .map(|(v, d, var, _)| ((*v, *d), *var))
        .collect();

    // Rewrite the body, replacing constants by the fresh variables.
    let mut atoms = Vec::with_capacity(query.atoms().len() + fresh_specs.len());
    for atom in query.atoms() {
        let rel = schema.relation(atom.relation());
        let terms = atom
            .terms()
            .iter()
            .enumerate()
            .map(|(k, t)| match t {
                Term::Const(c) => Term::Var(lookup[&(*c, rel.domain(k))]),
                Term::Var(v) => Term::Var(*v),
            })
            .collect();
        atoms.push(Atom::new(atom.relation(), terms));
    }
    // Append the artificial atoms.
    let mut constant_relations = Vec::with_capacity(fresh_specs.len());
    for (value, domain, var, name) in fresh_specs {
        let rel = extended
            .relation_id(&name)
            .expect("artificial relation was just added");
        atoms.push(Atom::new(rel, vec![Term::Var(var)]));
        constant_relations.push(ConstantRelation {
            relation: rel,
            name,
            value,
            domain,
            variable: var,
        });
    }

    let rewritten = ConjunctiveQuery::from_parts(
        &extended,
        query.head_name(),
        query.head().to_vec(),
        atoms,
        var_names,
    )?;

    Ok(PreprocessedQuery {
        schema: extended,
        query: rewritten,
        constant_relations,
        original_atom_count: query.atoms().len(),
    })
}

/// ASCII-sanitizes a constant for use inside generated identifiers.
fn sanitize(value: &Value) -> String {
    match value {
        Value::Int(i) if *i < 0 => format!("m{}", -i),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => {
            let cleaned: String = s
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            if cleaned.is_empty() {
                "const".to_string()
            } else {
                cleaned
            }
        }
    }
}

fn fresh_name(existing: &[String], base: &str) -> String {
    if !existing.iter().any(|n| n == base) {
        return base.to_string();
    }
    for i in 2.. {
        let candidate = format!("{base}_{i}");
        if !existing.iter().any(|n| n == &candidate) {
            return candidate;
        }
    }
    unreachable!()
}

fn fresh_relation_name(
    schema: &Schema,
    used: &[String],
    value: &Value,
    _domain: DomainId,
) -> String {
    let base = format!("r_{}", sanitize(value));
    let taken = |name: &str| schema.relation_id(name).is_some() || used.iter().any(|u| u == name);
    if !taken(&base) {
        return base;
    }
    for i in 2.. {
        let candidate = format!("{base}_{i}");
        if !taken(&candidate) {
            return candidate;
        }
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn constant_free_query_is_untouched() {
        let schema = Schema::parse("r1^io(A, B) r2^io(B, C)").unwrap();
        let q = parse_query("q(C) <- r1(A, B), r2(B, C)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        assert_eq!(pre.query, q);
        assert!(pre.constant_relations.is_empty());
        assert_eq!(pre.schema.relation_count(), 2);
    }

    #[test]
    fn example4_preprocessing() {
        // Example 4: q(C) ← r1(a, B), r2(B, C) becomes
        //            q(C) ← ra(A), r1(A, B), r2(B, C).
        let schema = Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap();
        let q = parse_query("q(C) <- r1('a', B), r2(B, C)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        assert!(pre.query.is_constant_free());
        assert_eq!(pre.query.atoms().len(), 3);
        assert_eq!(pre.original_atom_count, 2);
        assert!(pre.is_constant_atom(2));
        assert!(!pre.is_constant_atom(0));
        let cr = &pre.constant_relations[0];
        assert_eq!(cr.value, Value::from("a"));
        assert_eq!(pre.schema.domains().name(cr.domain), "A");
        assert_eq!(pre.schema.relation(cr.relation).name(), "r_a");
        assert!(pre.schema.relation(cr.relation).is_free());
        assert!(pre.constant_relation(cr.relation).is_some());
    }

    #[test]
    fn repeated_constant_shares_one_relation() {
        // q3-style: 'icde' occurs twice at ConfName positions.
        let schema =
            Schema::parse("rev^ooi(Person, ConfName, Year) conf^ooo(Paper, ConfName, Year)")
                .unwrap();
        let q = parse_query("q(R) <- rev(R, icde, Y), conf(P, icde, Y)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        assert_eq!(pre.constant_relations.len(), 1);
        // Both occurrences now share the fresh variable → still joined.
        let v = pre.constant_relations[0].variable;
        assert_eq!(pre.query.positions_of_var(v).len(), 3); // 2 original + ℓ atom
    }

    #[test]
    fn same_constant_in_two_domains_gets_two_relations() {
        let schema = Schema::parse("r^oo(A, B)").unwrap();
        let q = parse_query("q(X) <- r(X, Y), r(Z, W), r(X, V)", &schema).unwrap();
        // Build a query with the same constant at A- and B-positions.
        let q = {
            let _ = q;
            parse_query("q(Y) <- r(c, Y), r(Z, c)", &schema).unwrap()
        };
        let pre = preprocess(&q, &schema).unwrap();
        assert_eq!(pre.constant_relations.len(), 2);
        let names: Vec<_> = pre
            .constant_relations
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(names[0], "r_c");
        assert_eq!(names[1], "r_c_2");
    }

    #[test]
    fn name_collisions_with_schema_relations_avoided() {
        let schema = Schema::parse("r_a^oo(A, B) r^io(A, B)").unwrap();
        let q = parse_query("q(Y) <- r('a', Y)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        assert_eq!(pre.constant_relations[0].name, "r_a_2");
    }

    #[test]
    fn integer_and_odd_constants_sanitized() {
        let schema = Schema::parse("r^ioo(Y, A, B) s^oi(A, N)").unwrap();
        let q = parse_query("q(B) <- r(2008, A, B), s(A, -3)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        let names: Vec<_> = pre
            .constant_relations
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert!(names.contains(&"r_2008".to_string()));
        assert!(names.contains(&"r_m3".to_string()));
    }

    #[test]
    fn head_is_preserved() {
        let schema = Schema::parse("r1^io(A, B)").unwrap();
        let q = parse_query("q(B) <- r1('a', B)", &schema).unwrap();
        let pre = preprocess(&q, &schema).unwrap();
        assert_eq!(pre.query.head(), q.head());
        assert_eq!(pre.query.head_name(), "q");
    }

    #[test]
    fn string_sanitization_handles_specials() {
        assert_eq!(sanitize(&Value::from("hello world!")), "hello_world_");
        assert_eq!(sanitize(&Value::from("")), "const");
        assert_eq!(sanitize(&Value::from(-17)), "m17");
    }
}
