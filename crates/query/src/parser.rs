//! Text parser for the paper's query notation.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query   := head ("<-" | ":-" | "←") body
//! head    := ident "(" [ variable { "," variable } ] ")"
//! body    := literal { "," literal }
//! literal := [ "!" | "¬" ] atom
//! atom    := ident "(" [ term { "," term } ] ")"
//! term    := variable | constant
//! ```
//!
//! Identifiers starting with an uppercase letter (or `_`) are **variables**;
//! `_` alone is an anonymous variable (fresh per occurrence). Constants are
//! single-quoted strings (`'volare'`), integers (`2008`), or
//! lowercase-initial identifiers (`rej`, `icde` — the paper's style).
//!
//! Negated literals (`!banned(P, C)` or `¬banned(P, C)`) are accepted only
//! by [`parse_negated_query`]; [`parse_query`] rejects them so a plain
//! conjunctive query stays plain.

use std::collections::HashMap;

use toorjah_catalog::{Schema, Value};

use crate::{Atom, ConjunctiveQuery, NegatedQuery, QueryError, Term, VarId};

/// Parses a conjunctive query against a schema.
///
/// ```
/// use toorjah_catalog::Schema;
/// use toorjah_query::parse_query;
///
/// let schema = Schema::parse(
///     "rev_icde^iio(Person, Paper, Eval)
///      conf^ooo(Paper, ConfName, Year)
///      rev^ooi(Person, ConfName, Year)").unwrap();
/// let q2 = parse_query(
///     "q2(R) <- rev_icde(R, P, rej), conf(P, C, Y), rev(R, C, Y)",
///     &schema,
/// ).unwrap();
/// assert_eq!(q2.atoms().len(), 3);
/// ```
pub fn parse_query(text: &str, schema: &Schema) -> Result<ConjunctiveQuery, QueryError> {
    let (query, negated) = Parser::new(text).parse(schema)?;
    if !negated.is_empty() {
        return Err(QueryError::Parse {
            fragment: text.to_string(),
            reason: "negated literals are not allowed in a plain conjunctive query \
                     (use a negated statement)"
                .to_string(),
        });
    }
    Ok(query)
}

/// Parses a conjunctive query with safe negation: body literals prefixed
/// with `!` (or `¬`) become negated atoms, validated by
/// [`NegatedQuery::new`] (every negated variable must occur positively).
///
/// ```
/// use toorjah_catalog::Schema;
/// use toorjah_query::parse_negated_query;
///
/// let schema = Schema::parse("works^oo(P, C) banned^io(P, C)").unwrap();
/// let q = parse_negated_query("q(P) <- works(P, C), !banned(P, C)", &schema).unwrap();
/// assert_eq!(q.positive().atoms().len(), 1);
/// assert_eq!(q.negated().len(), 1);
/// ```
pub fn parse_negated_query(text: &str, schema: &Schema) -> Result<NegatedQuery, QueryError> {
    let (positive, negated) = Parser::new(text).parse(schema)?;
    NegatedQuery::new(positive, negated, schema)
}

struct Parser<'t> {
    text: &'t str,
    chars: Vec<char>,
    pos: usize,
}

impl<'t> Parser<'t> {
    fn new(text: &'t str) -> Self {
        Parser {
            text,
            chars: text.chars().collect(),
            pos: 0,
        }
    }

    fn error(&self, reason: impl Into<String>) -> QueryError {
        QueryError::Parse {
            fragment: self.text.to_string(),
            reason: reason.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), QueryError> {
        self.skip_ws();
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected {c:?} at offset {}", self.pos)))
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error(format!("expected an identifier at offset {start}")));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn arrow(&mut self) -> Result<(), QueryError> {
        self.skip_ws();
        if self.eat('←') {
            return Ok(());
        }
        if self.eat('<') && self.eat('-') {
            return Ok(());
        }
        if self.eat(':') && self.eat('-') {
            return Ok(());
        }
        Err(self.error("expected '<-', ':-' or '←' after the head"))
    }

    /// Parses head and body, returning the positive query plus any negated
    /// atoms (`!`-prefixed literals). Callers decide whether negation is
    /// allowed.
    fn parse(mut self, schema: &Schema) -> Result<(ConjunctiveQuery, Vec<Atom>), QueryError> {
        let mut vars = VarTable::default();

        // Head.
        let head_name = self.ident()?;
        self.expect('(')?;
        let mut head = Vec::new();
        self.skip_ws();
        if !self.eat(')') {
            loop {
                let term = self.term(&mut vars)?;
                match term {
                    Term::Var(v) => head.push(v),
                    Term::Const(_) => return Err(QueryError::ConstantInHead),
                }
                self.skip_ws();
                if self.eat(')') {
                    break;
                }
                self.expect(',')?;
            }
        }
        self.arrow()?;

        // Body.
        let mut atoms = Vec::new();
        let mut negated = Vec::new();
        loop {
            self.skip_ws();
            let is_negated = self.eat('!') || self.eat('¬');
            let name = self.ident()?;
            let rel = schema
                .relation_id(&name)
                .ok_or_else(|| QueryError::UnknownRelation(name.clone()))?;
            self.expect('(')?;
            let mut terms = Vec::new();
            self.skip_ws();
            if !self.eat(')') {
                loop {
                    terms.push(self.term(&mut vars)?);
                    self.skip_ws();
                    if self.eat(')') {
                        break;
                    }
                    self.expect(',')?;
                }
            }
            if is_negated {
                negated.push(Atom::new(rel, terms));
            } else {
                atoms.push(Atom::new(rel, terms));
            }
            self.skip_ws();
            if !self.eat(',') {
                break;
            }
        }
        self.skip_ws();
        if self.pos != self.chars.len() {
            return Err(self.error(format!("trailing input at offset {}", self.pos)));
        }

        let query = ConjunctiveQuery::from_parts(schema, head_name, head, atoms, vars.names)?;
        Ok((query, negated))
    }

    fn term(&mut self, vars: &mut VarTable) -> Result<Term, QueryError> {
        self.skip_ws();
        match self.peek() {
            Some('\'') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == '\'' {
                        break;
                    }
                    self.pos += 1;
                }
                if self.peek() != Some('\'') {
                    return Err(self.error("unterminated string constant"));
                }
                let s: String = self.chars[start..self.pos].iter().collect();
                self.pos += 1;
                Ok(Term::Const(Value::str(s)))
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                if c == '-' {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    self.pos += 1;
                }
                let s: String = self.chars[start..self.pos].iter().collect();
                let n: i64 = s
                    .parse()
                    .map_err(|_| self.error(format!("invalid integer constant {s:?}")))?;
                Ok(Term::Const(Value::int(n)))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let name = self.ident()?;
                if name == "_" {
                    Ok(Term::Var(vars.fresh_anonymous()))
                } else if name.starts_with(|c: char| c.is_uppercase() || c == '_') {
                    Ok(Term::Var(vars.intern(&name)))
                } else {
                    Ok(Term::Const(Value::str(name)))
                }
            }
            other => Err(self.error(format!("expected a term, found {other:?}"))),
        }
    }
}

#[derive(Default)]
struct VarTable {
    names: Vec<String>,
    by_name: HashMap<String, VarId>,
    anon_count: usize,
}

impl VarTable {
    fn intern(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = VarId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), v);
        v
    }

    fn fresh_anonymous(&mut self) -> VarId {
        let v = VarId(self.names.len() as u32);
        self.anon_count += 1;
        self.names.push(format!("_{}", self.anon_count));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::parse(
            "pub1^io(Paper, Person)
             conf^ooo(Paper, ConfName, Year)
             rev^ooi(Person, ConfName, Year)
             rev_icde^iio(Person, Paper, Eval)
             sub^oi(Paper, Person)",
        )
        .unwrap()
    }

    #[test]
    fn parses_paper_q1() {
        let s = schema();
        let q = parse_query("q1(R) <- pub1(P, R), conf(P, C, Y), rev(R, C, Y)", &s).unwrap();
        assert_eq!(q.atoms().len(), 3);
        assert_eq!(q.head().len(), 1);
        assert!(q.is_constant_free());
    }

    #[test]
    fn parses_paper_q3_with_constants() {
        let s = schema();
        let q = parse_query(
            "q3(R) <- rev_icde(R, S, acc), sub(S, A), pub1(P, R), pub1(P, A), \
             rev(R, icde, 2008), conf(P, icde, Y)",
            &s,
        )
        .unwrap();
        assert_eq!(q.atoms().len(), 6);
        // Constants: acc (Eval), icde (ConfName), 2008 (Year).
        assert_eq!(q.constants(&s).len(), 3);
    }

    #[test]
    fn lowercase_identifiers_are_string_constants() {
        let s = schema();
        let q = parse_query("q(R) <- rev_icde(R, P, rej), pub1(P, R)", &s).unwrap();
        let c = &q.constants(&s)[0];
        assert_eq!(c.0, Value::from("rej"));
    }

    #[test]
    fn integers_parse_signed() {
        let s = Schema::parse("r^oo(A, N)").unwrap();
        let q = parse_query("q(X) <- r(X, -5)", &s).unwrap();
        assert_eq!(q.constants(&s)[0].0, Value::from(-5));
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let s = schema();
        let q = parse_query("q(R) <- pub1(_, R), pub1(_, R)", &s).unwrap();
        // The two `_` must not join.
        assert_eq!(q.join_variables().len(), 1); // only R
        assert_eq!(q.var_count(), 3);
    }

    #[test]
    fn alternative_arrows() {
        let s = schema();
        for arrow in ["<-", ":-", "←"] {
            let text = format!("q(R) {arrow} pub1(P, R)");
            assert!(parse_query(&text, &s).is_ok(), "arrow {arrow}");
        }
    }

    #[test]
    fn boolean_query_allowed() {
        let s = schema();
        let q = parse_query("q() <- conf(P, C, Y)", &s).unwrap();
        assert!(q.head().is_empty());
    }

    #[test]
    fn errors_are_reported() {
        let s = schema();
        assert!(matches!(
            parse_query("q(R) <- nope(R)", &s),
            Err(QueryError::UnknownRelation(_))
        ));
        assert!(matches!(
            parse_query("q('c') <- pub1(P, R)", &s),
            Err(QueryError::ConstantInHead)
        ));
        assert!(parse_query("q(R) pub1(P, R)", &s).is_err()); // missing arrow
        assert!(parse_query("q(R) <- pub1(P, R", &s).is_err()); // missing paren
        assert!(parse_query("q(R) <- pub1(P, R) garbage", &s).is_err());
        assert!(parse_query("q(R) <- pub1('unterminated, R)", &s).is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let s = schema();
        let q1 = parse_query("q(R)<-pub1(P,R),conf(P,C,Y)", &s).unwrap();
        let q2 = parse_query("  q ( R )  <-  pub1 ( P , R ) , conf ( P , C , Y ) ", &s).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn negated_literals_parse_only_through_the_negated_entry_point() {
        let s = Schema::parse("works^oo(P, C) banned^io(P, C)").unwrap();
        let q = parse_negated_query("q(P) <- works(P, C), !banned(P, C)", &s).unwrap();
        assert_eq!(q.positive().atoms().len(), 1);
        assert_eq!(q.negated().len(), 1);
        // The unicode negation sign works too.
        let q2 = parse_negated_query("q(P) <- works(P, C), ¬banned(P, C)", &s).unwrap();
        assert_eq!(q, q2);
        // A plain parse rejects the same text.
        assert!(matches!(
            parse_query("q(P) <- works(P, C), !banned(P, C)", &s),
            Err(QueryError::Parse { .. })
        ));
        // Safety is still validated: W never occurs positively.
        assert!(matches!(
            parse_negated_query("q(P) <- works(P, C), !banned(P, W)", &s),
            Err(QueryError::UnsafeNegation { .. })
        ));
    }

    #[test]
    fn negated_query_with_constants_in_negated_atom() {
        let s = Schema::parse("works^oo(P, C) banned^io(P, C)").unwrap();
        let q = parse_negated_query("q(P) <- works(P, C), !banned(P, 'milan')", &s).unwrap();
        assert_eq!(q.negated().len(), 1);
    }

    #[test]
    fn repeated_variable_in_head() {
        let s = Schema::parse("r^oo(A, A2)").unwrap();
        let q = parse_query("q(X, X) <- r(X, Y)", &s).unwrap();
        assert_eq!(q.head().len(), 2);
        assert_eq!(q.head()[0], q.head()[1]);
    }
}
