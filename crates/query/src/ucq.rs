//! Unions of conjunctive queries (§II).
//!
//! A UCQ of arity *n* is a set of CQs with the same head predicate and arity;
//! its answer over a database is the union of the member answers. The paper's
//! optimization is defined for CQs; UCQ support plans each disjunct
//! independently and unions the answers (the extension mentioned in §VII).

use std::fmt;

use toorjah_catalog::Schema;

use crate::{ConjunctiveQuery, QueryError};

/// A union of conjunctive queries with a common head arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionQuery {
    cqs: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Builds a UCQ, validating that all members share one head arity.
    pub fn new(cqs: Vec<ConjunctiveQuery>) -> Result<Self, QueryError> {
        if cqs.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        let arity = cqs[0].head().len();
        for cq in &cqs[1..] {
            if cq.head().len() != arity {
                return Err(QueryError::MixedHeadArity {
                    expected: arity,
                    got: cq.head().len(),
                });
            }
        }
        Ok(UnionQuery { cqs })
    }

    /// The member CQs.
    pub fn cqs(&self) -> &[ConjunctiveQuery] {
        &self.cqs
    }

    /// Head arity shared by all members.
    pub fn arity(&self) -> usize {
        self.cqs[0].head().len()
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.cqs.len()
    }

    /// Whether the union is empty (never true for validated values).
    pub fn is_empty(&self) -> bool {
        self.cqs.is_empty()
    }

    /// Renders all disjuncts, one per line.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        DisplayUcq { q: self, schema }
    }
}

impl From<ConjunctiveQuery> for UnionQuery {
    fn from(cq: ConjunctiveQuery) -> Self {
        UnionQuery { cqs: vec![cq] }
    }
}

struct DisplayUcq<'a> {
    q: &'a UnionQuery,
    schema: &'a Schema,
}

impl fmt::Display for DisplayUcq<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, cq) in self.q.cqs.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{}", cq.display(self.schema))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn union_of_two() {
        let sc = Schema::parse("r^oo(A, B) s^oo(A, B)").unwrap();
        let q1 = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        let q2 = parse_query("q(X) <- s(X, Y)", &sc).unwrap();
        let u = UnionQuery::new(vec![q1, q2]).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.arity(), 1);
        assert!(!u.is_empty());
        let text = u.display(&sc).to_string();
        assert!(text.contains("r(X, Y)") && text.contains("s(X, Y)"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let sc = Schema::parse("r^oo(A, B)").unwrap();
        let q1 = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        let q2 = parse_query("q(X, Y) <- r(X, Y)", &sc).unwrap();
        assert!(matches!(
            UnionQuery::new(vec![q1, q2]),
            Err(QueryError::MixedHeadArity { .. })
        ));
    }

    #[test]
    fn empty_union_rejected() {
        assert!(UnionQuery::new(vec![]).is_err());
    }

    #[test]
    fn from_single_cq() {
        let sc = Schema::parse("r^oo(A, B)").unwrap();
        let q = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        let u: UnionQuery = q.into();
        assert_eq!(u.len(), 1);
    }
}
