//! CQ containment and equivalence via the Chandra–Merlin theorem.

use crate::{find_homomorphism, ConjunctiveQuery};

/// `true` when `q1 ⊆ q2`: for every database `D`, `q1(D) ⊆ q2(D)`.
///
/// By Chandra–Merlin, this holds iff there is a homomorphism from `q2` onto
/// `q1` (a *containment mapping*). Both queries must range over the same
/// schema for the relation ids to be comparable.
pub fn is_contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    find_homomorphism(q2, q1).is_some()
}

/// `true` when `q1 ≡ q2` (containment in both directions).
pub fn is_equivalent_to(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    is_contained_in(q1, q2) && is_contained_in(q2, q1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use toorjah_catalog::Schema;

    fn schema() -> Schema {
        Schema::parse("r^oo(A, B) s^oo(B, C)").unwrap()
    }

    #[test]
    fn adding_atoms_restricts() {
        let sc = schema();
        let small = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        let big = parse_query("q(X) <- r(X, Y), s(Y, Z)", &sc).unwrap();
        assert!(is_contained_in(&big, &small));
        assert!(!is_contained_in(&small, &big));
        assert!(!is_equivalent_to(&small, &big));
    }

    #[test]
    fn redundant_atom_is_equivalent() {
        let sc = schema();
        let q1 = parse_query("q(X) <- r(X, Y), r(X, Y2)", &sc).unwrap();
        let q2 = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        assert!(is_equivalent_to(&q1, &q2));
    }

    #[test]
    fn constant_specializes() {
        let sc = schema();
        let general = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        let specific = parse_query("q(X) <- r(X, 'b')", &sc).unwrap();
        assert!(is_contained_in(&specific, &general));
        assert!(!is_contained_in(&general, &specific));
    }

    #[test]
    fn reflexive() {
        let sc = schema();
        let q = parse_query("q(X) <- r(X, Y), s(Y, Z)", &sc).unwrap();
        assert!(is_equivalent_to(&q, &q));
    }

    #[test]
    fn renamed_variables_are_equivalent() {
        let sc = schema();
        let q1 = parse_query("q(X) <- r(X, Y), s(Y, Z)", &sc).unwrap();
        let q2 = parse_query("q(U) <- r(U, V), s(V, W)", &sc).unwrap();
        assert!(is_equivalent_to(&q1, &q2));
    }
}
