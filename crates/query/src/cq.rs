//! Conjunctive queries `q(X̄) ← conj(X̄, Ȳ)` (§II of the paper).

use std::collections::HashMap;
use std::fmt;

use toorjah_catalog::{DomainId, RelationId, Schema, Value};

use crate::{Atom, QueryError, Term, VarId};

/// A conjunctive query resolved against a schema.
///
/// Invariants (validated at construction):
/// * every atom's term count equals its relation's arity;
/// * the body is non-empty;
/// * every head variable occurs in the body (*safety*);
/// * every variable occurs only at positions with one abstract domain.
///
/// ```
/// use toorjah_catalog::Schema;
/// use toorjah_query::parse_query;
///
/// let schema = Schema::parse(
///     "r1^ioo(Artist, Nation, Year) r2^oio(Title, Year, Artist)").unwrap();
/// let q = parse_query("q(N) <- r1(A, N, Y1), r2('volare', Y2, A)", &schema).unwrap();
/// assert_eq!(q.head().len(), 1);
/// assert_eq!(q.atoms().len(), 2);
/// assert_eq!(
///     q.display(&schema).to_string(),
///     "q(N) ← r1(A, N, Y1), r2('volare', Y2, A)",
/// );
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    head_name: String,
    head: Vec<VarId>,
    atoms: Vec<Atom>,
    var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Builds and validates a CQ from raw parts.
    ///
    /// `var_names[i]` is the name of `VarId(i)`; every `VarId` mentioned in
    /// `head` or `atoms` must index into `var_names`.
    pub fn from_parts(
        schema: &Schema,
        head_name: impl Into<String>,
        head: Vec<VarId>,
        atoms: Vec<Atom>,
        var_names: Vec<String>,
    ) -> Result<Self, QueryError> {
        let q = ConjunctiveQuery {
            head_name: head_name.into(),
            head,
            atoms,
            var_names,
        };
        q.validate(schema)?;
        Ok(q)
    }

    fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        if self.atoms.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        // Arity of every atom.
        for atom in &self.atoms {
            let rel = schema.relation(atom.relation());
            if atom.arity() != rel.arity() {
                return Err(QueryError::AtomArity {
                    relation: rel.name().to_string(),
                    expected: rel.arity(),
                    got: atom.arity(),
                });
            }
        }
        // Safety: head variables occur in the body.
        for &h in &self.head {
            let occurs = self.atoms.iter().any(|a| a.variables().any(|v| v == h));
            if !occurs {
                return Err(QueryError::UnsafeHead {
                    variable: self.var_name(h).to_string(),
                });
            }
        }
        // Abstract-domain consistency per variable.
        let mut domain_of: HashMap<VarId, DomainId> = HashMap::new();
        for atom in &self.atoms {
            let rel = schema.relation(atom.relation());
            for (k, t) in atom.terms().iter().enumerate() {
                if let Some(v) = t.as_var() {
                    let d = rel.domain(k);
                    match domain_of.get(&v) {
                        None => {
                            domain_of.insert(v, d);
                        }
                        Some(&prev) if prev == d => {}
                        Some(&prev) => {
                            return Err(QueryError::DomainConflict {
                                variable: self.var_name(v).to_string(),
                                first: schema.domains().name(prev).to_string(),
                                second: schema.domains().name(d).to_string(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The head predicate name (usually `q`).
    pub fn head_name(&self) -> &str {
        &self.head_name
    }

    /// The head variables `X̄`.
    pub fn head(&self) -> &[VarId] {
        &self.head
    }

    /// The body atoms in order; the index of an atom is its *occurrence*.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of distinct variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// The name of a variable.
    ///
    /// # Panics
    /// Panics if `v` does not belong to this query.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// All variable names, indexed by [`VarId`].
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// The abstract domain of each variable (`None` for variables that do
    /// not occur in the body, which validation rules out for head variables).
    pub fn var_domains(&self, schema: &Schema) -> Vec<Option<DomainId>> {
        let mut out = vec![None; self.var_names.len()];
        for atom in &self.atoms {
            let rel = schema.relation(atom.relation());
            for (k, t) in atom.terms().iter().enumerate() {
                if let Some(v) = t.as_var() {
                    out[v.index()] = Some(rel.domain(k));
                }
            }
        }
        out
    }

    /// Distinct constants occurring in the body, each with the abstract
    /// domain of (one of) the positions it occurs at.
    ///
    /// A constant may occur at positions of several domains; one entry is
    /// returned per distinct `(value, domain)` pair, in first-occurrence
    /// order.
    pub fn constants(&self, schema: &Schema) -> Vec<(Value, DomainId)> {
        let mut seen = Vec::new();
        for atom in &self.atoms {
            let rel = schema.relation(atom.relation());
            for (k, t) in atom.terms().iter().enumerate() {
                if let Some(c) = t.as_const() {
                    let entry = (*c, rel.domain(k));
                    if !seen.contains(&entry) {
                        seen.push(entry);
                    }
                }
            }
        }
        seen
    }

    /// `true` when no constant occurs in the body.
    pub fn is_constant_free(&self) -> bool {
        self.atoms.iter().all(|a| !a.has_constants())
    }

    /// Positions `(occurrence, position)` at which `v` occurs.
    pub fn positions_of_var(&self, v: VarId) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, atom) in self.atoms.iter().enumerate() {
            for k in atom.positions_of(v) {
                out.push((i, k));
            }
        }
        out
    }

    /// Variables that occur at two or more positions (join variables).
    pub fn join_variables(&self) -> Vec<VarId> {
        (0..self.var_names.len() as u32)
            .map(VarId)
            .filter(|&v| self.positions_of_var(v).len() >= 2)
            .collect()
    }

    /// Whether the query contains at least one join (a variable shared by
    /// two positions). Used by the §V workload filter ("contains at least
    /// one join").
    pub fn has_join(&self) -> bool {
        !self.join_variables().is_empty()
    }

    /// Number of occurrences of `rel` in the body.
    pub fn occurrences_of(&self, rel: RelationId) -> usize {
        self.atoms.iter().filter(|a| a.relation() == rel).count()
    }

    /// Distinct relations occurring in the body.
    pub fn relations(&self) -> Vec<RelationId> {
        let mut out: Vec<RelationId> = Vec::new();
        for a in &self.atoms {
            if !out.contains(&a.relation()) {
                out.push(a.relation());
            }
        }
        out
    }

    /// A copy of the query keeping only the atoms at `kept` (indices into
    /// [`ConjunctiveQuery::atoms`]). Head and variable table are preserved;
    /// the caller must ensure the result is still safe before using it as a
    /// standalone query (minimization checks candidate removals itself).
    pub fn with_atoms(&self, kept: &[usize]) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head_name: self.head_name.clone(),
            head: self.head.clone(),
            atoms: kept.iter().map(|&i| self.atoms[i].clone()).collect(),
            var_names: self.var_names.clone(),
        }
    }

    /// Renders the query in the paper's notation, e.g.
    /// `q(C) ← r1('a', B), r2(B, C)`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        DisplayCq { q: self, schema }
    }
}

struct DisplayCq<'a> {
    q: &'a ConjunctiveQuery,
    schema: &'a Schema,
}

impl fmt::Display for DisplayCq<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.q.head_name)?;
        for (i, v) in self.q.head.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(self.q.var_name(*v))?;
        }
        f.write_str(") ← ")?;
        for (i, atom) in self.q.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(&atom.render(self.schema, &self.q.var_names))?;
        }
        Ok(())
    }
}

/// Convenience builder for constructing CQs programmatically.
///
/// ```
/// use toorjah_catalog::{Schema, Value};
/// use toorjah_query::CqBuilder;
///
/// let schema = Schema::parse("r1^io(A, B) r2^io(B, C)").unwrap();
/// let q = CqBuilder::new(&schema, "q")
///     .head_var("C")
///     .atom("r1", |t| vec![t.constant(Value::from("a")), t.var("B")]).unwrap()
///     .atom("r2", |t| vec![t.var("B"), t.var("C")]).unwrap()
///     .finish().unwrap();
/// assert_eq!(q.display(&schema).to_string(), "q(C) ← r1('a', B), r2(B, C)");
/// ```
pub struct CqBuilder<'s> {
    schema: &'s Schema,
    head_name: String,
    head_names: Vec<String>,
    var_names: Vec<String>,
    by_name: HashMap<String, VarId>,
    atoms: Vec<Atom>,
    error: Option<QueryError>,
}

/// Term factory handed to [`CqBuilder::atom`] closures.
pub struct TermFactory<'b> {
    var_names: &'b mut Vec<String>,
    by_name: &'b mut HashMap<String, VarId>,
}

impl TermFactory<'_> {
    /// A variable term, interning the name.
    pub fn var(&mut self, name: &str) -> Term {
        if let Some(&v) = self.by_name.get(name) {
            return Term::Var(v);
        }
        let v = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        self.by_name.insert(name.to_string(), v);
        Term::Var(v)
    }

    /// A constant term.
    pub fn constant(&mut self, value: Value) -> Term {
        Term::Const(value)
    }
}

impl<'s> CqBuilder<'s> {
    /// Starts a query with the given head predicate name.
    pub fn new(schema: &'s Schema, head_name: &str) -> Self {
        CqBuilder {
            schema,
            head_name: head_name.to_string(),
            head_names: Vec::new(),
            var_names: Vec::new(),
            by_name: HashMap::new(),
            atoms: Vec::new(),
            error: None,
        }
    }

    /// Appends a head variable (by name); chainable.
    pub fn head_var(mut self, name: &str) -> Self {
        self.head_names.push(name.to_string());
        self
    }

    /// Appends a body atom. The closure receives a [`TermFactory`] for
    /// creating variable/constant terms.
    pub fn atom(
        mut self,
        relation: &str,
        f: impl FnOnce(&mut TermFactory<'_>) -> Vec<Term>,
    ) -> Result<Self, QueryError> {
        let rel = self
            .schema
            .relation_id(relation)
            .ok_or_else(|| QueryError::UnknownRelation(relation.to_string()))?;
        let mut factory = TermFactory {
            var_names: &mut self.var_names,
            by_name: &mut self.by_name,
        };
        let terms = f(&mut factory);
        self.atoms.push(Atom::new(rel, terms));
        Ok(self)
    }

    /// Validates and returns the query.
    pub fn finish(mut self) -> Result<ConjunctiveQuery, QueryError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut head = Vec::with_capacity(self.head_names.len());
        for name in &self.head_names {
            match self.by_name.get(name) {
                Some(&v) => head.push(v),
                None => {
                    return Err(QueryError::UnsafeHead {
                        variable: name.clone(),
                    })
                }
            }
        }
        ConjunctiveQuery::from_parts(
            self.schema,
            self.head_name,
            head,
            self.atoms,
            self.var_names,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn schema() -> Schema {
        Schema::parse("r1^io(A, B) r2^io(B, C) r3^io(C, A)").unwrap()
    }

    #[test]
    fn example3_query_builds() {
        // q(C) ← r1(a, B), r2(B, C) from Example 3.
        let s = schema();
        let q = parse_query("q(C) <- r1('a', B), r2(B, C)", &s).unwrap();
        assert_eq!(q.head().len(), 1);
        assert!(!q.is_constant_free());
        assert_eq!(q.constants(&s).len(), 1);
        assert_eq!(q.relations().len(), 2);
    }

    #[test]
    fn join_variables_detected() {
        let s = schema();
        let q = parse_query("q(C) <- r1('a', B), r2(B, C)", &s).unwrap();
        let joins = q.join_variables();
        assert_eq!(joins.len(), 1);
        assert_eq!(q.var_name(joins[0]), "B");
        assert!(q.has_join());
    }

    #[test]
    fn no_join_query() {
        let s = Schema::parse("r1^o(A) r2^o(B)").unwrap();
        let q = parse_query("q(X) <- r1(X), r2(Y)", &s).unwrap();
        assert!(!q.has_join());
    }

    #[test]
    fn unsafe_head_rejected() {
        let s = schema();
        let err = parse_query("q(Z) <- r1('a', B)", &s).unwrap_err();
        assert!(matches!(err, QueryError::UnsafeHead { .. }));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = schema();
        let err = parse_query("q(B) <- r1('a', B, C)", &s).unwrap_err();
        assert!(matches!(err, QueryError::AtomArity { .. }));
    }

    #[test]
    fn domain_conflict_rejected() {
        // X would have to be both A (r1 pos 0) and B (r1 pos 1).
        let s = schema();
        let err = parse_query("q(X) <- r1(X, X)", &s).unwrap_err();
        assert!(matches!(err, QueryError::DomainConflict { .. }));
    }

    #[test]
    fn same_domain_self_join_allowed() {
        let s = Schema::parse("parent^oo(Person, Person)").unwrap();
        let q = parse_query("q(X) <- parent(X, X)", &s).unwrap();
        assert_eq!(q.positions_of_var(q.head()[0]).len(), 2);
    }

    #[test]
    fn empty_body_rejected() {
        let s = schema();
        let err = ConjunctiveQuery::from_parts(&s, "q", vec![], vec![], vec![]).unwrap_err();
        assert!(matches!(err, QueryError::EmptyBody));
    }

    #[test]
    fn with_atoms_projects_body() {
        let s = schema();
        let q = parse_query("q(C) <- r1('a', B), r2(B, C), r3(C, A)", &s).unwrap();
        let sub = q.with_atoms(&[0, 1]);
        assert_eq!(sub.atoms().len(), 2);
        assert_eq!(sub.head(), q.head());
    }

    #[test]
    fn occurrences_counted_per_atom() {
        let s = Schema::parse("pub1^io(Paper, Person) sub^oi(Paper, Person)").unwrap();
        let q = parse_query("q(R) <- pub1(P, R), pub1(P, A), sub(S, A)", &s).unwrap();
        let pub1 = s.relation_id("pub1").unwrap();
        assert_eq!(q.occurrences_of(pub1), 2);
        assert_eq!(q.relations().len(), 2);
    }

    #[test]
    fn var_domains_resolved() {
        let s = schema();
        let q = parse_query("q(C) <- r1('a', B), r2(B, C)", &s).unwrap();
        let doms = q.var_domains(&s);
        let b = q.var_names().iter().position(|n| n == "B").unwrap();
        assert_eq!(doms[b], Some(s.domains().lookup("B").unwrap()));
    }

    #[test]
    fn builder_rejects_unknown_relation() {
        let s = schema();
        let res = CqBuilder::new(&s, "q").atom("nope", |t| vec![t.var("X")]);
        assert!(res.is_err());
    }

    #[test]
    fn display_matches_paper_notation() {
        let s = schema();
        let q = parse_query("q(C)<-r1('a',B),r2(B,C)", &s).unwrap();
        assert_eq!(q.display(&s).to_string(), "q(C) ← r1('a', B), r2(B, C)");
    }
}
