//! Homomorphisms between conjunctive queries (Chandra–Merlin machinery).

use std::collections::HashMap;

use crate::{ConjunctiveQuery, Term, VarId};

/// A homomorphism: a substitution from the variables of one query to terms
/// of another.
pub type Homomorphism = HashMap<VarId, Term>;

/// Finds a homomorphism `h` from `from` onto `onto`, i.e. a variable
/// substitution such that
///
/// * `h` is the identity on constants,
/// * `h` maps the head of `from` elementwise onto the head of `onto`, and
/// * for every body atom `r(t̄)` of `from`, `r(h(t̄))` is a body atom of
///   `onto`.
///
/// Returns `None` when the head shapes are incompatible or no mapping exists.
/// By the Chandra–Merlin theorem, `onto ⊆ from` holds exactly when such a
/// homomorphism exists (see [`crate::is_contained_in`]).
pub fn find_homomorphism(from: &ConjunctiveQuery, onto: &ConjunctiveQuery) -> Option<Homomorphism> {
    if from.head().len() != onto.head().len() {
        return None;
    }
    // Seed with the head mapping; repeated head variables must be consistent.
    let mut subst: Homomorphism = HashMap::new();
    for (&f, &o) in from.head().iter().zip(onto.head().iter()) {
        match subst.get(&f) {
            None => {
                subst.insert(f, Term::Var(o));
            }
            Some(Term::Var(prev)) if *prev == o => {}
            _ => return None,
        }
    }

    // Pre-index target atoms by relation to cut the branching factor.
    let mut by_relation: HashMap<_, Vec<usize>> = HashMap::new();
    for (i, atom) in onto.atoms().iter().enumerate() {
        by_relation.entry(atom.relation()).or_default().push(i);
    }

    // Order source atoms so that highly-constrained ones (more constants,
    // fewer candidate targets) are matched first.
    let mut order: Vec<usize> = (0..from.atoms().len()).collect();
    order.sort_by_key(|&i| {
        let atom = &from.atoms()[i];
        let candidates = by_relation.get(&atom.relation()).map_or(0, Vec::len);
        let constants = atom.terms().iter().filter(|t| t.is_const()).count();
        (candidates, usize::MAX - constants)
    });

    if search(from, onto, &by_relation, &order, 0, &mut subst) {
        Some(subst)
    } else {
        None
    }
}

fn search(
    from: &ConjunctiveQuery,
    onto: &ConjunctiveQuery,
    by_relation: &HashMap<toorjah_catalog::RelationId, Vec<usize>>,
    order: &[usize],
    depth: usize,
    subst: &mut Homomorphism,
) -> bool {
    let Some(&atom_idx) = order.get(depth) else {
        return true;
    };
    let atom = &from.atoms()[atom_idx];
    let Some(candidates) = by_relation.get(&atom.relation()) else {
        return false;
    };
    'candidates: for &cand in candidates {
        let target = &onto.atoms()[cand];
        let mut added: Vec<VarId> = Vec::new();
        for (t, u) in atom.terms().iter().zip(target.terms().iter()) {
            match t {
                Term::Const(c) => {
                    // Constants map to themselves.
                    if u.as_const() != Some(c) {
                        undo(subst, &added);
                        continue 'candidates;
                    }
                }
                Term::Var(v) => match subst.get(v) {
                    Some(mapped) => {
                        if mapped != u {
                            undo(subst, &added);
                            continue 'candidates;
                        }
                    }
                    None => {
                        subst.insert(*v, u.clone());
                        added.push(*v);
                    }
                },
            }
        }
        if search(from, onto, by_relation, order, depth + 1, subst) {
            return true;
        }
        undo(subst, &added);
    }
    false
}

fn undo(subst: &mut Homomorphism, added: &[VarId]) {
    for v in added {
        subst.remove(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use toorjah_catalog::Schema;

    fn schema() -> Schema {
        Schema::parse("r^oo(A, B) s^oo(B, C) t^oo(A, A)").unwrap()
    }

    #[test]
    fn identity_homomorphism_exists() {
        let sc = schema();
        let q = parse_query("q(X) <- r(X, Y), s(Y, Z)", &sc).unwrap();
        assert!(find_homomorphism(&q, &q).is_some());
    }

    #[test]
    fn folding_onto_smaller_query() {
        let sc = schema();
        // q1 has a redundant second r-atom that folds onto the first.
        let q1 = parse_query("q(X) <- r(X, Y), r(X, Y2)", &sc).unwrap();
        let q2 = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        let h = find_homomorphism(&q1, &q2).unwrap();
        // Both Y and Y2 map to q2's Y.
        assert_eq!(h.len(), 3);
        assert!(find_homomorphism(&q2, &q1).is_some());
    }

    #[test]
    fn constants_block_mapping() {
        let sc = schema();
        let q1 = parse_query("q(X) <- r(X, 'b')", &sc).unwrap();
        let q2 = parse_query("q(X) <- r(X, 'c')", &sc).unwrap();
        assert!(find_homomorphism(&q1, &q2).is_none());
        assert!(find_homomorphism(&q2, &q1).is_none());
        // Variable can map onto a constant, though:
        let q3 = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        assert!(find_homomorphism(&q3, &q1).is_some());
        assert!(find_homomorphism(&q1, &q3).is_none());
    }

    #[test]
    fn head_must_be_preserved() {
        let sc = schema();
        let q1 = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        let q2 = parse_query("q(Y) <- r(X, Y)", &sc).unwrap();
        // Head of q1 (an A-position var) cannot map to q2's head (a B-position
        // var) because the atoms wouldn't align.
        assert!(find_homomorphism(&q1, &q2).is_none());
    }

    #[test]
    fn head_arity_mismatch() {
        let sc = schema();
        let q1 = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        let q2 = parse_query("q(X, Y) <- r(X, Y)", &sc).unwrap();
        assert!(find_homomorphism(&q1, &q2).is_none());
    }

    #[test]
    fn repeated_head_variable_consistency() {
        let sc = schema();
        let q1 = parse_query("q(X, X) <- t(X, X)", &sc).unwrap();
        let q2 = parse_query("q(X, Y) <- t(X, Y)", &sc).unwrap();
        // q1's repeated head cannot map onto q2's distinct head pair.
        assert!(find_homomorphism(&q1, &q2).is_none());
        // But the converse direction maps both X and Y to q1's X.
        assert!(find_homomorphism(&q2, &q1).is_some());
    }

    #[test]
    fn missing_relation_in_target() {
        let sc = schema();
        let q1 = parse_query("q(X) <- r(X, Y), s(Y, Z)", &sc).unwrap();
        let q2 = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        assert!(find_homomorphism(&q1, &q2).is_none());
    }

    #[test]
    fn path_folds_onto_shorter_path_without_head() {
        let sc = Schema::parse("e^oo(V, V)").unwrap();
        // Boolean queries: a 2-path maps onto a 1-cycle... no cycle here, but
        // a 2-path maps onto itself reversed? Relations are directed, so no.
        let two = parse_query("q() <- e(X, Y), e(Y, Z)", &sc).unwrap();
        let one = parse_query("q() <- e(X, X)", &sc).unwrap();
        // 2-path folds onto the self-loop.
        assert!(find_homomorphism(&two, &one).is_some());
        // Self-loop does not fold onto the plain 2-path.
        assert!(find_homomorphism(&one, &two).is_none());
    }
}
