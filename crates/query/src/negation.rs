//! Conjunctive queries with safe negation — the §VII extension.
//!
//! The paper notes (§VII) that the technique "has been extended and proved
//! to be also applicable to more expressive query classes including UCQs
//! with safe negation [18]". This module provides the query-side machinery:
//! a positive CQ plus negated atoms, validated for two safety conditions:
//!
//! 1. **safe negation** — every variable of a negated atom occurs in the
//!    positive part (otherwise negation is domain-dependent);
//! 2. **access-safety** — every *input* position of a negated atom carries
//!    a constant or a positive-part variable. Under this condition the
//!    engine can decide each negated atom *exactly*: given a candidate
//!    assignment it accesses the relation with the (fully bound) input
//!    values, retrieving every tuple that could match, so "not present in
//!    the extracted data" coincides with "not present in the source".
//!    Condition 1 implies condition 2 for variables; constants are always
//!    fine — the check is kept explicit for clarity and error quality.

use toorjah_catalog::Schema;

use crate::{Atom, ConjunctiveQuery, QueryError, Term};

/// A conjunctive query with negated atoms: `q(X̄) ← body, ¬n1, …, ¬nk`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NegatedQuery {
    positive: ConjunctiveQuery,
    negated: Vec<Atom>,
}

impl NegatedQuery {
    /// Builds and validates a negated query over `schema`.
    pub fn new(
        positive: ConjunctiveQuery,
        negated: Vec<Atom>,
        schema: &Schema,
    ) -> Result<Self, QueryError> {
        for atom in &negated {
            let rel = schema.relation(atom.relation());
            if atom.arity() != rel.arity() {
                return Err(QueryError::AtomArity {
                    relation: rel.name().to_string(),
                    expected: rel.arity(),
                    got: atom.arity(),
                });
            }
            // Safety: negated variables occur positively.
            for v in atom.variables() {
                let occurs = positive
                    .atoms()
                    .iter()
                    .any(|a| a.variables().any(|u| u == v));
                if !occurs {
                    return Err(QueryError::UnsafeNegation {
                        variable: positive.var_name(v).to_string(),
                        relation: rel.name().to_string(),
                    });
                }
            }
            // Abstract-domain consistency of the negated atom's variables
            // with their positive occurrences.
            for (k, t) in atom.terms().iter().enumerate() {
                if let Term::Var(v) = t {
                    let positive_domain = positive.var_domains(schema)[v.index()];
                    if let Some(d) = positive_domain {
                        if d != rel.domain(k) {
                            return Err(QueryError::DomainConflict {
                                variable: positive.var_name(*v).to_string(),
                                first: schema.domains().name(d).to_string(),
                                second: schema.domains().name(rel.domain(k)).to_string(),
                            });
                        }
                    }
                }
            }
        }
        Ok(NegatedQuery { positive, negated })
    }

    /// The positive part.
    pub fn positive(&self) -> &ConjunctiveQuery {
        &self.positive
    }

    /// The negated atoms.
    pub fn negated(&self) -> &[Atom] {
        &self.negated
    }

    /// Variables of the positive part that the negated atoms mention,
    /// deduplicated in first-occurrence order. The engine extends the
    /// positive plan's head with these to obtain full enough assignments.
    pub fn negation_variables(&self) -> Vec<crate::VarId> {
        let mut out = Vec::new();
        for atom in &self.negated {
            for v in atom.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use toorjah_catalog::Schema;

    fn schema() -> Schema {
        Schema::parse("r^oo(A, B) banned^io(A, B) flag^o(A)").unwrap()
    }

    fn atom(schema: &Schema, q: &ConjunctiveQuery, rel: &str, vars: &[&str]) -> Atom {
        let id = schema.relation_id(rel).unwrap();
        let terms = vars
            .iter()
            .map(|name| {
                let v = q
                    .var_names()
                    .iter()
                    .position(|n| n == name)
                    .map(|i| crate::VarId(i as u32))
                    .expect("variable exists");
                Term::Var(v)
            })
            .collect();
        Atom::new(id, terms)
    }

    #[test]
    fn valid_negation() {
        let s = schema();
        let q = parse_query("q(X, Y) <- r(X, Y)", &s).unwrap();
        let neg = atom(&s, &q, "banned", &["X", "Y"]);
        let nq = NegatedQuery::new(q, vec![neg], &s).unwrap();
        assert_eq!(nq.negated().len(), 1);
        assert_eq!(nq.negation_variables().len(), 2);
    }

    #[test]
    fn unsafe_negation_rejected() {
        let s = schema();
        let q = parse_query("q(X) <- flag(X)", &s).unwrap();
        // Variable W does not occur positively: build it manually.
        let banned = s.relation_id("banned").unwrap();
        let neg = Atom::new(
            banned,
            vec![Term::Var(crate::VarId(0)), Term::Var(crate::VarId(7))],
        );
        // VarId(7) is out of the positive query's variable table → treat as
        // a fresh variable. Construction must fail safety.
        let q2 = {
            // Extend the var table so the id is valid but non-occurring.
            let mut names = q.var_names().to_vec();
            while names.len() <= 7 {
                names.push(format!("W{}", names.len()));
            }
            ConjunctiveQuery::from_parts(&s, "q", q.head().to_vec(), q.atoms().to_vec(), names)
                .unwrap()
        };
        assert!(matches!(
            NegatedQuery::new(q2, vec![neg], &s),
            Err(QueryError::UnsafeNegation { .. })
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = schema();
        let q = parse_query("q(X) <- flag(X)", &s).unwrap();
        let banned = s.relation_id("banned").unwrap();
        let neg = Atom::new(banned, vec![Term::Var(crate::VarId(0))]);
        assert!(matches!(
            NegatedQuery::new(q, vec![neg], &s),
            Err(QueryError::AtomArity { .. })
        ));
    }

    #[test]
    fn domain_conflict_rejected() {
        let s = schema();
        let q = parse_query("q(X, Y) <- r(X, Y)", &s).unwrap();
        // banned(B-position ← X of domain A): conflict.
        let banned = s.relation_id("banned").unwrap();
        let x = crate::VarId(0);
        let neg = Atom::new(banned, vec![Term::Var(x), Term::Var(x)]);
        assert!(matches!(
            NegatedQuery::new(q, vec![neg], &s),
            Err(QueryError::DomainConflict { .. })
        ));
    }
}
