//! CQ minimization (core computation).
//!
//! §IV of the paper assumes plans are generated from a *minimal* CQ: one with
//! no equivalent query over a strict subset of its body atoms. Finding the
//! minimal equivalent of a CQ is NP-complete (Chandra & Merlin, STOC'77); the
//! standard core-computation below is exact and fast for the small queries
//! (2–6 atoms) of the paper's workloads.

use crate::{find_homomorphism, ConjunctiveQuery};

/// Returns the minimal equivalent of `query` (its *core*): atoms are removed
/// greedily while an endomorphism onto the remaining atoms exists. The result
/// is unique up to isomorphism.
pub fn minimize(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = query.clone();
    loop {
        let n = current.atoms().len();
        if n <= 1 {
            return current;
        }
        let mut reduced = None;
        for drop in 0..n {
            let kept: Vec<usize> = (0..n).filter(|&i| i != drop).collect();
            let candidate = current.with_atoms(&kept);
            if !is_safe(&candidate) {
                continue;
            }
            // `candidate` (fewer atoms) is more general: current ⊆ candidate
            // always. Equivalence needs candidate ⊆ current, i.e. a
            // homomorphism from `current` onto `candidate`.
            if find_homomorphism(&current, &candidate).is_some() {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => current = c,
            None => return current,
        }
    }
}

/// `true` when no single atom can be dropped while preserving equivalence.
pub fn is_minimal(query: &ConjunctiveQuery) -> bool {
    minimize(query).atoms().len() == query.atoms().len()
}

/// All head variables occur in the body.
fn is_safe(query: &ConjunctiveQuery) -> bool {
    query
        .head()
        .iter()
        .all(|&h| query.atoms().iter().any(|a| a.variables().any(|v| v == h)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_equivalent_to, parse_query};
    use toorjah_catalog::Schema;

    fn schema() -> Schema {
        Schema::parse("r^oo(A, B) s^oo(B, C) e^oo(V, V)").unwrap()
    }

    #[test]
    fn already_minimal_query_is_kept() {
        let sc = schema();
        let q = parse_query("q(X) <- r(X, Y), s(Y, Z)", &sc).unwrap();
        let m = minimize(&q);
        assert_eq!(m.atoms().len(), 2);
        assert!(is_minimal(&q));
    }

    #[test]
    fn redundant_atom_removed() {
        let sc = schema();
        let q = parse_query("q(X) <- r(X, Y), r(X, Y2)", &sc).unwrap();
        let m = minimize(&q);
        assert_eq!(m.atoms().len(), 1);
        assert!(is_equivalent_to(&m, &q));
        assert!(!is_minimal(&q));
    }

    #[test]
    fn head_variables_protect_atoms() {
        let sc = schema();
        // Both atoms bind head variables in incompatible ways: nothing to drop.
        let q = parse_query("q(X, Z) <- r(X, Y), s(Y, Z)", &sc).unwrap();
        assert!(is_minimal(&q));
    }

    #[test]
    fn chain_folds_onto_self_loop() {
        let sc = schema();
        // Boolean: a 3-path plus a self-loop; everything folds onto the loop.
        let q = parse_query("q() <- e(X, Y), e(Y, Z), e(W, W)", &sc).unwrap();
        let m = minimize(&q);
        assert_eq!(m.atoms().len(), 1);
        assert!(is_equivalent_to(&m, &q));
    }

    #[test]
    fn constants_prevent_folding() {
        let sc = schema();
        let q = parse_query("q(X) <- r(X, 'b'), r(X, Y)", &sc).unwrap();
        let m = minimize(&q);
        // r(X, Y) folds onto r(X, 'b'); the constant atom must remain.
        assert_eq!(m.atoms().len(), 1);
        assert!(!m.is_constant_free());
    }

    #[test]
    fn distinct_constants_both_remain() {
        let sc = schema();
        let q = parse_query("q(X) <- r(X, 'b'), r(X, 'c')", &sc).unwrap();
        assert!(is_minimal(&q));
    }

    #[test]
    fn minimization_is_idempotent() {
        let sc = schema();
        let q = parse_query("q() <- e(X, Y), e(Y, Z), e(Z, W), e(V, V)", &sc).unwrap();
        let m1 = minimize(&q);
        let m2 = minimize(&m1);
        assert_eq!(m1.atoms().len(), m2.atoms().len());
    }

    #[test]
    fn single_atom_is_trivially_minimal() {
        let sc = schema();
        let q = parse_query("q(X) <- r(X, Y)", &sc).unwrap();
        assert!(is_minimal(&q));
    }
}
