//! Body atoms of conjunctive queries.

use toorjah_catalog::{RelationId, Schema};

use crate::{Term, VarId};

/// A body atom `r(t1,…,tn)` with the relation resolved against a schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    relation: RelationId,
    terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom; arity validation happens in
    /// [`crate::ConjunctiveQuery::from_parts`].
    pub fn new(relation: RelationId, terms: Vec<Term>) -> Self {
        Atom { relation, terms }
    }

    /// The relation this atom ranges over.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The terms, in positional order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The term at position `k` (0-based).
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn term(&self, k: usize) -> &Term {
        &self.terms[k]
    }

    /// Number of terms (the relation's arity for validated atoms).
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Variables occurring in the atom, with duplicates.
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// 0-based positions at which the given variable occurs.
    pub fn positions_of(&self, var: VarId) -> impl Iterator<Item = usize> + '_ {
        self.terms
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.as_var() == Some(var))
            .map(|(k, _)| k)
    }

    /// Whether any term is a constant.
    pub fn has_constants(&self) -> bool {
        self.terms.iter().any(Term::is_const)
    }

    /// Renders the atom with variable names drawn from `var_names`.
    pub(crate) fn render(&self, schema: &Schema, var_names: &[String]) -> String {
        let mut s = String::new();
        s.push_str(schema.relation(self.relation).name());
        s.push('(');
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match t {
                Term::Var(v) => s.push_str(&var_names[v.index()]),
                Term::Const(c) => s.push_str(&c.to_string()),
            }
        }
        s.push(')');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_catalog::Value;

    #[test]
    fn accessors() {
        let a = Atom::new(
            RelationId(0),
            vec![
                Term::Var(VarId(0)),
                Term::Const(Value::from("volare")),
                Term::Var(VarId(0)),
            ],
        );
        assert_eq!(a.arity(), 3);
        assert_eq!(a.relation(), RelationId(0));
        assert!(a.has_constants());
        assert_eq!(a.variables().collect::<Vec<_>>(), vec![VarId(0), VarId(0)]);
        assert_eq!(a.positions_of(VarId(0)).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(a.positions_of(VarId(9)).count(), 0);
        assert_eq!(a.term(1).as_const(), Some(&Value::from("volare")));
    }
}
