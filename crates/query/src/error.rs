//! Error type for query construction, parsing and preprocessing.

use std::error::Error;
use std::fmt;

use toorjah_catalog::CatalogError;

/// Errors raised while building, parsing or transforming queries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryError {
    /// A body atom refers to a relation not in the schema.
    UnknownRelation(String),
    /// A body atom's term count differs from the relation's arity.
    AtomArity {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of terms in the atom.
        got: usize,
    },
    /// A head variable does not occur in the body (unsafe query).
    UnsafeHead {
        /// The offending variable's name.
        variable: String,
    },
    /// A variable occurs at positions with different abstract domains.
    DomainConflict {
        /// The offending variable's name.
        variable: String,
        /// Name of the first domain it was seen at.
        first: String,
        /// Name of the conflicting domain.
        second: String,
    },
    /// The query text could not be parsed.
    Parse {
        /// Offending fragment (possibly the whole text).
        fragment: String,
        /// Why parsing failed.
        reason: String,
    },
    /// Head terms must be variables.
    ConstantInHead,
    /// The query has no body atoms.
    EmptyBody,
    /// A negated atom uses a variable that has no positive occurrence.
    UnsafeNegation {
        /// The offending variable's name.
        variable: String,
        /// The negated atom's relation.
        relation: String,
    },
    /// A UCQ mixes CQs with different head arities.
    MixedHeadArity {
        /// Arity of the first CQ.
        expected: usize,
        /// Arity of the offending CQ.
        got: usize,
    },
    /// An underlying catalog error (e.g. while extending the schema during
    /// preprocessing).
    Catalog(CatalogError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownRelation(name) => {
                write!(f, "query mentions unknown relation {name}")
            }
            QueryError::AtomArity { relation, expected, got } => write!(
                f,
                "atom over {relation} has {got} term(s) but the relation has arity {expected}"
            ),
            QueryError::UnsafeHead { variable } => write!(
                f,
                "head variable {variable} does not occur in the body (query is unsafe)"
            ),
            QueryError::DomainConflict { variable, first, second } => write!(
                f,
                "variable {variable} occurs at positions of different abstract domains ({first} vs {second})"
            ),
            QueryError::Parse { fragment, reason } => {
                write!(f, "cannot parse query fragment {fragment:?}: {reason}")
            }
            QueryError::ConstantInHead => f.write_str("head terms must be variables"),
            QueryError::EmptyBody => f.write_str("query body must contain at least one atom"),
            QueryError::UnsafeNegation { variable, relation } => write!(
                f,
                "negated atom over {relation} uses variable {variable} with no positive occurrence (unsafe negation)"
            ),
            QueryError::MixedHeadArity { expected, got } => write!(
                f,
                "all CQs of a union must share the head arity (expected {expected}, got {got})"
            ),
            QueryError::Catalog(e) => write!(f, "catalog error: {e}"),
        }
    }
}

impl Error for QueryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QueryError::Catalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for QueryError {
    fn from(e: CatalogError) -> Self {
        QueryError::Catalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offenders() {
        let e = QueryError::AtomArity {
            relation: "rev".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("rev"));
        let e = QueryError::DomainConflict {
            variable: "X".into(),
            first: "Paper".into(),
            second: "Person".into(),
        };
        assert!(e.to_string().contains("Paper") && e.to_string().contains("Person"));
    }

    #[test]
    fn catalog_errors_are_wrapped() {
        let e: QueryError = CatalogError::UnknownRelation("r".into()).into();
        assert!(matches!(e, QueryError::Catalog(_)));
        assert!(Error::source(&e).is_some());
    }
}
