//! # toorjah-query
//!
//! Conjunctive queries over schemas with access limitations, for the Toorjah
//! reproduction of *"Querying Data under Access Limitations"*
//! (Calì & Martinenghi, ICDE 2008).
//!
//! Provides:
//!
//! * [`ConjunctiveQuery`] / [`UnionQuery`]: CQs and UCQs in the paper's
//!   notation `q(X̄) ← conj(X̄, Ȳ)`, resolved against a
//!   [`toorjah_catalog::Schema`] and validated (arity, safety, abstract-domain
//!   consistency of variables).
//! * [`parse_query`]: a text parser for the paper's syntax, e.g.
//!   `q(N) <- r1(A, N, Y1), r2('volare', Y2, A)`. Identifiers starting with an
//!   uppercase letter are variables; quoted strings, numbers and
//!   lowercase-initial identifiers are constants.
//! * [`Statement`] / [`Statement::parse`]: the single entry point covering
//!   all three query classes — plain CQs, unions (`;`-separated disjuncts)
//!   and safe negation (`!`-prefixed literals, [`parse_negated_query`]).
//! * [`preprocess`]: the §III constant-elimination step that replaces every
//!   constant `a` by a fresh variable bound by an artificial free relation
//!   `ℓa` containing exactly `⟨a⟩`.
//! * [`find_homomorphism`], [`is_contained_in`], [`minimize`]: classical CQ
//!   containment and minimization (Chandra–Merlin); §IV assumes plans are
//!   generated from a minimal CQ.
//! * [`is_connection_query`]: the §VI classifier for the restricted class of
//!   *connection queries* handled by prior work, used to reproduce the paper's
//!   "≈70% of synthetic queries are not connection queries" statistic.

#![warn(missing_docs)]

mod atom;
mod connection;
mod containment;
mod cq;
mod error;
mod homomorphism;
mod minimize;
mod negation;
mod parser;
mod preprocess;
mod statement;
mod term;
mod ucq;

pub use atom::Atom;
pub use connection::{connection_violations, is_connection_query};
pub use containment::{is_contained_in, is_equivalent_to};
pub use cq::{ConjunctiveQuery, CqBuilder, TermFactory};
pub use error::QueryError;
pub use homomorphism::{find_homomorphism, Homomorphism};
pub use minimize::{is_minimal, minimize};
pub use negation::NegatedQuery;
pub use parser::{parse_negated_query, parse_query};
pub use preprocess::{preprocess, ConstantRelation, PreprocessedQuery};
pub use statement::{Statement, StatementKind};
pub use term::{Term, VarId};
pub use ucq::UnionQuery;
