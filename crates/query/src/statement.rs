//! Statements: the single parse entry point of the unified facade API.
//!
//! The system layer's prepare/execute lifecycle starts from a
//! [`Statement`] — one value covering every query class the engine can
//! answer: a plain conjunctive query, a union of conjunctive queries
//! (disjuncts separated by `;`), or a conjunctive query with safe negation
//! (`!`-prefixed literals). [`Statement::parse`] dispatches on the text, so
//! callers never pick an entry point by query class again.

use std::fmt;

use toorjah_catalog::Schema;

use crate::{parse_negated_query, parse_query, NegatedQuery, QueryError, UnionQuery};

/// A parsed statement: any query the system can prepare and execute.
///
/// ```
/// use toorjah_catalog::Schema;
/// use toorjah_query::{Statement, StatementKind};
///
/// let schema = Schema::parse("works^oo(P, C) banned^io(P, C) flag^o(P)").unwrap();
/// // One entry point, three query classes:
/// let cq = Statement::parse("q(P) <- works(P, C)", &schema).unwrap();
/// assert_eq!(cq.kind(), StatementKind::Cq);
///
/// let union = Statement::parse("q(P) <- works(P, C); q(P) <- flag(P)", &schema).unwrap();
/// assert_eq!(union.kind(), StatementKind::Union);
///
/// let negated = Statement::parse("q(P) <- works(P, C), !banned(P, C)", &schema).unwrap();
/// assert_eq!(negated.kind(), StatementKind::Negated);
/// assert_eq!(negated.head_arity(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Statement {
    /// A plain conjunctive query.
    Cq(crate::ConjunctiveQuery),
    /// A union of conjunctive queries (disjuncts share one head arity).
    Union(UnionQuery),
    /// A conjunctive query with safe negation.
    Negated(NegatedQuery),
}

/// The class of a [`Statement`] — used for reporting and dispatch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StatementKind {
    /// Plain conjunctive query.
    Cq,
    /// Union of conjunctive queries.
    Union,
    /// Conjunctive query with safe negation.
    Negated,
}

impl StatementKind {
    /// Stable lowercase name (used by machine-readable reports).
    pub fn name(self) -> &'static str {
        match self {
            StatementKind::Cq => "cq",
            StatementKind::Union => "union",
            StatementKind::Negated => "negated",
        }
    }
}

impl fmt::Display for StatementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Statement {
    /// Parses a statement in the paper's textual notation, dispatching on
    /// shape:
    ///
    /// * disjuncts separated by `;` → [`Statement::Union`] (each disjunct a
    ///   plain CQ; a trailing `;` is tolerated);
    /// * body literals prefixed with `!` or `¬` → [`Statement::Negated`];
    /// * otherwise → [`Statement::Cq`].
    ///
    /// Separators inside quoted constants (`'a;b'`) are ignored.
    pub fn parse(text: &str, schema: &Schema) -> Result<Statement, QueryError> {
        let mut parts = split_disjuncts(text);
        // Tolerate a trailing separator: `q(X) <- r(X);`.
        if parts.len() > 1 && parts.last().is_some_and(|p| p.trim().is_empty()) {
            parts.pop();
        }
        if parts.len() > 1 {
            let cqs = parts
                .into_iter()
                .map(|p| parse_query(p, schema))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Statement::Union(UnionQuery::new(cqs)?));
        }
        let single = parts.first().copied().unwrap_or(text);
        if contains_negation(single) {
            return Ok(Statement::Negated(parse_negated_query(single, schema)?));
        }
        Ok(Statement::Cq(parse_query(single, schema)?))
    }

    /// The statement's class.
    pub fn kind(&self) -> StatementKind {
        match self {
            Statement::Cq(_) => StatementKind::Cq,
            Statement::Union(_) => StatementKind::Union,
            Statement::Negated(_) => StatementKind::Negated,
        }
    }

    /// Arity of the answer tuples this statement produces.
    pub fn head_arity(&self) -> usize {
        match self {
            Statement::Cq(q) => q.head().len(),
            Statement::Union(u) => u.arity(),
            Statement::Negated(n) => n.positive().head().len(),
        }
    }
}

impl From<crate::ConjunctiveQuery> for Statement {
    fn from(q: crate::ConjunctiveQuery) -> Self {
        Statement::Cq(q)
    }
}

impl From<UnionQuery> for Statement {
    fn from(u: UnionQuery) -> Self {
        Statement::Union(u)
    }
}

impl From<NegatedQuery> for Statement {
    fn from(n: NegatedQuery) -> Self {
        Statement::Negated(n)
    }
}

/// Splits on `;` outside single-quoted constants.
fn split_disjuncts(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    for (i, c) in text.char_indices() {
        match c {
            '\'' => in_quotes = !in_quotes,
            ';' if !in_quotes => {
                parts.push(&text[start..i]);
                start = i + c.len_utf8();
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

/// Whether the text contains a negation marker outside quoted constants.
fn contains_negation(text: &str) -> bool {
    let mut in_quotes = false;
    for c in text.chars() {
        match c {
            '\'' => in_quotes = !in_quotes,
            '!' | '¬' if !in_quotes => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::parse("r^oo(A, B) s^oo(A, B) banned^io(A, B)").unwrap()
    }

    #[test]
    fn single_cq() {
        let s = schema();
        let stmt = Statement::parse("q(X) <- r(X, Y)", &s).unwrap();
        assert_eq!(stmt.kind(), StatementKind::Cq);
        assert_eq!(stmt.head_arity(), 1);
    }

    #[test]
    fn union_of_disjuncts() {
        let s = schema();
        let stmt = Statement::parse("q(X) <- r(X, Y); q(X) <- s(X, Y)", &s).unwrap();
        let Statement::Union(u) = &stmt else {
            panic!("expected a union, got {stmt:?}");
        };
        assert_eq!(u.len(), 2);
        assert_eq!(stmt.head_arity(), 1);
    }

    #[test]
    fn trailing_separator_tolerated() {
        let s = schema();
        let stmt = Statement::parse("q(X) <- r(X, Y);", &s).unwrap();
        assert_eq!(stmt.kind(), StatementKind::Cq);
    }

    #[test]
    fn negated_statement() {
        let s = schema();
        let stmt = Statement::parse("q(X) <- r(X, Y), !banned(X, Y)", &s).unwrap();
        assert_eq!(stmt.kind(), StatementKind::Negated);
    }

    #[test]
    fn quoted_separators_and_bangs_are_constants() {
        let s = schema();
        let stmt = Statement::parse("q(X) <- r(X, 'a;b')", &s).unwrap();
        assert_eq!(stmt.kind(), StatementKind::Cq);
        let stmt = Statement::parse("q(X) <- r(X, 'a!b')", &s).unwrap();
        assert_eq!(stmt.kind(), StatementKind::Cq);
    }

    #[test]
    fn union_disjuncts_must_share_head_arity() {
        let s = schema();
        assert!(matches!(
            Statement::parse("q(X) <- r(X, Y); q(X, Y) <- s(X, Y)", &s),
            Err(QueryError::MixedHeadArity { .. })
        ));
    }

    #[test]
    fn negation_inside_a_union_disjunct_is_rejected() {
        let s = schema();
        assert!(Statement::parse("q(X) <- r(X, Y), !banned(X, Y); q(X) <- s(X, Y)", &s).is_err());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(StatementKind::Cq.name(), "cq");
        assert_eq!(StatementKind::Union.to_string(), "union");
        assert_eq!(StatementKind::Negated.name(), "negated");
    }

    #[test]
    fn from_impls() {
        let s = schema();
        let q = parse_query("q(X) <- r(X, Y)", &s).unwrap();
        let stmt: Statement = q.clone().into();
        assert_eq!(stmt.kind(), StatementKind::Cq);
        let stmt: Statement = UnionQuery::new(vec![q.clone()]).unwrap().into();
        assert_eq!(stmt.kind(), StatementKind::Union);
        let stmt: Statement = NegatedQuery::new(q, vec![], &s).unwrap().into();
        assert_eq!(stmt.kind(), StatementKind::Negated);
    }
}
