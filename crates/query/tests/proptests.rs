//! Property-based tests of the query machinery: minimization correctness,
//! containment laws, preprocessing invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use toorjah_catalog::{Schema, Value};
use toorjah_query::{
    find_homomorphism, is_contained_in, is_equivalent_to, is_minimal, minimize, parse_query,
    preprocess, ConjunctiveQuery,
};

/// A small fixed schema rich enough for interesting joins.
fn schema() -> Schema {
    Schema::parse("r^oo(A, B) s^oo(B, A) e^oo(A, A) u^o(B)").unwrap()
}

/// Generates a random query over the fixed schema from a seed.
fn random_query(seed: u64) -> Option<ConjunctiveQuery> {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(seed);
    let atom_count = rng.gen_range(1..=4);
    let mut text = String::new();
    let relations = ["r", "s", "e", "u"];
    let arities = [2usize, 2, 2, 1];
    // Variables per domain to respect abstract-domain typing: A-vars and
    // B-vars are disjoint name pools.
    let var_a = ["X", "Y", "Z"];
    let var_b = ["P", "Q", "W"];
    let mut used_a: Vec<&str> = Vec::new();
    for i in 0..atom_count {
        if i > 0 {
            text.push_str(", ");
        }
        let r = rng.gen_range(0..relations.len());
        text.push_str(relations[r]);
        text.push('(');
        for k in 0..arities[r] {
            if k > 0 {
                text.push_str(", ");
            }
            // Domain of (relation, position).
            let is_a = matches!((r, k), (0, 0) | (1, 1) | (2, _));
            let pool: &[&str] = if is_a { &var_a } else { &var_b };
            if rng.gen_bool(0.15) {
                text.push_str(&format!("'c{}'", rng.gen_range(0..3)));
            } else {
                let v = pool[rng.gen_range(0..pool.len())];
                if is_a && !used_a.contains(&v) {
                    used_a.push(v);
                }
                text.push_str(v);
            }
        }
        text.push(')');
    }
    if used_a.is_empty() {
        return None;
    }
    let head = used_a[0];
    let q = format!("q({head}) <- {text}");
    parse_query(&q, &schema).ok()
}

proptest! {
    /// The minimized query is equivalent to the original and itself minimal.
    #[test]
    fn minimize_preserves_equivalence(seed in 0u64..40_000) {
        if let Some(q) = random_query(seed) {
            let m = minimize(&q);
            prop_assert!(m.atoms().len() <= q.atoms().len());
            prop_assert!(is_equivalent_to(&m, &q));
            prop_assert!(is_minimal(&m));
        }
    }

    /// Containment is reflexive, and equivalence implies mutual containment.
    #[test]
    fn containment_laws(seed in 0u64..40_000) {
        if let Some(q) = random_query(seed) {
            prop_assert!(is_contained_in(&q, &q));
            let m = minimize(&q);
            prop_assert!(is_contained_in(&q, &m) && is_contained_in(&m, &q));
        }
    }

    /// A homomorphism found between two queries maps constants to
    /// themselves and covers every variable of the source query's head.
    #[test]
    fn homomorphism_shape(seed in 0u64..20_000) {
        let (Some(q1), Some(q2)) = (random_query(seed), random_query(seed.wrapping_add(1)))
        else { return Ok(()); };
        if let Some(h) = find_homomorphism(&q1, &q2) {
            for &v in q1.head() {
                prop_assert!(h.contains_key(&v), "head variable must be mapped");
            }
        }
    }

    /// Preprocessing yields a constant-free query whose artificial atoms
    /// correspond one-to-one to the distinct (constant, domain) pairs.
    #[test]
    fn preprocess_invariants(seed in 0u64..40_000) {
        if let Some(q) = random_query(seed) {
            let schema = schema();
            let pre = preprocess(&q, &schema).unwrap();
            prop_assert!(pre.query.is_constant_free());
            prop_assert_eq!(pre.original_atom_count, q.atoms().len());
            prop_assert_eq!(
                pre.query.atoms().len(),
                q.atoms().len() + pre.constant_relations.len()
            );
            prop_assert_eq!(pre.constant_relations.len(), q.constants(&schema).len());
            prop_assert_eq!(pre.query.head(), q.head());
            // Each artificial relation is free, unary, and typed with the
            // constant's domain.
            for cr in &pre.constant_relations {
                let rel = pre.schema.relation(cr.relation);
                prop_assert!(rel.is_free());
                prop_assert_eq!(rel.arity(), 1);
                prop_assert_eq!(rel.domain(0), cr.domain);
            }
            // No constant survives as a value anywhere in the rewritten body.
            for atom in pre.query.atoms() {
                prop_assert!(!atom.has_constants());
            }
        }
    }

    /// Constants of a query are reported with correct multiplicity-free
    /// (value, domain) pairs.
    #[test]
    fn constants_are_distinct(seed in 0u64..20_000) {
        if let Some(q) = random_query(seed) {
            let schema = schema();
            let cs = q.constants(&schema);
            for i in 0..cs.len() {
                for j in (i + 1)..cs.len() {
                    prop_assert_ne!(&cs[i], &cs[j]);
                }
            }
            for (v, _) in &cs {
                // All generated constants look like c0..c2.
                prop_assert!(matches!(v, Value::Str(s) if s.starts_with('c')));
            }
        }
    }
}
