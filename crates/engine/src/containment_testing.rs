//! Randomized refutation of containment **under access limitations** — a
//! testing tool for the paper's stated future work (§VII: "algorithms for
//! checking query containment under access limitations").
//!
//! Two queries may be classically equivalent yet have different *obtainable*
//! answers: obtainability depends on the constants each query contributes as
//! extraction seeds. Deciding obtainable-answer containment is the open
//! problem; this module provides the pragmatic counterpart used while
//! developing such algorithms — a randomized search for counterexample
//! instances:
//!
//! * [`refute_obtainable_containment`] generates seeded random instances and
//!   returns the first on which some obtainable answer of `q1` is not an
//!   obtainable answer of `q2`;
//! * exhausting the budget without a witness is *evidence*, not proof, of
//!   containment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use toorjah_catalog::{Instance, Schema, Tuple, Value};
use toorjah_query::ConjunctiveQuery;

use crate::{naive_evaluate, EngineError, InstanceSource, NaiveOptions};

/// A counterexample to obtainable-answer containment `q1 ⊑ q2`.
#[derive(Clone, Debug)]
pub struct ContainmentCounterexample {
    /// The witness instance.
    pub instance: Instance,
    /// An obtainable answer of `q1` on it that `q2` does not obtain.
    pub witness: Tuple,
    /// The RNG seed that produced the instance (for reproduction).
    pub seed: u64,
}

/// Options for the randomized search.
#[derive(Clone, Copy, Debug)]
pub struct RefutationOptions {
    /// Number of random instances to try.
    pub tries: usize,
    /// Values per abstract domain in the generated instances.
    pub pool_size: usize,
    /// Maximum tuples per relation.
    pub max_tuples: usize,
    /// Base seed.
    pub seed: u64,
    /// Access budget per evaluation.
    pub max_accesses: usize,
}

impl Default for RefutationOptions {
    fn default() -> Self {
        RefutationOptions {
            tries: 200,
            pool_size: 4,
            max_tuples: 12,
            seed: 0x5EED,
            max_accesses: 100_000,
        }
    }
}

/// Searches for an instance on which the obtainable answers of `q1` are not
/// contained in those of `q2`. Both queries must share the head arity.
///
/// Returns `Ok(Some(counterexample))` when containment is refuted,
/// `Ok(None)` when the budget is exhausted without a witness.
pub fn refute_obtainable_containment(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    schema: &Schema,
    options: RefutationOptions,
) -> Result<Option<ContainmentCounterexample>, EngineError> {
    // Seed pools with the queries' own constants plus fresh values, so the
    // instances exercise both selection matches and misses.
    let mut pools: Vec<Vec<Value>> = (0..schema.domains().len())
        .map(|d| {
            (0..options.pool_size)
                .map(|i| Value::str(format!("d{d}x{i}")))
                .collect()
        })
        .collect();
    for q in [q1, q2] {
        for (value, domain) in q.constants(schema) {
            if !pools[domain.index()].contains(&value) {
                pools[domain.index()].push(value);
            }
        }
    }

    for attempt in 0..options.tries {
        let seed = options.seed.wrapping_add(attempt as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Instance::new(schema);
        for (id, rel) in schema.iter() {
            let n = rng.gen_range(0..=options.max_tuples);
            for _ in 0..n {
                let tuple: Tuple = (0..rel.arity())
                    .map(|k| {
                        let pool = &pools[rel.domain(k).index()];
                        pool[rng.gen_range(0..pool.len())]
                    })
                    .collect();
                let _ = db.insert_by_id(id, tuple);
            }
        }
        let src = InstanceSource::new(schema.clone(), db);
        let opts = NaiveOptions {
            max_accesses: options.max_accesses,
            ..NaiveOptions::default()
        };
        let a1 = naive_evaluate(q1, schema, &src, opts)?;
        let a2 = naive_evaluate(q2, schema, &src, opts)?;
        if let Some(witness) = a1.answers.iter().find(|t| !a2.answers.contains(t)) {
            return Ok(Some(ContainmentCounterexample {
                instance: src.instance().clone(),
                witness: witness.clone(),
                seed,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toorjah_query::parse_query;

    #[test]
    fn classical_containment_can_fail_under_access_limitations() {
        // q1 carries the seed constant 'a'; q2 is the classically MORE
        // general query but, lacking any way to reach values of domain A,
        // obtains nothing. Classically q1 ⊆ q2; obtainably it is refuted.
        let schema = Schema::parse("r^io(A, B)").unwrap();
        let q1 = parse_query("q(Y) <- r('d0x0', Y)", &schema).unwrap();
        let q2 = parse_query("q(Y) <- r(X, Y)", &schema).unwrap();
        assert!(
            toorjah_query::is_contained_in(&q1, &q2),
            "classical containment holds"
        );
        let cex = refute_obtainable_containment(&q1, &q2, &schema, RefutationOptions::default())
            .unwrap()
            .expect("a counterexample instance exists");
        // The witness is an obtainable q1-answer the more general query
        // cannot obtain.
        assert!(!cex.witness.is_empty());
    }

    #[test]
    fn equal_queries_are_never_refuted() {
        let schema = Schema::parse("r^io(A, B) f^o(A)").unwrap();
        let q = parse_query("q(Y) <- f(X), r(X, Y)", &schema).unwrap();
        let out = refute_obtainable_containment(
            &q,
            &q,
            &schema,
            RefutationOptions {
                tries: 50,
                ..RefutationOptions::default()
            },
        )
        .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn subset_bodies_still_contain() {
        // q1 has an extra atom: obtainable(q1) ⊆ obtainable(q2) should hold
        // (more constraints, same seeds) — the search must find nothing.
        let schema = Schema::parse("r^oo(A, B) s^oo(B, C)").unwrap();
        let q1 = parse_query("q(X) <- r(X, Y), s(Y, Z)", &schema).unwrap();
        let q2 = parse_query("q(X) <- r(X, Y)", &schema).unwrap();
        let out = refute_obtainable_containment(
            &q1,
            &q2,
            &schema,
            RefutationOptions {
                tries: 60,
                ..RefutationOptions::default()
            },
        )
        .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn reproducible_by_seed() {
        let schema = Schema::parse("r^io(A, B)").unwrap();
        let q1 = parse_query("q(Y) <- r('d0x0', Y)", &schema).unwrap();
        let q2 = parse_query("q(Y) <- r(X, Y)", &schema).unwrap();
        let opts = RefutationOptions::default();
        let first = refute_obtainable_containment(&q1, &q2, &schema, opts)
            .unwrap()
            .unwrap();
        let again = refute_obtainable_containment(&q1, &q2, &schema, opts)
            .unwrap()
            .unwrap();
        assert_eq!(first.seed, again.seed);
        assert_eq!(first.witness, again.witness);
    }
}
