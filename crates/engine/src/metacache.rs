//! The per-relation meta-cache (§IV).
//!
//! > *"Since there may be several sources for the same relation, we have to
//! > make sure to not repeat any access to a relation. For this purpose, we
//! > keep track of all access tuples used to access relations […] Toorjah
//! > uses, for each relation, a sort of 'meta-cache' […] Then, before
//! > accessing a relation for the evaluation of a cache rule, we check
//! > whether the access was already made by consulting its meta-cache. If
//! > so, we read the extraction from the corresponding cache; else we make
//! > the access proper."*
//!
//! The meta-cache stores the full extraction per `(relation, binding)`, so
//! repeated accesses (e.g. from two occurrences of one relation) are served
//! locally at zero cost.

use std::collections::HashMap;

use toorjah_catalog::{RelationId, Tuple};

use crate::{AccessLog, EngineError, SourceProvider};

/// Extraction results keyed by `(relation, access binding)`, consulted
/// before every access.
#[derive(Clone, Default, Debug)]
pub struct MetaCache {
    extractions: HashMap<(RelationId, Tuple), Vec<Tuple>>,
}

impl MetaCache {
    /// Creates an empty meta-cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serves an access from the meta-cache, or performs it against
    /// `provider` (recording it in `log`) and memoizes the extraction.
    /// Returns the extracted tuples.
    pub fn access(
        &mut self,
        provider: &dyn SourceProvider,
        log: &mut AccessLog,
        relation: RelationId,
        binding: &Tuple,
    ) -> Result<&[Tuple], EngineError> {
        let key = (relation, binding.clone());
        // (Entry API would hold the borrow across the provider call; a
        // contains_key probe keeps the fallible path simple.)
        if !self.extractions.contains_key(&key) {
            let tuples = provider.access(relation, binding)?;
            log.record(relation, binding.clone());
            log.record_extracted(relation, tuples.iter());
            self.extractions.insert(key.clone(), tuples);
        }
        Ok(self
            .extractions
            .get(&key)
            .expect("just inserted")
            .as_slice())
    }

    /// Whether the access has been performed already.
    pub fn contains(&self, relation: RelationId, binding: &Tuple) -> bool {
        self.extractions.contains_key(&(relation, binding.clone()))
    }

    /// Number of memoized accesses.
    pub fn len(&self) -> usize {
        self.extractions.len()
    }

    /// Whether the meta-cache is empty.
    pub fn is_empty(&self) -> bool {
        self.extractions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstanceSource;
    use toorjah_catalog::{tuple, Instance, Schema};

    fn provider() -> InstanceSource {
        let schema = Schema::parse("r^io(A, B)").unwrap();
        let mut db = Instance::new(&schema);
        db.insert("r", tuple!["a", "b1"]).unwrap();
        InstanceSource::new(schema, db)
    }

    #[test]
    fn access_is_memoized() {
        let src = provider();
        let r = src.schema().relation_id("r").unwrap();
        let mut meta = MetaCache::new();
        let mut log = AccessLog::new();
        let first = meta
            .access(&src, &mut log, r, &tuple!["a"])
            .unwrap()
            .to_vec();
        assert_eq!(first.len(), 1);
        assert_eq!(log.total(), 1);
        // Second identical access is served locally: no new log entry.
        let second = meta
            .access(&src, &mut log, r, &tuple!["a"])
            .unwrap()
            .to_vec();
        assert_eq!(second, first);
        assert_eq!(log.total(), 1);
        assert_eq!(meta.len(), 1);
        assert!(meta.contains(r, &tuple!["a"]));
        assert!(!meta.contains(r, &tuple!["b"]));
    }

    #[test]
    fn failed_accesses_are_not_memoized() {
        let src = crate::FlakySource::new(provider(), 1); // always fails
        let r = src.schema().relation_id("r").unwrap();
        let mut meta = MetaCache::new();
        let mut log = AccessLog::new();
        assert!(meta.access(&src, &mut log, r, &tuple!["a"]).is_err());
        assert!(meta.is_empty());
        assert_eq!(log.total(), 0);
    }

    #[test]
    fn distinct_bindings_are_distinct_accesses() {
        let src = provider();
        let r = src.schema().relation_id("r").unwrap();
        let mut meta = MetaCache::new();
        let mut log = AccessLog::new();
        meta.access(&src, &mut log, r, &tuple!["a"]).unwrap();
        meta.access(&src, &mut log, r, &tuple!["b"]).unwrap();
        assert_eq!(log.total(), 2);
    }
}
