//! The per-relation meta-cache (§IV).
//!
//! > *"Since there may be several sources for the same relation, we have to
//! > make sure to not repeat any access to a relation. For this purpose, we
//! > keep track of all access tuples used to access relations […] Toorjah
//! > uses, for each relation, a sort of 'meta-cache' […] Then, before
//! > accessing a relation for the evaluation of a cache rule, we check
//! > whether the access was already made by consulting its meta-cache. If
//! > so, we read the extraction from the corresponding cache; else we make
//! > the access proper."*
//!
//! Since the shared-cache subsystem landed, [`MetaCache`] is a thin adapter
//! over a [`SharedAccessCache`]: by default it wraps a private, unbounded
//! instance (exactly the paper's per-query semantics), but it can be built
//! over any shared handle so legacy call sites participate in cross-query
//! caching. The executors themselves work against [`SharedAccessCache`]
//! directly — see [`crate::execute_plan_cached`].

use std::sync::Arc;

use toorjah_cache::{CacheConfig, SharedAccessCache};
use toorjah_catalog::{RelationId, Tuple};

use crate::{AccessLog, EngineError, SourceProvider};

/// Extraction results keyed by `(relation, access binding)`, consulted
/// before every access.
///
/// Cloning shares the underlying storage (the handle semantics of
/// [`SharedAccessCache`]); use [`MetaCache::new`] for an independent cache.
#[derive(Clone, Debug)]
pub struct MetaCache {
    shared: SharedAccessCache,
    /// The most recent extraction, kept so [`MetaCache::access`] can hand
    /// out a borrow with the pre-subsystem signature.
    last: Arc<[Tuple]>,
}

impl Default for MetaCache {
    fn default() -> Self {
        MetaCache::new()
    }
}

impl MetaCache {
    /// Creates an empty meta-cache over a private, unbounded store.
    pub fn new() -> Self {
        // A per-query cache sees no cross-thread contention; a single shard
        // keeps it lean.
        MetaCache::over(SharedAccessCache::new(
            CacheConfig::unbounded().with_shards(1),
        ))
    }

    /// Wraps an existing shared cache, so accesses served through this
    /// meta-cache are shared with every other holder of the handle.
    pub fn over(shared: SharedAccessCache) -> Self {
        MetaCache {
            shared,
            last: Arc::from(Vec::new()),
        }
    }

    /// The underlying shared-cache handle.
    pub fn shared(&self) -> &SharedAccessCache {
        &self.shared
    }

    /// Serves an access from the meta-cache, or performs it against
    /// `provider` (recording it in `log`) and memoizes the extraction.
    /// Returns the extracted tuples.
    pub fn access(
        &mut self,
        provider: &dyn SourceProvider,
        log: &mut AccessLog,
        relation: RelationId,
        binding: &Tuple,
    ) -> Result<&[Tuple], EngineError> {
        let lookup = self
            .shared
            .get_or_load(relation, binding, || provider.access(relation, binding))?;
        if lookup.outcome.loaded() {
            log.record(relation, binding.clone());
            log.record_extracted(relation, lookup.tuples.iter());
        } else {
            log.record_cache_served();
        }
        self.last = lookup.tuples;
        Ok(&self.last)
    }

    /// Whether the access has been performed already (or is in flight).
    pub fn contains(&self, relation: RelationId, binding: &Tuple) -> bool {
        self.shared.contains(relation, binding)
    }

    /// Number of memoized accesses.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the meta-cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shared.is_empty()
    }

    /// Accesses served from memory (including coalesced waits) since the
    /// underlying cache was created.
    pub fn hits(&self) -> u64 {
        let stats = self.shared.stats();
        stats.hits + stats.coalesced_hits
    }

    /// Accesses actually performed against the provider since the
    /// underlying cache was created.
    pub fn misses(&self) -> u64 {
        self.shared.stats().misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstanceSource;
    use toorjah_catalog::{tuple, Instance, Schema};

    fn provider() -> InstanceSource {
        let schema = Schema::parse("r^io(A, B)").unwrap();
        let mut db = Instance::new(&schema);
        db.insert("r", tuple!["a", "b1"]).unwrap();
        InstanceSource::new(schema, db)
    }

    #[test]
    fn access_is_memoized() {
        let src = provider();
        let r = src.schema().relation_id("r").unwrap();
        let mut meta = MetaCache::new();
        let mut log = AccessLog::new();
        let first = meta
            .access(&src, &mut log, r, &tuple!["a"])
            .unwrap()
            .to_vec();
        assert_eq!(first.len(), 1);
        assert_eq!(log.total(), 1);
        // Second identical access is served locally: no new log entry.
        let second = meta
            .access(&src, &mut log, r, &tuple!["a"])
            .unwrap()
            .to_vec();
        assert_eq!(second, first);
        assert_eq!(log.total(), 1);
        assert_eq!(meta.len(), 1);
        assert!(meta.contains(r, &tuple!["a"]));
        assert!(!meta.contains(r, &tuple!["b"]));
        assert_eq!(meta.hits(), 1);
        assert_eq!(meta.misses(), 1);
    }

    #[test]
    fn failed_accesses_are_not_memoized() {
        let src = crate::FlakySource::new(provider(), 1); // always fails
        let r = src.schema().relation_id("r").unwrap();
        let mut meta = MetaCache::new();
        let mut log = AccessLog::new();
        assert!(meta.access(&src, &mut log, r, &tuple!["a"]).is_err());
        assert!(meta.is_empty());
        assert_eq!(log.total(), 0);
        assert_eq!(meta.misses(), 0, "failures are not misses");
    }

    #[test]
    fn distinct_bindings_are_distinct_accesses() {
        let src = provider();
        let r = src.schema().relation_id("r").unwrap();
        let mut meta = MetaCache::new();
        let mut log = AccessLog::new();
        meta.access(&src, &mut log, r, &tuple!["a"]).unwrap();
        meta.access(&src, &mut log, r, &tuple!["b"]).unwrap();
        assert_eq!(log.total(), 2);
    }

    #[test]
    fn over_a_shared_handle_accesses_are_shared() {
        let src = provider();
        let r = src.schema().relation_id("r").unwrap();
        let shared = SharedAccessCache::unbounded();
        let mut warm_log = AccessLog::new();
        MetaCache::over(shared.clone())
            .access(&src, &mut warm_log, r, &tuple!["a"])
            .unwrap();
        assert_eq!(warm_log.total(), 1);
        // A second meta-cache over the same handle sees the extraction.
        let mut meta = MetaCache::over(shared);
        let mut log = AccessLog::new();
        let tuples = meta.access(&src, &mut log, r, &tuple!["a"]).unwrap();
        assert_eq!(tuples.len(), 1);
        assert_eq!(log.total(), 0, "warm access is free for this query");
    }
}
