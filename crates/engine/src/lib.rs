//! # toorjah-engine
//!
//! Execution engine for the Toorjah reproduction of *"Querying Data under
//! Access Limitations"* (Calì & Martinenghi, ICDE 2008).
//!
//! The engine executes queries against *sources with access limitations*,
//! counting **accesses** — the paper's cost metric (`Acc(D, Π)` is a set of
//! accesses, so repeating an access is free only if it is never issued, which
//! the per-relation meta-cache guarantees). It provides:
//!
//! * [`SourceProvider`]: the remote-source abstraction, with an in-memory
//!   implementation ([`InstanceSource`]), a latency-accounting wrapper
//!   ([`LatencySource`]) simulating slow web/legacy sources, and a
//!   failure-injecting wrapper ([`FlakySource`]) for tests;
//! * [`AccessLog`] / [`AccessStats`]: per-relation access and extraction
//!   accounting;
//! * [`MetaCache`]: the paper's per-relation cache of performed accesses
//!   ("we keep track of all access tuples used to access relations") — since
//!   the shared-cache subsystem, a thin adapter over
//!   [`SharedAccessCache`], the sharded cross-query access cache
//!   (re-exported from [`toorjah_cache`]) that [`execute_plan_cached`],
//!   [`execute_union_cached`] and [`execute_negated_cached`] thread through
//!   entire sessions;
//! * the **evaluation kernel** (`kernel`, internal): the single
//!   round-based loop — collect frontier → runtime relevance filter →
//!   dispatch → fold, iterated to a fixpoint — that every evaluator is a
//!   thin strategy configuration over, including the
//!   [`PruningLevel`]-gated stages — runtime access pruning (`Runtime`)
//!   dropping accesses whose outputs provably cannot reach the query head,
//!   and demand-driven derivation suppression (`Magic`) — plus the
//!   opt-in [`first-k`](crate::ExecOptions::first_k) early termination;
//! * [`naive_evaluate`]: the Fig. 1 algorithm (after [Li & Chang 2000]) that
//!   accesses *every* relation of the schema with *every* domain-compatible
//!   binding until fixpoint — the unoptimized baseline of the evaluation;
//! * [`execute_plan`]: the §IV **fast-failing strategy** interpreting a
//!   [`toorjah_core::QueryPlan`]: caches are populated by increasing
//!   ordering position, an early non-emptiness check precedes each position,
//!   no access is ever repeated, and relations are accessed only after all
//!   other rule conditions succeed;
//! * [`evaluate_cq`] / [`cq_satisfiable`]: conjunctive-query evaluation over
//!   extracted caches.

#![warn(missing_docs)]

mod access;
mod completeness;
mod containment_testing;
mod dispatch;
mod error;
mod executor;
mod join;
mod kernel;
mod metacache;
mod naive;
mod negation;
mod source;
mod union;

pub use access::{AccessLog, AccessStats, DEFAULT_ACCESS_BUDGET};
pub use completeness::{
    check_completeness, complete_answer, CompletenessError, CompletenessReport,
};
pub use containment_testing::{
    refute_obtainable_containment, ContainmentCounterexample, RefutationOptions,
};
pub use dispatch::{DispatchOptions, DispatchReport};
pub use error::EngineError;
pub use executor::{
    execute_plan, execute_plan_cached, execute_plan_with, ExecOptions, ExecutionReport,
    PruningLevel,
};
pub use join::{cq_satisfiable, evaluate_cq, evaluate_cq_subset};
pub use metacache::MetaCache;
pub use naive::{naive_evaluate, NaiveOptions, NaiveResult};
pub use negation::{
    execute_negated, execute_negated_cached, execute_negated_plan, negation_checks, plan_negated,
    NegatedPlan, NegationChecks, NegationError, NegationReport,
};
pub use source::{AccessResult, FlakySource, InstanceSource, LatencySource, SourceProvider};
pub use union::{execute_union, execute_union_cached, UnionReport};

// The shared-cache subsystem, re-exported so engine users configure and
// share caches without a separate dependency.
pub use toorjah_cache::{
    BatchLookup, CacheConfig, CacheStats, EvictionPolicy, LoadResult, Lookup, LookupOutcome,
    ShardCounters, SharedAccessCache, SnapshotError, SnapshotReport,
};

// The observability handle threaded through `ExecOptions` / `NaiveOptions`,
// re-exported with its sink types so engine users can enable tracing
// without a separate dependency.
pub use toorjah_obs::{EventKind, Obs, RingBufferSink, TraceEvent, TraceSink, WriterSink};
